"""Fail on broken intra-repository links in the Markdown docs.

Scans ``README.md`` and ``docs/*.md`` for Markdown links and validates every
*repository-local* target:

* relative file links (``docs/solver.md``, ``../README.md``) must resolve to
  an existing file or directory, from the linking file's own location;
* intra-document anchors (``#the-shared-solver-cache``, alone or after a
  file target) must match a heading in the target document, using the
  GitHub slugging convention (lowercase, punctuation stripped, spaces to
  hyphens);
* external URLs (``http://``, ``https://``, ``mailto:``) are *not* fetched —
  this checker guards repository structure, not the network.

Exit status is the number of broken links (0 = pass), so CI can run it
directly::

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

#: ``[text](target)`` links, ignoring images' leading ``!`` (images are
#: checked identically — a broken image path is just as broken).
_LINK = re.compile(r"\[(?:[^\]]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: strip punctuation, hyphenate."""
    text = re.sub(r"[`*_~]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(document: Path) -> set:
    content = document.read_text(encoding="utf-8")
    return {_slug(match.group(1)) for match in _HEADING.finditer(content)}


def check_file(document: Path, root: Path) -> List[Tuple[str, str]]:
    """Return ``(target, problem)`` pairs for every broken link."""
    problems: List[Tuple[str, str]] = []
    content = document.read_text(encoding="utf-8")
    for match in _LINK.finditer(content):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (document.parent / path_part).resolve()
            try:
                resolved.relative_to(root)
            except ValueError:
                problems.append((target, "escapes the repository"))
                continue
            if not resolved.exists():
                problems.append((target, "file does not exist"))
                continue
        else:
            resolved = document
        if anchor and resolved.suffix == ".md":
            if _slug(anchor) not in _anchors(resolved):
                problems.append((target, f"no heading matches #{anchor}"))
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    documents = sorted(
        [root / "README.md"] + list((root / "docs").glob("*.md"))
    )
    broken = 0
    for document in documents:
        if not document.exists():
            print(f"MISSING: {document.relative_to(root)}")
            broken += 1
            continue
        for target, problem in check_file(document, root):
            print(f"BROKEN: {document.relative_to(root)}: {target} ({problem})")
            broken += 1
    checked = ", ".join(str(d.relative_to(root)) for d in documents)
    if broken:
        print(f"{broken} broken link(s) across {checked}")
    else:
        print(f"all intra-repo links OK across {checked}")
    return broken


if __name__ == "__main__":
    sys.exit(main())
