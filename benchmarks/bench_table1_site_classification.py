"""E1 — Table 1: target site classification.

Regenerates the paper's Table 1: for each benchmark application, the number
of exercised target sites and how many of them DIODE exposes, how many have
an unsatisfiable target constraint, and how many are protected by sanity
checks.
"""

from __future__ import annotations

import pytest

from repro.core import Diode

from benchmarks.conftest import print_table

# Paper Table 1: (total, exposed, unsatisfiable, prevented) per application.
PAPER_TABLE1 = {
    "Dillo 2.1": (12, 3, 1, 8),
    "VLC 0.8.6h": (4, 4, 0, 0),
    "SwfPlay 0.5.5": (8, 3, 5, 0),
    "CWebP 0.3.1": (7, 1, 6, 0),
    "ImageMagick 6.5.2": (9, 3, 5, 1),
}


@pytest.mark.benchmark(group="table1")
def test_table1_site_classification(benchmark, applications):
    """Run the full DIODE pipeline on all five applications (Table 1)."""

    def run():
        engine = Diode()
        return {app.name: engine.analyze(app) for app in applications}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        paper = PAPER_TABLE1[name]
        measured = (
            result.total_target_sites,
            result.exposed_count,
            result.unsatisfiable_count,
            result.sanity_prevented_count,
        )
        rows.append(
            (
                name,
                f"{measured[0]} (paper {paper[0]})",
                f"{measured[1]} (paper {paper[1]})",
                f"{measured[2]} (paper {paper[2]})",
                f"{measured[3]} (paper {paper[3]})",
            )
        )
        assert measured == paper, f"Table 1 row mismatch for {name}"
    print_table(
        "Table 1: Target Site Classification (measured vs paper)",
        ["Application", "Total Sites", "DIODE Exposes", "Unsatisfiable", "Sanity Prevented"],
        rows,
    )

    totals = (
        sum(r.total_target_sites for r in results.values()),
        sum(r.exposed_count for r in results.values()),
        sum(r.unsatisfiable_count for r in results.values()),
        sum(r.sanity_prevented_count for r in results.values()),
    )
    assert totals == (40, 14, 17, 9)
