"""Incremental-solving benchmark: sessions, decomposition, component cache.

Three workloads back the acceptance bar of the incremental solving stack
(PR 3), each comparing the *fresh-query* reference path (sessions and
decomposition disabled — every query re-simplified, re-blasted and solved
from scratch) against the *incremental* path (solver sessions with a
persistent bit-blaster, assumption-based CDCL with learned-clause
retention, connected-component decomposition and the component-granularity
cache):

1. **Registry parity** — the full registry campaign, default
   configuration.  The hard invariant: the incremental path produces
   byte-identical site classifications.  Enforced, not observed.
2. **Enforcement chains** — growing constraint chains shaped exactly like
   the enforcement loop's query sequence (an overflow target constraint β,
   then one appended sanity-check constraint per iteration, ending in
   checks that only the complete backend can decide).  The incremental arm
   must finish with *lower total CDCL conflicts* and *lower bit-blast/CDCL
   time* than the fresh arm, with identical per-check statuses.
3. **Sibling-site screening** — multi-site feasibility conjunctions built
   from the registry's real per-site target constraints.  Different sites
   constrain different input fields, so these queries decompose; the
   incremental arm must answer some components from the component cache
   (``component hits > 0``) while returning identical statuses.

Two later workloads ride the same harness: **warm skeletons** (persisted
blasted-CNF replay vs fresh Tseitin translation) and the **propagation
loop** before/after comparison — the CDCL-bound chain queries solved on
the legacy hot path (:func:`repro.smt.hotpath.legacy_hot_path`: object
CDCL, recursive evaluation, unhashed gates) versus the flattened one,
with per-arm ``propagations``/``sat_decisions`` telemetry in the
artifact.

Emits a machine-readable ``BENCH_solver.json`` artifact; set
``BENCH_ARTIFACT_DIR`` to redirect it.  Standalone::

    PYTHONPATH=src python benchmarks/bench_solver.py
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import pytest

from bench_campaign import write_artifact
from repro import __version__
from repro.apps import all_applications
from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.fieldmap import FieldMapper
from repro.core.overflow import overflow_constraint
from repro.core.sites import identify_target_sites
from repro.core.target import extract_target_observations
from repro.smt import builder as b
from repro.smt.cache import SolverCache
from repro.smt.sampler import SamplerConfig
from repro.smt.solver import TELEMETRY, PortfolioSolver, SolverConfig

#: Number of alpha/constant-varied enforcement chains in workload 2.
CHAIN_COUNT = 4


# ----------------------------------------------------------------------
# Shared arm harness
# ----------------------------------------------------------------------
@dataclass
class ArmMeasurement:
    """One arm (fresh or incremental) of a workload."""

    label: str
    wall_seconds: float
    statuses: List[str]
    telemetry: Dict[str, float]
    cache_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def conflicts(self) -> int:
        return int(self.telemetry["cdcl_conflicts"])

    @property
    def bitblast_seconds(self) -> float:
        return float(self.telemetry["bitblast_seconds"])


def _solver_config(incremental: bool, **overrides) -> SolverConfig:
    config = SolverConfig(
        enable_sessions=incremental,
        enable_decomposition=incremental,
        **overrides,
    )
    return config


# ----------------------------------------------------------------------
# Workload 1: full-registry classification parity
# ----------------------------------------------------------------------
def run_registry_parity() -> Tuple[dict, dict, bool]:
    """Serial campaign over the whole registry, incremental vs fresh."""

    def classifications(incremental: bool):
        config = CampaignConfig(jobs=1, backend="serial")
        config.diode.solver.enable_sessions = incremental
        config.diode.solver.enable_decomposition = incremental
        started = time.perf_counter()
        result = run_campaign(config)
        return {
            "wall_seconds": round(time.perf_counter() - started, 4),
            "classifications": result.classifications(),
        }

    fresh = classifications(False)
    incremental = classifications(True)
    parity = fresh["classifications"] == incremental["classifications"]
    return fresh, incremental, parity


# ----------------------------------------------------------------------
# Workload 2: enforcement-shaped chains through the complete backend
# ----------------------------------------------------------------------
def _enforcement_chain(variant: int):
    """One β + appended-sanity-check chain, like the enforcement loop's.

    The alignment and low-byte checksum equalities defeat the incomplete
    layers (interval corners and boundary-biased sampling never land on
    exact low-bit patterns), so every iteration reaches bit-blasting —
    the regime where a session's CNF and learned-clause reuse pays.  The
    final parity constraint contradicts the alignment check in a way
    interval propagation cannot see, so the UNSAT tail also exercises the
    complete backend.
    """
    w = b.bv_var(f"w{variant}", 16)
    h = b.bv_var(f"h{variant}", 16)
    beta = b.ugt(
        b.mul(b.zext(w, 32), b.zext(h, 32)), b.bv_const(0x00FFFFFF, 32)
    )
    deltas = [
        b.ult(w, b.bv_const(0xC000 - variant * 64, 16)),
        b.ult(h, b.bv_const(0xB000 + variant * 32, 16)),
        b.eq(b.bvand(w, b.bv_const(0x0007, 16)), b.bv_const(5, 16)),
        b.eq(b.bvand(h, b.bv_const(0x0003, 16)), b.bv_const(2, 16)),
        b.ult(b.add(w, h), b.bv_const(0x5000, 16)),
        b.eq(
            b.bvand(b.add(w, h), b.bv_const(0x00FF, 16)),
            b.bv_const((0x47 + variant) & 0xFF, 16),
        ),
        b.eq(b.bvand(w, b.bv_const(1, 16)), b.bv_const(0, 16)),
    ]
    return beta, deltas


def run_enforcement_chains(incremental: bool) -> ArmMeasurement:
    """Replay the chains through one arm; returns per-arm measurements."""
    config = _solver_config(
        incremental,
        sampler=SamplerConfig(
            random_attempts_per_sample=3,
            hill_climb_steps=2,
            perturbation_attempts=2,
            seed=0,
        ),
        heuristic_max_checks=4,
        bitblast_max_conflicts=100_000,
    )
    cache = SolverCache()
    solver = PortfolioSolver(config, cache=cache)
    statuses: List[str] = []
    TELEMETRY.reset()
    started = time.perf_counter()
    for variant in range(CHAIN_COUNT):
        beta, deltas = _enforcement_chain(variant)
        if incremental:
            session = solver.open_session()
            session.push(beta)
            statuses.append(session.check().status)
            for delta in deltas:
                session.push(delta)
                statuses.append(session.check().status)
        else:
            constraints = [beta]
            statuses.append(solver.check(constraints).status)
            for delta in deltas:
                constraints.append(delta)
                statuses.append(solver.check(constraints).status)
    return ArmMeasurement(
        label="incremental" if incremental else "fresh",
        wall_seconds=time.perf_counter() - started,
        statuses=statuses,
        telemetry=TELEMETRY.snapshot(),
        cache_stats=cache.stats.as_dict(),
    )


# ----------------------------------------------------------------------
# Workload 3: sibling-site screening over real registry constraints
# ----------------------------------------------------------------------
def _registry_betas():
    """Per-application lists of the real per-site target constraints."""
    per_app = []
    for app in all_applications():
        mapper = FieldMapper(app.format_spec)
        betas = []
        for site in identify_target_sites(app.program, app.seed_input):
            observations = extract_target_observations(
                app.program,
                app.seed_input,
                site,
                field_mapper=mapper,
                max_observations=1,
            )
            if observations and observations[0].size_expression is not None:
                betas.append(
                    overflow_constraint(observations[0].size_expression)
                )
        per_app.append(betas)
    return per_app


def run_screening(incremental: bool) -> ArmMeasurement:
    """Screen each application's sites jointly: can overflows co-trigger?

    The conjunction grows one site's β at a time (infeasible additions are
    dropped), so successive queries share every previously admitted site's
    component — the component cache's designed case.
    """
    config = _solver_config(incremental)
    cache = SolverCache()
    statuses: List[str] = []
    TELEMETRY.reset()
    started = time.perf_counter()
    for betas in _registry_betas():
        solver = PortfolioSolver(config, cache=cache)
        if incremental:
            session = solver.open_session()
            for beta in betas:
                session.push(beta)
                result = session.check()
                statuses.append(result.status)
                if not result.is_sat:
                    session.pop()
        else:
            admitted: List = []
            for beta in betas:
                result = solver.check(admitted + [beta])
                statuses.append(result.status)
                if result.is_sat:
                    admitted.append(beta)
    return ArmMeasurement(
        label="incremental" if incremental else "fresh",
        wall_seconds=time.perf_counter() - started,
        statuses=statuses,
        telemetry=TELEMETRY.snapshot(),
        cache_stats=cache.stats.as_dict(),
    )


# ----------------------------------------------------------------------
# Workload 4: warm bit-blasting from persisted CNF skeletons
# ----------------------------------------------------------------------
def _skeleton_systems():
    """CDCL-bound conjunctions (low-bit equalities defeat the incomplete
    layers), varied so nothing collapses into one cached query."""
    systems = []
    for variant in range(6):
        w = b.bv_var(f"sw{variant}", 16)
        h = b.bv_var(f"sh{variant}", 16)
        systems.append(
            [
                b.ugt(
                    b.mul(b.zext(w, 32), b.zext(h, 32)),
                    b.bv_const(0x00FFFFFF, 32),
                ),
                b.eq(b.bvand(w, b.bv_const(7, 16)), b.bv_const(5, 16)),
                b.eq(
                    b.bvand(b.add(w, h), b.bv_const(0x00FF, 16)),
                    b.bv_const((0x40 + variant) & 0xFF, 16),
                ),
            ]
        )
    return systems


def run_skeleton_arms() -> Tuple[ArmMeasurement, ArmMeasurement]:
    """Cold blast-and-store vs warm replay from skeletons alone.

    The warm cache is seeded with *only* the cold run's cnf-kind wire
    artifacts (no verdicts), so every query re-solves through the
    complete backend — the arm isolates exactly what a persisted skeleton
    buys: the Tseitin translation, not the CDCL run.
    """
    from repro.smt.cachestore import export_wire_entries, merge_wire_entries

    config = _solver_config(
        False,
        sampler=SamplerConfig(
            random_attempts_per_sample=3,
            hill_climb_steps=2,
            perturbation_attempts=2,
            seed=0,
        ),
        heuristic_max_checks=4,
        bitblast_max_conflicts=100_000,
    )
    systems = _skeleton_systems()

    def arm(label: str, cache: SolverCache) -> ArmMeasurement:
        solver = PortfolioSolver(config, cache=cache)
        TELEMETRY.reset()
        started = time.perf_counter()
        statuses = [solver.check(system).status for system in systems]
        return ArmMeasurement(
            label=label,
            wall_seconds=time.perf_counter() - started,
            statuses=statuses,
            telemetry=TELEMETRY.snapshot(),
            cache_stats=cache.stats.as_dict(),
        )

    cache_cold = SolverCache()
    cold = arm("cold", cache_cold)
    skeleton_wire = [
        item
        for item in export_wire_entries(cache_cold)[0]
        if item.get("k") == "b"
    ]
    cache_warm = SolverCache()
    merge_wire_entries(cache_warm, skeleton_wire)
    warm = arm("warm", cache_warm)
    return cold, warm


# ----------------------------------------------------------------------
# Workload 5: flattened propagation loop vs the legacy hot path
# ----------------------------------------------------------------------
def run_hotpath_arms() -> Tuple[ArmMeasurement, ArmMeasurement]:
    """Before/after arms of the solving hot-path flattening.

    The *legacy* arm re-solves the CDCL-bound chain queries on the
    pre-flattening stack (object-graph CDCL, recursive term interpreter,
    fresh-variable Tseitin gates) via
    :func:`repro.smt.hotpath.legacy_hot_path`; the *flat* arm runs the
    current one.  Telemetry makes the propagation-loop work visible on
    both sides (``propagations``/``sat_decisions`` per arm), and the gate
    demands identical statuses with the flat arm strictly faster on
    bit-blast/CDCL time.
    """
    from repro.smt.hotpath import legacy_hot_path

    config = _solver_config(
        False,
        sampler=SamplerConfig(
            random_attempts_per_sample=3,
            hill_climb_steps=2,
            perturbation_attempts=2,
            seed=0,
        ),
        heuristic_max_checks=4,
        bitblast_max_conflicts=100_000,
    )
    systems = []
    for variant in range(CHAIN_COUNT):
        beta, deltas = _enforcement_chain(variant)
        systems.append([beta] + deltas)
        # CDCL-searching companions: exact squares force real decisions
        # (the sampler would have to guess the root), mod-32 non-residues
        # force real conflicts (squares mod 32 are {0,1,4,9,16,17,25}).
        root = 1234 + 17 * variant
        x = b.bv_var(f"hp{variant}", 16)
        systems.append([b.eq(b.mul(x, x), b.bv_const((root * root) & 0xFFFF, 16))])
        y = b.bv_var(f"hq{variant}", 16)
        systems.append(
            [
                b.eq(
                    b.bvand(b.mul(y, y), b.bv_const(31, 16)),
                    b.bv_const(5, 16),
                )
            ]
        )

    def arm(label: str) -> ArmMeasurement:
        cache = SolverCache()
        solver = PortfolioSolver(config, cache=cache)
        TELEMETRY.reset()
        started = time.perf_counter()
        statuses = [solver.check(system).status for system in systems]
        return ArmMeasurement(
            label=label,
            wall_seconds=time.perf_counter() - started,
            statuses=statuses,
            telemetry=TELEMETRY.snapshot(),
            cache_stats=cache.stats.as_dict(),
        )

    with legacy_hot_path():
        legacy = arm("legacy")
    flat = arm("flat")
    return legacy, flat


# ----------------------------------------------------------------------
# Reporting and gates
# ----------------------------------------------------------------------
def print_chains(fresh: ArmMeasurement, incremental: ArmMeasurement) -> None:
    print("\n=== Enforcement chains: fresh re-solve vs incremental session ===")
    for arm in (fresh, incremental):
        print(
            f"{arm.label:12s}: {arm.wall_seconds:6.3f}s wall, "
            f"{arm.bitblast_seconds:6.3f}s bitblast/CDCL, "
            f"{arm.conflicts} conflicts, "
            f"{int(arm.telemetry['bitblast_calls'])} complete-backend calls"
        )
    print(f"statuses equal     : {fresh.statuses == incremental.statuses}")


def print_screening(fresh: ArmMeasurement, incremental: ArmMeasurement) -> None:
    print("\n=== Sibling-site screening: whole-query vs component cache ===")
    for arm in (fresh, incremental):
        print(
            f"{arm.label:12s}: {arm.wall_seconds:6.3f}s wall, "
            f"component hits {int(arm.cache_stats['component_hits'])} "
            f"({arm.cache_stats['component_hit_rate']:.1%} of component lookups)"
        )
    print(f"statuses equal     : {fresh.statuses == incremental.statuses}")


def print_skeletons(cold: ArmMeasurement, warm: ArmMeasurement) -> None:
    print("\n=== Warm bit-blasting: fresh Tseitin vs persisted skeletons ===")
    for arm in (cold, warm):
        print(
            f"{arm.label:12s}: {arm.wall_seconds:6.3f}s wall, "
            f"{arm.bitblast_seconds:6.3f}s bitblast/CDCL, "
            f"skeleton hits {int(arm.telemetry['skeleton_hits'])}, "
            f"stores {int(arm.telemetry['skeleton_stores'])}"
        )
    print(f"statuses equal     : {cold.statuses == warm.statuses}")


def print_hotpath(legacy: ArmMeasurement, flat: ArmMeasurement) -> None:
    print("\n=== Propagation loop: legacy hot path vs flattened core ===")
    for arm in (legacy, flat):
        print(
            f"{arm.label:12s}: {arm.wall_seconds:6.3f}s wall, "
            f"{arm.bitblast_seconds:6.3f}s bitblast/CDCL, "
            f"{int(arm.telemetry['propagations'])} propagations, "
            f"{int(arm.telemetry['sat_decisions'])} decisions, "
            f"{arm.conflicts} conflicts"
        )
    print(f"statuses equal     : {legacy.statuses == flat.statuses}")
    if flat.wall_seconds > 0:
        print(f"wall speedup       : {legacy.wall_seconds / flat.wall_seconds:.2f}x")


def artifact_payload(
    parity: bool,
    registry_fresh: dict,
    registry_incremental: dict,
    chain_fresh: ArmMeasurement,
    chain_incremental: ArmMeasurement,
    screen_fresh: ArmMeasurement,
    screen_incremental: ArmMeasurement,
    skeleton_cold: ArmMeasurement,
    skeleton_warm: ArmMeasurement,
    hotpath_legacy: ArmMeasurement,
    hotpath_flat: ArmMeasurement,
) -> dict:
    def arm(measurement: ArmMeasurement) -> dict:
        return {
            "wall_seconds": round(measurement.wall_seconds, 4),
            "bitblast_seconds": round(measurement.bitblast_seconds, 4),
            "cdcl_conflicts": measurement.conflicts,
            "bitblast_calls": int(measurement.telemetry["bitblast_calls"]),
            "component_hits": int(
                measurement.cache_stats.get("component_hits", 0)
            ),
            "propagations": int(measurement.telemetry.get("propagations", 0)),
            "sat_decisions": int(
                measurement.telemetry.get("sat_decisions", 0)
            ),
        }

    return {
        "benchmark": "solver",
        "version": __version__,
        "registry_parity": parity,
        "registry": {
            "fresh_wall_seconds": registry_fresh["wall_seconds"],
            "incremental_wall_seconds": registry_incremental["wall_seconds"],
        },
        "enforcement_chains": {
            "fresh": arm(chain_fresh),
            "incremental": arm(chain_incremental),
            "statuses_equal": chain_fresh.statuses == chain_incremental.statuses,
        },
        "screening": {
            "fresh": arm(screen_fresh),
            "incremental": arm(screen_incremental),
            "statuses_equal": screen_fresh.statuses == screen_incremental.statuses,
        },
        "warm_skeletons": {
            "cold": arm(skeleton_cold),
            "warm": arm(skeleton_warm),
            "skeleton_hits": int(skeleton_warm.telemetry["skeleton_hits"]),
            "skeleton_stores": int(skeleton_cold.telemetry["skeleton_stores"]),
            "statuses_equal": skeleton_cold.statuses == skeleton_warm.statuses,
        },
        "propagation_loop": {
            "legacy": arm(hotpath_legacy),
            "flat": arm(hotpath_flat),
            "statuses_equal": hotpath_legacy.statuses == hotpath_flat.statuses,
            "wall_speedup": round(
                hotpath_legacy.wall_seconds / hotpath_flat.wall_seconds, 2
            )
            if hotpath_flat.wall_seconds > 0
            else None,
        },
    }


def _gate_failures(
    parity: bool,
    chain_fresh: ArmMeasurement,
    chain_incremental: ArmMeasurement,
    screen_fresh: ArmMeasurement,
    screen_incremental: ArmMeasurement,
    skeleton_cold: ArmMeasurement,
    skeleton_warm: ArmMeasurement,
    hotpath_legacy: ArmMeasurement,
    hotpath_flat: ArmMeasurement,
) -> List[str]:
    failures = []
    if not parity:
        failures.append(
            "incremental registry classifications diverge from the fresh path"
        )
    if chain_fresh.statuses != chain_incremental.statuses:
        failures.append("enforcement-chain statuses diverge between arms")
    if screen_fresh.statuses != screen_incremental.statuses:
        failures.append("screening statuses diverge between arms")
    if chain_incremental.conflicts >= chain_fresh.conflicts:
        failures.append(
            f"incremental CDCL conflicts {chain_incremental.conflicts} not below "
            f"fresh {chain_fresh.conflicts}"
        )
    if chain_incremental.bitblast_seconds >= chain_fresh.bitblast_seconds:
        failures.append(
            f"incremental bitblast/CDCL time {chain_incremental.bitblast_seconds:.3f}s "
            f"not below fresh {chain_fresh.bitblast_seconds:.3f}s"
        )
    if screen_incremental.cache_stats.get("component_hits", 0) <= 0:
        failures.append("screening produced no component-cache hits")
    if skeleton_cold.statuses != skeleton_warm.statuses:
        failures.append("warm-skeleton statuses diverge from the cold arm")
    if skeleton_warm.telemetry["skeleton_hits"] <= 0:
        failures.append("warm arm replayed no persisted CNF skeletons")
    if skeleton_warm.bitblast_seconds >= skeleton_cold.bitblast_seconds:
        failures.append(
            f"warm bitblast/CDCL time {skeleton_warm.bitblast_seconds:.3f}s "
            f"not below cold {skeleton_cold.bitblast_seconds:.3f}s"
        )
    if hotpath_legacy.statuses != hotpath_flat.statuses:
        failures.append(
            "propagation-loop statuses diverge between legacy and flat arms"
        )
    if hotpath_flat.bitblast_seconds >= hotpath_legacy.bitblast_seconds:
        failures.append(
            f"flat bitblast/CDCL time {hotpath_flat.bitblast_seconds:.3f}s "
            f"not below legacy {hotpath_legacy.bitblast_seconds:.3f}s"
        )
    if int(hotpath_flat.telemetry["propagations"]) <= 0:
        failures.append("flat arm recorded no propagation-loop telemetry")
    return failures


# ----------------------------------------------------------------------
# pytest twins
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="solver")
def test_incremental_registry_parity(benchmark):
    """Byte-identical site classifications, incremental vs fresh."""
    fresh, incremental, parity = benchmark.pedantic(
        run_registry_parity, rounds=1, iterations=1
    )
    assert parity


@pytest.mark.benchmark(group="solver")
def test_enforcement_chains_incremental_wins(benchmark):
    """Sessions beat fresh re-solving on conflicts and bitblast time."""

    def both():
        return run_enforcement_chains(False), run_enforcement_chains(True)

    fresh, incremental = benchmark.pedantic(both, rounds=1, iterations=1)
    print_chains(fresh, incremental)
    assert fresh.statuses == incremental.statuses
    assert incremental.conflicts < fresh.conflicts
    assert incremental.bitblast_seconds < fresh.bitblast_seconds


@pytest.mark.benchmark(group="solver")
def test_screening_hits_the_component_cache(benchmark):
    """Multi-site screening reuses component verdicts across queries."""

    def both():
        return run_screening(False), run_screening(True)

    fresh, incremental = benchmark.pedantic(both, rounds=1, iterations=1)
    print_screening(fresh, incremental)
    assert fresh.statuses == incremental.statuses
    assert incremental.cache_stats["component_hits"] > 0


@pytest.mark.benchmark(group="solver")
def test_flattened_hot_path_beats_the_legacy_arm(benchmark):
    """The flattened core answers the chain queries identically, faster."""
    legacy, flat = benchmark.pedantic(run_hotpath_arms, rounds=1, iterations=1)
    print_hotpath(legacy, flat)
    assert legacy.statuses == flat.statuses
    assert flat.bitblast_seconds < legacy.bitblast_seconds
    assert flat.telemetry["propagations"] > 0
    assert flat.telemetry["sat_decisions"] > 0


@pytest.mark.benchmark(group="solver")
def test_warm_skeletons_skip_the_tseitin_translation(benchmark):
    """Persisted CNF skeletons replay to identical statuses, faster."""
    cold, warm = benchmark.pedantic(run_skeleton_arms, rounds=1, iterations=1)
    print_skeletons(cold, warm)
    assert cold.statuses == warm.statuses
    assert warm.telemetry["skeleton_hits"] > 0
    assert warm.bitblast_seconds < cold.bitblast_seconds


# ----------------------------------------------------------------------
# Standalone entry point (the CI gate)
# ----------------------------------------------------------------------
def main() -> int:
    registry_fresh, registry_incremental, parity = run_registry_parity()
    print("=== Registry campaign: classification parity ===")
    print(
        f"fresh       : {registry_fresh['wall_seconds']:.3f}s, "
        f"incremental : {registry_incremental['wall_seconds']:.3f}s, "
        f"parity={'yes' if parity else 'NO'}"
    )

    chain_fresh = run_enforcement_chains(False)
    chain_incremental = run_enforcement_chains(True)
    print_chains(chain_fresh, chain_incremental)

    screen_fresh = run_screening(False)
    screen_incremental = run_screening(True)
    print_screening(screen_fresh, screen_incremental)

    skeleton_cold, skeleton_warm = run_skeleton_arms()
    print_skeletons(skeleton_cold, skeleton_warm)

    hotpath_legacy, hotpath_flat = run_hotpath_arms()
    print_hotpath(hotpath_legacy, hotpath_flat)

    path = write_artifact(
        artifact_payload(
            parity,
            registry_fresh,
            registry_incremental,
            chain_fresh,
            chain_incremental,
            screen_fresh,
            screen_incremental,
            skeleton_cold,
            skeleton_warm,
            hotpath_legacy,
            hotpath_flat,
        ),
        name="BENCH_solver.json",
    )
    print(f"\nartifact written: {path}")

    failures = _gate_failures(
        parity,
        chain_fresh,
        chain_incremental,
        screen_fresh,
        screen_incremental,
        skeleton_cold,
        skeleton_warm,
        hotpath_legacy,
        hotpath_flat,
    )
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
