"""Substrate micro-benchmarks: the SMT portfolio and the concolic stage.

These are not paper artifacts; they document the cost of the two most
heavily exercised substrates (solver queries and instrumented executions) so
that regressions in either show up in the benchmark run.
"""

from __future__ import annotations

import pytest

from repro.exec.concolic import ConcolicInterpreter
from repro.exec.taint import TaintInterpreter
from repro.smt import builder as b
from repro.smt.solver import PortfolioSolver


@pytest.mark.benchmark(group="substrate")
def test_solver_overflow_query_sat(benchmark):
    """A Dillo-shaped satisfiable target-constraint query."""
    w = b.bv_var("w", 32)
    h = b.bv_var("h", 32)
    wide = b.mul(b.zext(w, 64), b.zext(h, 64))
    constraints = [
        b.ugt(wide, b.bv_const(0xFFFFFFFF, 64)),
        b.ult(w, 1_000_000),
        b.ult(h, 1_000_000),
    ]

    def run():
        return PortfolioSolver().check(constraints)

    result = benchmark(run)
    assert result.is_sat


@pytest.mark.benchmark(group="substrate")
def test_solver_overflow_query_unsat(benchmark):
    """A blocking-check-shaped unsatisfiable query (interval proof)."""
    w = b.bv_var("w", 32)
    h = b.bv_var("h", 32)
    wide = b.mul(b.zext(w, 64), b.zext(h, 64))
    constraints = [
        b.ugt(wide, b.bv_const(0xFFFFFFFF, 64)),
        b.ult(w, 1154),
        b.ult(h, 1_000_000),
    ]

    def run():
        return PortfolioSolver().check(constraints)

    result = benchmark(run)
    assert result.is_unsat


@pytest.mark.benchmark(group="substrate")
def test_taint_stage_on_dillo_seed(benchmark, dillo_app):
    """Cost of the target-site identification stage on the Dillo model."""

    def run():
        return TaintInterpreter(dillo_app.program).run_taint(dillo_app.seed_input)

    report = benchmark(run)
    assert len(report.target_sites()) == 12


@pytest.mark.benchmark(group="substrate")
def test_concolic_stage_on_dillo_seed(benchmark, dillo_app):
    """Cost of the symbolic-recording stage on the Dillo model."""
    relevant = set(range(16, 26))

    def run():
        return ConcolicInterpreter(
            dillo_app.program, relevant_bytes=relevant
        ).run_concolic(dillo_app.seed_input)

    report = benchmark(run)
    assert report.allocations
