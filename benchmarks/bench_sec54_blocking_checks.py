"""E5 — Section 5.4: blocking checks.

For every exposed site, check whether an input can both trigger the overflow
and follow the seed input's entire path through the relevant conditional
branches.  The paper reports that blocking checks make this impossible for
all but two sites; in this reproduction the blocking loops modelled after the
paper's description (Dillo's png_memset row loop, VLC's per-sample
interleave loop) make it impossible for the Dillo and VLC guarded sites,
while the check-free sites remain satisfiable.
"""

from __future__ import annotations

import pytest

from repro.core.baselines import FullPathEnforcement

from benchmarks.conftest import exposed_observations, print_table

# Sites where blocking checks must rule out full-seed-path enforcement.
EXPECTED_BLOCKED = {
    "png.c@203",
    "fltkimagebuf.cc@39",
    "Image.cxx@741",
    "dec.c@277",
}


@pytest.mark.benchmark(group="section-5.4")
def test_blocking_checks_full_path_enforcement(benchmark, applications):
    """Satisfiability of target-constraint ∧ full relevant seed path, per site."""

    def run():
        rows = {}
        for app in applications:
            strategy = FullPathEnforcement(app)
            for tag, observation in exposed_observations(app):
                rows[tag] = strategy.run(observation)
        return rows

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    blocked = 0
    for tag, result in results.items():
        state = (
            "unsatisfiable"
            if result.satisfiable is False
            else ("unknown" if result.satisfiable is None else "satisfiable")
        )
        if result.satisfiable is not True:
            blocked += 1
        table.append(
            (
                tag,
                state,
                result.details.get("relevant_branches", "-"),
                result.ratio() if result.attempts else "-",
            )
        )
        if tag in EXPECTED_BLOCKED:
            assert result.satisfiable is not True, tag
            assert result.successes == 0, tag
    print_table(
        "Section 5.4: full-seed-path enforcement per exposed site",
        ["Target", "Full-path constraint", "Relevant branches", "Triggers"],
        table,
    )
    assert blocked >= len(EXPECTED_BLOCKED)
