"""E3 / E4 — Table 2 success-rate columns (paper Sections 5.5 and 5.6).

* Target Success Rate: sample inputs that satisfy the target constraint
  alone and count how many trigger the overflow.  The paper reports a
  bimodal distribution — near total success where no relevant sanity checks
  exist, near zero where they do.
* Target + Enforced Success Rate: for sites that needed enforcement, sample
  inputs satisfying the target constraint plus the enforced branch
  constraints; the success rate recovers.

The paper samples 200 inputs per site; set ``DIODE_BENCH_SAMPLES`` to change
the scaled-down default of 60.
"""

from __future__ import annotations

import os

import pytest

from repro.core import Diode
from repro.core.baselines import EnforcedSampling, TargetOnlySampling

from benchmarks.conftest import exposed_observations, print_table

SAMPLES = int(os.environ.get("DIODE_BENCH_SAMPLES", "60"))

# Paper Table 2 "Target Success Rate" column, normalised to a rate.
PAPER_TARGET_ONLY_HIGH = {
    "block.c@54",
    "jpeg_rgb_decoder.c@253",
    "jpeg_rgb_decoder.c@257",
    "jpeg.c@192",
    "jpegdec.c@248",
    "xwindow.c@5619",
    "cache.c@803",
    "display.c@4393",
    "wav.c@147",
}
PAPER_TARGET_ONLY_LOW = {
    "png.c@203",
    "fltkimagebuf.cc@39",
    "Image.cxx@741",
    "messages.c@355",
    "dec.c@277",
}


@pytest.mark.benchmark(group="table2-success")
def test_target_only_success_rates(benchmark, applications):
    """Section 5.5: success rate of inputs satisfying the target constraint alone."""

    def run():
        rows = {}
        for app in applications:
            sampler = TargetOnlySampling(app, seed=17)
            for tag, observation in exposed_observations(app):
                rows[tag] = sampler.run(observation, samples=SAMPLES)
        return rows

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    for tag, result in results.items():
        expected = "high" if tag in PAPER_TARGET_ONLY_HIGH else "low"
        table.append((tag, result.ratio(), f"{result.success_rate:.0%}", f"paper: {expected}"))
        if tag in PAPER_TARGET_ONLY_HIGH:
            assert result.success_rate >= 0.6, tag
        else:
            assert result.success_rate <= 0.3, tag
    print_table(
        f"Section 5.5: Target-constraint-alone success rate ({SAMPLES} samples/site)",
        ["Target", "Triggers", "Rate", "Paper band"],
        table,
    )


@pytest.mark.benchmark(group="table2-success")
def test_target_plus_enforced_success_rates(benchmark, applications):
    """Section 5.6: success rate after adding the enforced branch constraints."""

    def run():
        engine = Diode()
        rows = {}
        for app in applications:
            if not any(
                e.classification == "exposed" and (e.enforced_branches or 0) > 0
                for e in app.expectations
            ):
                continue
            result = engine.analyze(app)
            sampler = EnforcedSampling(app, seed=23)
            target_only = TargetOnlySampling(app, seed=23)
            for site_result in result.site_results:
                enforcement = site_result.enforcement
                if (
                    site_result.bug_report is None
                    or enforcement is None
                    or not enforcement.enforced_branches
                ):
                    continue
                rows[site_result.site.site_tag] = (
                    target_only.run(enforcement.observation, samples=SAMPLES),
                    sampler.run(enforcement, samples=SAMPLES),
                    len(enforcement.enforced_branches),
                )
        return rows

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    for tag, (target_only, enforced, count) in results.items():
        table.append(
            (
                tag,
                count,
                target_only.ratio(),
                enforced.ratio(),
                f"{enforced.success_rate:.0%}",
            )
        )
        # The paper's qualitative claim: enforcement restores a usable
        # success rate (half or more for most sites) where the target
        # constraint alone almost never survives the sanity checks.
        assert enforced.success_rate > target_only.success_rate, tag
        assert enforced.success_rate >= 0.3, tag
    assert results, "at least the Dillo and VLC guarded sites must appear"
    print_table(
        f"Section 5.6: Target + enforced success rate ({SAMPLES} samples/site)",
        ["Target", "Enforced branches", "Target-only", "Target+enforced", "Rate"],
        table,
    )
