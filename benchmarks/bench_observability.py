"""Observability overhead and coverage benchmark.

The tracing layer's contract is that it is *passive*: instrumenting every
stage of every campaign unit must not meaningfully slow the campaign down
or change anything it computes.  This harness measures and gates:

1. **Overhead** — a registry campaign with a ``trace_dir`` (full JSONL
   span emission *plus* the live event stream with its JSONL event sink
   and heartbeat thread) must finish within ``MAX_OVERHEAD`` of the same
   campaign with all instrumentation off (``events=False``, no trace),
   and classifications must be identical.
2. **Coverage** — for every traced unit, the durations of its direct
   child stage spans (concolic, enforce, triage, ...) must sum to a
   meaningful fraction of the unit span's own wall time
   (``MIN_STAGE_COVERAGE``) and never exceed it beyond timer jitter —
   i.e. the span taxonomy actually explains where unit time goes, and
   nesting accounting is sound.
3. **Event integrity** — every persisted event record passes schema
   validation, and the unit-lifecycle counts close: one queued, one
   started and one finished event per campaign unit, zero failed.

Every standalone run emits ``BENCH_observability.json``.  Runs under
pytest inside the suite and standalone for CI::

    PYTHONPATH=src python benchmarks/bench_observability.py
"""

from __future__ import annotations

import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from bench_campaign import write_artifact

from repro import __version__
from repro.core.campaign import CampaignConfig, CampaignEngine
from repro.obs.report import load_events_dir, load_trace_dir, unit_summaries

#: Traced wall time may exceed the best untraced wall time by at most this
#: factor...
MAX_OVERHEAD = 1.05

#: ...plus this absolute allowance (seconds) so sub-second campaigns are
#: not gated on scheduler noise larger than the thing being measured.
OVERHEAD_EPSILON_SECONDS = 0.15

#: Weighted across all traced units, direct child stage spans must explain
#: at least this fraction of unit wall time (concolic + enforce + triage
#: dominate a unit; the remainder is detector/session bookkeeping).
MIN_STAGE_COVERAGE = 0.60

#: A single unit's stage sum may exceed its unit span by at most this
#: factor (pure timer jitter; stages nest strictly inside the unit).
MAX_UNIT_COVERAGE = 1.02

#: Untraced arm repetitions (the best is the baseline — background load
#: can only inflate a measurement, never deflate it).
UNTRACED_RUNS = 2

ARTIFACT_NAME = "BENCH_observability.json"


def _config(trace_dir: Optional[str], events: bool) -> CampaignConfig:
    return CampaignConfig(
        jobs=1, backend="serial", use_cache=True, trace_dir=trace_dir,
        events=events,
    )


@dataclass
class Measurement:
    """Both arms plus the trace-derived coverage statistics."""

    untraced_seconds: List[float]
    traced_seconds: float
    classifications_match: bool
    unit_count: int
    traced_units: int
    weighted_coverage: float
    worst_unit_coverage: float
    invalid_records: int
    event_records: int
    invalid_event_records: int
    lifecycle_counts: Dict[str, int]

    @property
    def baseline_seconds(self) -> float:
        return min(self.untraced_seconds)

    @property
    def overhead(self) -> float:
        if self.baseline_seconds <= 0:
            return 0.0
        return self.traced_seconds / self.baseline_seconds


def measure() -> Measurement:
    untraced: List[float] = []
    reference = None
    for _ in range(UNTRACED_RUNS):
        started = time.perf_counter()
        result = CampaignEngine(_config(None, events=False)).run()
        untraced.append(time.perf_counter() - started)
        reference = result

    with tempfile.TemporaryDirectory() as trace_dir:
        started = time.perf_counter()
        traced_result = CampaignEngine(_config(trace_dir, events=True)).run()
        traced_seconds = time.perf_counter() - started
        data = load_trace_dir(trace_dir)
        units = unit_summaries(data)
        event_data = load_events_dir(trace_dir)

    lifecycle_counts: Dict[str, int] = {}
    for record in event_data.records:
        name = record["name"]
        if name.startswith("unit."):
            lifecycle_counts[name] = lifecycle_counts.get(name, 0) + 1

    total_unit = sum(u.duration_seconds for u in units)
    total_stage = sum(u.stage_seconds() for u in units)
    return Measurement(
        untraced_seconds=untraced,
        traced_seconds=traced_seconds,
        classifications_match=(
            reference.classifications() == traced_result.classifications()
        ),
        unit_count=traced_result.unit_count,
        traced_units=len(units),
        weighted_coverage=(total_stage / total_unit) if total_unit else 0.0,
        worst_unit_coverage=max(
            (u.coverage() for u in units), default=0.0
        ),
        invalid_records=data.invalid_records,
        event_records=len(event_data.records),
        invalid_event_records=event_data.invalid_records,
        lifecycle_counts=lifecycle_counts,
    )


def gate_failures(m: Measurement) -> List[str]:
    failures: List[str] = []
    if not m.classifications_match:
        failures.append("tracing changed campaign classifications")
    if m.traced_units != m.unit_count:
        failures.append(
            f"trace captured {m.traced_units} unit spans for "
            f"{m.unit_count} campaign units"
        )
    if m.invalid_records:
        failures.append(f"{m.invalid_records} invalid trace record(s)")
    budget = m.baseline_seconds * MAX_OVERHEAD + OVERHEAD_EPSILON_SECONDS
    if m.traced_seconds > budget:
        failures.append(
            f"traced run took {m.traced_seconds:.3f}s against a budget of "
            f"{budget:.3f}s (untraced best {m.baseline_seconds:.3f}s)"
        )
    if m.weighted_coverage < MIN_STAGE_COVERAGE:
        failures.append(
            f"stage spans explain only {m.weighted_coverage:.0%} of unit "
            f"wall time (floor {MIN_STAGE_COVERAGE:.0%})"
        )
    if m.worst_unit_coverage > MAX_UNIT_COVERAGE:
        failures.append(
            f"a unit's stage sum is {m.worst_unit_coverage:.2f}x its unit "
            f"span (cap {MAX_UNIT_COVERAGE:.2f}x) — nesting accounting broke"
        )
    if m.invalid_event_records:
        failures.append(f"{m.invalid_event_records} invalid event record(s)")
    for name in ("unit.queued", "unit.started", "unit.finished"):
        if m.lifecycle_counts.get(name, 0) != m.unit_count:
            failures.append(
                f"event log holds {m.lifecycle_counts.get(name, 0)} "
                f"{name} record(s) for {m.unit_count} campaign units"
            )
    if m.lifecycle_counts.get("unit.failed", 0):
        failures.append(
            f"{m.lifecycle_counts['unit.failed']} unit.failed event(s) in a "
            "clean campaign"
        )
    return failures


def artifact_payload(m: Measurement) -> Dict[str, object]:
    return {
        "version": __version__,
        "benchmark": "observability",
        "untraced_seconds": [round(s, 4) for s in m.untraced_seconds],
        "untraced_best_seconds": round(m.baseline_seconds, 4),
        "traced_seconds": round(m.traced_seconds, 4),
        "overhead": round(m.overhead, 4),
        "max_overhead": MAX_OVERHEAD,
        "overhead_epsilon_seconds": OVERHEAD_EPSILON_SECONDS,
        "unit_count": m.unit_count,
        "traced_units": m.traced_units,
        "weighted_stage_coverage": round(m.weighted_coverage, 4),
        "min_stage_coverage": MIN_STAGE_COVERAGE,
        "worst_unit_coverage": round(m.worst_unit_coverage, 4),
        "invalid_records": m.invalid_records,
        "event_records": m.event_records,
        "invalid_event_records": m.invalid_event_records,
        "lifecycle_counts": dict(sorted(m.lifecycle_counts.items())),
        "classifications_match": m.classifications_match,
    }


# ----------------------------------------------------------------------
# Pytest twins
# ----------------------------------------------------------------------
def test_tracing_overhead_and_coverage():
    m = measure()
    failures = gate_failures(m)
    assert not failures, "; ".join(failures)


def test_stage_coverage_is_stable_enough_to_gate():
    """The coverage statistic itself should not be wildly dispersed."""
    m = measure()
    assert 0.0 < m.weighted_coverage <= MAX_UNIT_COVERAGE
    assert m.traced_units == m.unit_count


# ----------------------------------------------------------------------
# Standalone entry point
# ----------------------------------------------------------------------
def main() -> int:
    m = measure()
    print(
        f"untraced: {', '.join(f'{s:.3f}s' for s in m.untraced_seconds)} "
        f"(best {m.baseline_seconds:.3f}s)"
    )
    print(f"traced:   {m.traced_seconds:.3f}s ({m.overhead:.3f}x)")
    print(
        f"coverage: {m.weighted_coverage:.0%} of unit wall time explained "
        f"by stage spans across {m.traced_units} units "
        f"(worst unit {m.worst_unit_coverage:.2f}x)"
    )
    print(
        f"events:   {m.event_records} records "
        f"({m.invalid_event_records} invalid), lifecycle "
        + ", ".join(f"{k}={v}" for k, v in sorted(m.lifecycle_counts.items()))
    )
    path = write_artifact(artifact_payload(m), name=ARTIFACT_NAME)
    print(f"artifact written: {path}")

    failures = gate_failures(m)
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
