"""Execution-backend benchmark: serial vs thread vs process, plus parity.

The contract this harness enforces is the acceptance bar of the backend
subsystem: every backend — including ``process``, whose workers rebuild
the application models on the far side of a pickle boundary and ship
verdicts back as wire-format cache deltas — produces classifications
byte-identical to the serial ``Diode.analyze`` reference path.

Wall-clock numbers are reported for the trajectory record but *not*
enforced across backends: on the single-CPU hosts this repo develops on,
process workers pay fork/rebuild overhead without hardware parallelism to
amortize it, so relative backend speed is host-dependent.  Parity is not.

Emits a machine-readable ``BENCH_backends.json`` artifact; set
``BENCH_ARTIFACT_DIR`` to redirect it.  Standalone::

    PYTHONPATH=src python benchmarks/bench_backends.py
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Dict, List

import pytest

from bench_campaign import write_artifact
from repro import __version__
from repro.apps import all_applications
from repro.core import Diode
from repro.core.campaign import CampaignConfig, CampaignEngine, CampaignResult
from repro.sched import available_backends

#: Worker count used for the concurrent backends.
JOBS = 2


@dataclass
class BackendMeasurement:
    """One backend's arm of the comparison."""

    backend: str
    wall_seconds: float
    result: CampaignResult

    @property
    def hit_rate(self) -> float:
        stats = self.result.cache_stats
        return stats.hit_rate() if stats is not None else 0.0


def serial_reference() -> Dict[str, Dict[str, str]]:
    """Classifications from the plain serial ``Diode.analyze`` path."""
    engine = Diode()
    reference: Dict[str, Dict[str, str]] = {}
    for application in all_applications():
        result = engine.analyze(application)
        reference[result.application] = {
            site.site.name: site.classification.value
            for site in result.site_results
        }
    return reference


def run_backend(backend: str) -> BackendMeasurement:
    started = time.perf_counter()
    result = CampaignEngine(
        CampaignConfig(jobs=1 if backend == "serial" else JOBS, backend=backend)
    ).run()
    return BackendMeasurement(
        backend=backend,
        wall_seconds=time.perf_counter() - started,
        result=result,
    )


def run_suite() -> List[BackendMeasurement]:
    return [run_backend(name) for name in available_backends()]


def print_suite(
    measurements: List[BackendMeasurement], reference: Dict[str, Dict[str, str]]
) -> None:
    print("\n=== Execution backends: wall clock and serial-path parity ===")
    for measurement in measurements:
        parity = measurement.result.classifications() == reference
        print(
            f"{measurement.backend:8s}: {measurement.wall_seconds:7.3f}s  "
            f"jobs={measurement.result.jobs}  "
            f"hit rate {measurement.hit_rate:5.1%}  "
            f"parity={'yes' if parity else 'NO'}"
        )


def artifact_payload(measurements: List[BackendMeasurement], parity: bool) -> dict:
    return {
        "benchmark": "backends",
        "version": __version__,
        "jobs": JOBS,
        "parity": parity,
        "backends": {
            m.backend: {
                "wall_seconds": round(m.wall_seconds, 4),
                "hit_rate": round(m.hit_rate, 4),
                "unit_count": m.result.unit_count,
            }
            for m in measurements
        },
    }


@pytest.mark.benchmark(group="backends")
def test_every_backend_matches_the_serial_reference(benchmark):
    """Classification parity for serial, thread and process backends."""
    reference = serial_reference()
    measurements = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    print_suite(measurements, reference)
    for measurement in measurements:
        assert measurement.result.classifications() == reference, (
            f"{measurement.backend} backend diverged from the serial path"
        )


def main() -> int:
    reference = serial_reference()
    measurements = run_suite()
    print_suite(measurements, reference)
    parity = all(m.result.classifications() == reference for m in measurements)
    path = write_artifact(
        artifact_payload(measurements, parity), name="BENCH_backends.json"
    )
    print(f"\nartifact written: {path}")
    if not parity:
        print("FAIL: a backend diverged from the serial Diode.analyze path")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
