"""A1 / A2 — Ablations of DIODE's two enforcement design choices.

* A1 (enforcement order): the paper enforces the *first* flipped branch in
  execution order.  This ablation compares that choice against enforcing the
  last flipped branch and a random flipped branch.
* A2 (relevance filtering): the paper discards branches that share no input
  variable with the target constraint before enforcement.  This ablation
  measures the cost of keeping every branch.
"""

from __future__ import annotations

import pytest

from repro.core.detection import ErrorDetector
from repro.core.enforcement import EnforcementConfig, GoalDirectedEnforcer
from repro.core.inputs import InputGenerator
from repro.smt.solver import PortfolioSolver

from benchmarks.conftest import observation_for, print_table

GUARDED_SITES = [
    ("dillo", "png.c@203"),
    ("dillo", "fltkimagebuf.cc@39"),
    ("vlc", "dec.c@277"),
    ("vlc", "messages.c@355"),
]


def _run(app, observation, config):
    enforcer = GoalDirectedEnforcer(
        PortfolioSolver(),
        InputGenerator(app.seed_input, app.format_spec),
        ErrorDetector(app.program, app.seed_input),
        config,
    )
    return enforcer.run(observation)


@pytest.mark.benchmark(group="ablation")
def test_ablation_enforcement_order(benchmark, applications):
    """A1: first-flipped-branch order vs last/random flipped branch."""
    apps = {app.name: app for app in applications}
    lookup = {
        "dillo": apps["Dillo 2.1"],
        "vlc": apps["VLC 0.8.6h"],
    }

    def run():
        rows = []
        for app_key, tag in GUARDED_SITES:
            app = lookup[app_key]
            observation = observation_for(app, tag)
            per_mode = {}
            for mode in ("first", "last", "random"):
                result = _run(app, observation, EnforcementConfig(flip_selection=mode))
                per_mode[mode] = result
            rows.append((tag, per_mode))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    for tag, per_mode in rows:
        table.append(
            (
                tag,
                *(
                    f"{per_mode[mode].outcome.value.split('_')[0]}"
                    f"/{per_mode[mode].enforced_count}"
                    for mode in ("first", "last", "random")
                ),
            )
        )
        # The paper's choice must succeed on every guarded site.
        assert per_mode["first"].found_overflow, tag
    print_table(
        "Ablation A1: flipped-branch selection (outcome/enforced count)",
        ["Target", "first (paper)", "last", "random"],
        table,
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_relevance_filtering(benchmark, applications):
    """A2: enforcement with and without the relevant-branch filter."""
    apps = {app.name: app for app in applications}
    lookup = {"dillo": apps["Dillo 2.1"], "vlc": apps["VLC 0.8.6h"]}

    def run():
        rows = []
        for app_key, tag in GUARDED_SITES:
            app = lookup[app_key]
            observation = observation_for(app, tag)
            filtered = _run(app, observation, EnforcementConfig(filter_relevant=True))
            unfiltered = _run(app, observation, EnforcementConfig(filter_relevant=False))
            rows.append((tag, filtered, unfiltered))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    for tag, filtered, unfiltered in rows:
        table.append(
            (
                tag,
                filtered.relevant_branch_count,
                unfiltered.relevant_branch_count,
                f"{filtered.outcome.value}/{filtered.enforced_count}",
                f"{unfiltered.outcome.value}/{unfiltered.enforced_count}",
            )
        )
        assert filtered.found_overflow, tag
        # The filter never considers more branches than the unfiltered run.
        assert filtered.relevant_branch_count <= unfiltered.relevant_branch_count
    print_table(
        "Ablation A2: relevance filtering (candidate branch pool and outcome)",
        ["Target", "Relevant pool", "Unfiltered pool", "Filtered outcome", "Unfiltered outcome"],
        table,
    )
