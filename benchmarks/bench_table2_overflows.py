"""E2 — Table 2: per-overflow evaluation summary.

Regenerates the core columns of the paper's Table 2: for each of the 14
overflows DIODE exposes — target site, CVE status, observed error type, and
the number of enforced conditional branches out of the total relevant
branches on the seed path.
"""

from __future__ import annotations

import pytest

from repro.core import Diode

from benchmarks.conftest import print_table

# Paper Table 2: target -> (cve, enforced branches).
PAPER_TABLE2 = {
    "png.c@203": ("CVE-2009-2294", 4),
    "fltkimagebuf.cc@39": ("New", 5),
    "Image.cxx@741": ("New", 4),
    "messages.c@355": ("New", 2),
    "wav.c@147": ("CVE-2008-2430", 0),
    "dec.c@277": ("New", 5),
    "block.c@54": ("New", 0),
    "jpeg_rgb_decoder.c@253": ("New", 0),
    "jpeg_rgb_decoder.c@257": ("New", 0),
    "jpeg.c@192": ("New", 0),
    "jpegdec.c@248": ("New", 0),
    "xwindow.c@5619": ("CVE-2009-1882", 0),
    "cache.c@803": ("New", 0),
    "display.c@4393": ("New", 0),
}


@pytest.mark.benchmark(group="table2")
def test_table2_overflow_summary(benchmark, applications):
    """Discover all 14 overflows and report the Table 2 rows."""

    def run():
        engine = Diode()
        return {app.name: engine.analyze(app) for app in applications}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    reports = {}
    for name, result in results.items():
        for report in result.bug_reports():
            reports[report.target] = (name, report)

    assert set(reports) == set(PAPER_TABLE2), "the 14 exposed sites must match"

    for target, (paper_cve, paper_enforced) in PAPER_TABLE2.items():
        app_name, report = reports[target]
        rows.append(
            (
                app_name,
                target,
                f"{report.cve} (paper {paper_cve})",
                report.error_type,
                f"{report.enforced_ratio()} (paper {paper_enforced}/...)",
                f"{report.discovery_seconds:.2f}s",
            )
        )
        assert report.cve == paper_cve
        if paper_enforced == 0:
            assert report.enforced_branches == 0, target
        else:
            # Solver choices legitimately shift the count by a branch or two;
            # the shape claim is "a small number (2-5) of enforced branches".
            assert 1 <= report.enforced_branches <= 6, target
        assert report.enforced_branches <= report.relevant_branches or report.relevant_branches == 0

    print_table(
        "Table 2: Evaluation Summary (measured vs paper)",
        ["Application", "Target", "CVE", "Error Type", "Enforced", "Discovery"],
        rows,
    )

    new_count = sum(1 for _, (cve, _e) in PAPER_TABLE2.items() if cve == "New")
    measured_new = sum(1 for _, report in reports.values() if report.cve == "New")
    assert measured_new == new_count == 11
