"""Witness-triage benchmark: dedup stability, minimization soundness, warm skips.

The acceptance bar of the triage subsystem, enforced as three gates:

1. **dedup** — campaigns under different schedules and backends (serial,
   thread, process) merged into one corpus collapse to a *stable* distinct-
   overflow count: exactly the number of exposed sites (the paper's
   Table-2 notion of distinct overflows), with identical classifications
   across every arm;
2. **minimization soundness** — every minimized corpus witness, rebuilt
   from its stored field values alone, still wraps the target allocation
   under a fresh concrete :class:`OverflowWitnessInterpreter` run, and the
   site it exposes is still classified ``OVERFLOW_EXPOSED`` by the
   campaign;
3. **warm skip-known** — a warm-corpus ``--skip-known`` campaign finishes
   strictly faster than the cold campaign that populated the corpus while
   reporting byte-identical classifications (skipped sites answered from
   replayed witnesses, everything else re-analyzed).

Emits a machine-readable ``BENCH_triage.json`` artifact; set
``BENCH_ARTIFACT_DIR`` to redirect it.  Standalone::

    PYTHONPATH=src python benchmarks/bench_triage.py
"""

from __future__ import annotations

import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import pytest

from bench_campaign import write_artifact
from repro import __version__
from repro.core.campaign import CampaignConfig, CampaignEngine, CampaignResult
from repro.exec.overflow_witness import OverflowWitnessInterpreter
from repro.triage.corpus import CorpusStore, WitnessRecord
from repro.triage.engine import rebuild_witness_input

#: The schedule/backend arms whose witnesses must dedupe to one record set.
DEDUP_ARMS = (
    {"backend": "serial", "jobs": 1},
    {"backend": "thread", "jobs": 4},
    {"backend": "process", "jobs": 2},
)

ARTIFACT_NAME = "BENCH_triage.json"


def _run(corpus_dir: Optional[str] = None, **overrides) -> CampaignResult:
    return CampaignEngine(
        CampaignConfig(corpus_dir=corpus_dir, **overrides)
    ).run()


# ----------------------------------------------------------------------
# Gate 1: dedup across schedules and backends
# ----------------------------------------------------------------------
@dataclass
class DedupMeasurement:
    arms: List[CampaignResult]
    corpus: Dict[str, WitnessRecord]

    @property
    def exposed_count(self) -> int:
        return self.arms[0].table1_totals()["diode_exposes_overflow"]

    @property
    def raw_reports(self) -> int:
        return sum(arm.triage_stats.raw_reports for arm in self.arms)

    def parity(self) -> bool:
        reference = self.arms[0].classifications()
        return all(arm.classifications() == reference for arm in self.arms)

    def gates(self) -> List[str]:
        failures = []
        if not self.parity():
            failures.append("dedup arms diverged in classifications")
        distinct_counts = {len(self.corpus)} | {
            arm.triage_stats.distinct for arm in self.arms
        }
        if distinct_counts != {self.exposed_count}:
            failures.append(
                f"distinct-overflow counts unstable: {sorted(distinct_counts)} "
                f"(expected {{{self.exposed_count}}})"
            )
        if self.raw_reports <= len(self.corpus):
            failures.append(
                "multi-schedule runs produced no duplicates to collapse "
                f"({self.raw_reports} reports, {len(self.corpus)} records)"
            )
        if any(record.times_seen < len(self.arms) for record in self.corpus.values()):
            failures.append("some witness was not rediscovered by every arm")
        return failures


def run_dedup() -> DedupMeasurement:
    with tempfile.TemporaryDirectory(prefix="diode-corpus-") as corpus_dir:
        arms = [_run(corpus_dir=corpus_dir, **arm) for arm in DEDUP_ARMS]
        corpus = CorpusStore(corpus_dir).load()
    return DedupMeasurement(arms=arms, corpus=corpus)


def print_dedup(measurement: DedupMeasurement) -> None:
    print("\n=== Dedup: schedules and backends into one corpus ===")
    for arm_config, arm in zip(DEDUP_ARMS, measurement.arms):
        stats = arm.triage_stats
        print(
            f"{arm_config['backend']:8s} jobs={arm_config['jobs']}: "
            f"{stats.raw_reports} reports -> {stats.distinct} distinct "
            f"({stats.dedup_ratio():.2f}x), shrink {stats.shrink_ratio():.0%}"
        )
    print(
        f"merged corpus        : {len(measurement.corpus)} records "
        f"from {measurement.raw_reports} reports "
        f"(expected distinct = {measurement.exposed_count} exposed sites)"
    )


# ----------------------------------------------------------------------
# Gate 2: minimized witnesses still wrap
# ----------------------------------------------------------------------
@dataclass
class MinimizationMeasurement:
    total: int
    minimized: int
    reverified: int
    fields_before: int
    fields_after: int

    def gates(self) -> List[str]:
        failures = []
        if self.total == 0:
            failures.append("no witnesses to verify")
        if self.reverified != self.total:
            failures.append(
                f"only {self.reverified}/{self.total} minimized witnesses "
                "re-verified as genuine wraps"
            )
        if self.fields_after > self.fields_before:
            failures.append("minimization grew the witnesses")
        return failures


def run_minimization(
    corpus: Dict[str, WitnessRecord], arms: List[CampaignResult]
) -> MinimizationMeasurement:
    from repro.apps import all_applications
    from repro.core.inputs import InputGenerator
    from repro.core.report import SiteClassification

    applications = {app.name: app for app in all_applications()}
    exposed = {
        (result.application, site.site.name)
        for result in arms[0].application_results
        for site in result.site_results
        if site.classification is SiteClassification.OVERFLOW_EXPOSED
    }
    reverified = 0
    for record in corpus.values():
        application = applications[record.application]
        generator = InputGenerator(application.seed_input, application.format_spec)
        data = rebuild_witness_input(record, generator)
        report = OverflowWitnessInterpreter(application.program).run_witness(data)
        overflowed = {
            r.site_label: True for r in report.overflowed_allocations
        }
        genuine_wrap = (
            record.site_label in overflowed
            if record.site_tag is None
            else any(
                r.site_tag == record.site_tag
                for r in report.overflowed_allocations
            )
        )
        site_exposed = (record.application, record.site_name) in exposed
        if genuine_wrap and site_exposed:
            reverified += 1
    return MinimizationMeasurement(
        total=len(corpus),
        minimized=sum(1 for r in corpus.values() if r.minimized),
        reverified=reverified,
        fields_before=sum(r.original_fields for r in corpus.values()),
        fields_after=sum(r.changed_field_count() for r in corpus.values()),
    )


def print_minimization(measurement: MinimizationMeasurement) -> None:
    print("\n=== Minimization: stored witnesses re-verify as genuine wraps ===")
    print(
        f"witnesses            : {measurement.total} "
        f"({measurement.minimized} minimized)"
    )
    print(
        f"re-verified wraps    : {measurement.reverified}/{measurement.total}"
    )
    print(
        f"triggering fields    : {measurement.fields_before} -> "
        f"{measurement.fields_after}"
    )


# ----------------------------------------------------------------------
# Gate 3: warm skip-known campaign beats cold
# ----------------------------------------------------------------------
@dataclass
class SkipKnownMeasurement:
    cold_seconds: float
    warm_seconds: float
    cold: CampaignResult
    warm: CampaignResult

    @property
    def speedup(self) -> float:
        return self.cold_seconds / self.warm_seconds

    def gates(self) -> List[str]:
        failures = []
        if self.warm.skipped_known == 0:
            failures.append("warm campaign skipped nothing")
        if self.warm.classifications() != self.cold.classifications():
            failures.append("skip-known changed classifications")
        if self.warm_seconds >= self.cold_seconds:
            failures.append(
                f"warm skip-known run {self.warm_seconds:.3f}s not faster "
                f"than cold {self.cold_seconds:.3f}s"
            )
        return failures


def run_skip_known() -> SkipKnownMeasurement:
    with tempfile.TemporaryDirectory(prefix="diode-corpus-") as corpus_dir:
        started = time.perf_counter()
        cold = _run(corpus_dir=corpus_dir, jobs=1)
        cold_seconds = time.perf_counter() - started
        # The cold arm is unrepeatable (it populates the corpus); damp
        # scheduler noise on the warm side only: best of two reruns.
        warm_seconds = float("inf")
        warm = None
        for _ in range(2):
            started = time.perf_counter()
            result = _run(corpus_dir=corpus_dir, jobs=1, skip_known=True)
            elapsed = time.perf_counter() - started
            if elapsed < warm_seconds:
                warm_seconds, warm = elapsed, result
    return SkipKnownMeasurement(
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        cold=cold,
        warm=warm,
    )


def print_skip_known(measurement: SkipKnownMeasurement) -> None:
    print("\n=== Warm corpus + skip-known vs cold campaign ===")
    print(f"cold run             : {measurement.cold_seconds:.3f}s")
    print(
        f"warm --skip-known    : {measurement.warm_seconds:.3f}s "
        f"({measurement.warm.skipped_known} sites answered by replay, "
        f"{measurement.warm.unit_count} analyzed)"
    )
    print(f"speedup              : {measurement.speedup:.2f}x")
    print(
        "classifications equal: "
        f"{measurement.warm.classifications() == measurement.cold.classifications()}"
    )


# ----------------------------------------------------------------------
def artifact_payload(
    dedup: DedupMeasurement,
    minimization: MinimizationMeasurement,
    skip: SkipKnownMeasurement,
) -> dict:
    return {
        "benchmark": "triage",
        "version": __version__,
        "dedup": {
            "arms": [
                {
                    "backend": config["backend"],
                    "jobs": config["jobs"],
                    "raw_reports": arm.triage_stats.raw_reports,
                    "distinct": arm.triage_stats.distinct,
                    "shrink_ratio": round(arm.triage_stats.shrink_ratio(), 4),
                }
                for config, arm in zip(DEDUP_ARMS, dedup.arms)
            ],
            "corpus_records": len(dedup.corpus),
            "expected_distinct": dedup.exposed_count,
            "total_raw_reports": dedup.raw_reports,
        },
        "minimization": {
            "witnesses": minimization.total,
            "minimized": minimization.minimized,
            "reverified": minimization.reverified,
            "fields_before": minimization.fields_before,
            "fields_after": minimization.fields_after,
        },
        "skip_known": {
            "cold_seconds": round(skip.cold_seconds, 4),
            "warm_seconds": round(skip.warm_seconds, 4),
            "speedup": round(skip.speedup, 3),
            "skipped": skip.warm.skipped_known,
        },
    }


# ----------------------------------------------------------------------
# pytest twins
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="triage")
def test_dedup_collapses_to_the_distinct_overflow_count(benchmark):
    measurement = benchmark.pedantic(run_dedup, rounds=1, iterations=1)
    print_dedup(measurement)
    assert measurement.gates() == []


@pytest.mark.benchmark(group="triage")
def test_minimized_witnesses_reverify_and_skip_known_preserves_parity(benchmark):
    measurement = benchmark.pedantic(run_skip_known, rounds=1, iterations=1)
    print_skip_known(measurement)
    # The wall-clock gate is enforced by the standalone entry point (CI);
    # inside the full suite, background load makes timing asserts flaky, so
    # the pytest twin gates correctness only.
    assert measurement.warm.skipped_known > 0
    assert measurement.warm.classifications() == measurement.cold.classifications()
    corpus = {
        record.signature: record for record in measurement.cold.witness_records
    }
    minimization = run_minimization(corpus, [measurement.cold])
    print_minimization(minimization)
    assert minimization.gates() == []


def main() -> int:
    dedup = run_dedup()
    print_dedup(dedup)
    minimization = run_minimization(dedup.corpus, dedup.arms)
    print_minimization(minimization)
    skip = run_skip_known()
    print_skip_known(skip)

    path = write_artifact(
        artifact_payload(dedup, minimization, skip), name=ARTIFACT_NAME
    )
    print(f"\nartifact written     : {path}")

    failures = dedup.gates() + minimization.gates() + skip.gates()
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
