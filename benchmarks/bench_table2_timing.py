"""E7 — Table 2 column 5: analysis and discovery time shape.

The paper reports a one-time per-application analysis cost (minutes on its
2011-era testbed against real binaries) followed by per-site discovery times
of seconds to minutes.  The absolute numbers are not comparable — this
reproduction analyses Python models rather than instrumented x86 binaries —
but the *shape* carries over: analysis is a one-time cost per application,
per-site discovery is fast, and sites needing enforcement take longer than
sites that trigger immediately.
"""

from __future__ import annotations

import pytest

from repro.core import Diode

from benchmarks.conftest import print_table


@pytest.mark.benchmark(group="timing")
def test_analysis_and_discovery_times(benchmark, applications):
    def run():
        engine = Diode()
        return {app.name: engine.analyze(app) for app in applications}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        exposed = [r for r in result.site_results if r.bug_report is not None]
        discovery = [r.discovery_seconds for r in result.site_results]
        rows.append(
            (
                name,
                f"{result.analysis_seconds:.2f}s",
                f"{min(discovery):.2f}s",
                f"{max(discovery):.2f}s",
                len(exposed),
            )
        )
        assert result.analysis_seconds < 60
        assert max(discovery) < 120
    print_table(
        "Per-application analysis time and per-site discovery time",
        ["Application", "Analysis", "Fastest site", "Slowest site", "Overflows"],
        rows,
    )

    # Enforced sites cost more discovery time than immediately-triggered ones.
    enforced_times = []
    immediate_times = []
    for result in results.values():
        for site_result in result.site_results:
            if site_result.bug_report is None:
                continue
            if site_result.bug_report.enforced_branches:
                enforced_times.append(site_result.discovery_seconds)
            else:
                immediate_times.append(site_result.discovery_seconds)
    if enforced_times and immediate_times:
        assert max(enforced_times) >= min(immediate_times)
