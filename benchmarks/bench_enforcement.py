"""Enforcement-loop benchmark: UNSAT-core guidance and per-site sessions.

Two workloads back the acceptance bar of the core-guided enforcement stack
(PR 5), each comparing the *unguided* path (``--no-core-guidance``:
``SolverConfig.enable_unsat_cores`` off, every candidate query solved) with
the *guided* default (UNSAT verdicts carry cores; the enforcer accumulates
them per site and answers any later query whose conjunct set subsumes a
core without a solver call):

1. **Registry re-analysis** — every registry site's enforcement run twice
   through its per-site enforcer (the repeated-analysis pattern: warm
   campaigns, ablation sweeps, multi-observation sites).  The hard
   invariant, enforced not observed: site classifications are
   *byte-identical* between the guided and unguided arms, on both passes —
   core subsumption only ever replaces a solver call that was guaranteed
   to return UNSAT.  The guided arm must also finish with *strictly fewer
   enforcement solver checks*: second-pass UNSAT queries (unsatisfiable
   target constraints, infeasible branch conjunctions) are answered from
   the accumulated cores.
2. **CDCL-hard guarded chains** — registry-shaped guarded-allocation
   programs whose checksum/mask sanity checks defeat the incomplete
   portfolio layers, so the enforcement loop's terminating UNSAT is proved
   by the session's assumption-based CDCL (this is where the extracted
   final-conflict cores are *precise*).  The guided arm must finish with
   strictly fewer CDCL conflicts and solver checks than the unguided arm,
   with identical outcomes — re-deriving the UNSAT tail is exactly the
   work the cores eliminate.
3. **Hot-path speedup** — the same CDCL-hard chains on the legacy solving
   stack (:func:`repro.smt.hotpath.legacy_hot_path`) versus the flattened
   one, byte-identical classifications required and a
   :data:`MIN_HOTPATH_SPEEDUP` wall-clock floor enforced (the flattening
   PR's acceptance gate).

Emits a machine-readable ``BENCH_enforcement.json`` artifact; set
``BENCH_ARTIFACT_DIR`` to redirect it.  Standalone::

    PYTHONPATH=src python benchmarks/bench_enforcement.py
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import pytest

from bench_campaign import write_artifact
from repro import __version__
from repro.apps import all_applications
from repro.apps.appbase import Application
from repro.core.detection import ErrorDetector
from repro.core.engine import _better_outcome
from repro.core.enforcement import EnforcementResult, GoalDirectedEnforcer
from repro.core.fieldmap import FieldMapper
from repro.core.inputs import InputGenerator
from repro.core.report import classification_from_enforcement
from repro.core.sites import identify_target_sites
from repro.core.target import extract_target_observations
from repro.formats.fields import Endianness, FieldKind, FieldSpec
from repro.formats.spec import FormatSpec
from repro.lang.program import Program
from repro.smt.cache import SolverCache
from repro.smt.solver import TELEMETRY, PortfolioSolver, SolverConfig

#: Re-analysis passes per site (pass 1 is cold; later passes are where the
#: accumulated cores answer the repeated UNSAT queries).
REGISTRY_PASSES = 2

#: Passes for the CDCL-hard chains: the extra pass amplifies the repeated
#: UNSAT-tail derivations the cores eliminate.
HARD_PASSES = 3

#: Number of constant-varied CDCL-hard guarded programs in workload 2.
HARD_VARIANTS = 3

#: Required wall-clock speedup of the flattened solving hot path over the
#: legacy arm on the CDCL-hard chains (the standalone CI gate; measured
#: ~5.9x on the reference machine).
MIN_HOTPATH_SPEEDUP = 5.0

#: Looser floor for the pytest twin, which runs inside the full benchmark
#: suite where background load can squeeze the measurement.
SUITE_MIN_HOTPATH_SPEEDUP = 3.0


# ----------------------------------------------------------------------
# Shared arm harness
# ----------------------------------------------------------------------
@dataclass
class ArmMeasurement:
    """One arm (guided or unguided) of a workload."""

    label: str
    wall_seconds: float
    #: Per-pass classification maps: application -> site -> classification.
    classifications: List[Dict[str, Dict[str, str]]]
    telemetry: Dict[str, float]

    @property
    def conflicts(self) -> int:
        return int(self.telemetry["cdcl_conflicts"])

    @property
    def checks(self) -> int:
        """Solver-backed enforcement checks (core-pruned queries excluded)."""
        return int(self.telemetry["queries"])

    @property
    def pruned(self) -> int:
        return int(self.telemetry["core_pruned_candidates"])


def _arm_config(guided: bool) -> SolverConfig:
    return SolverConfig(enable_unsat_cores=guided)


def _classify(results: List[EnforcementResult]) -> str:
    best = results[0]
    for candidate in results[1:]:
        if _better_outcome(candidate, best):
            best = candidate
    return classification_from_enforcement(best).value


def _run_applications(
    applications: List[Application],
    guided: bool,
    label: str,
    passes: int,
    use_cache: bool,
) -> ArmMeasurement:
    """Drive every site's enforcement ``passes`` times through one arm.

    Mirrors the campaign's setup — one detector and field mapper per
    application, one enforcer (hence one session and one core accumulator)
    per site — so the measured deltas are exactly what core guidance
    changes.  Workload 1 shares a solver cache like the campaign does;
    workload 2 runs uncached so the session/CDCL interaction is measured
    in isolation (cached pure verdicts would hide the repeated complete-
    backend work the cores eliminate).
    """
    cache = SolverCache() if use_cache else None
    classifications: List[Dict[str, Dict[str, str]]] = [
        {} for _ in range(passes)
    ]
    TELEMETRY.reset()
    started = time.perf_counter()
    for app in applications:
        mapper = FieldMapper(app.format_spec)
        detector = ErrorDetector(app.program, app.seed_input)
        generator = InputGenerator(app.seed_input, app.format_spec)
        for site in identify_target_sites(app.program, app.seed_input):
            observations = extract_target_observations(
                app.program,
                app.seed_input,
                site,
                field_mapper=mapper,
                max_observations=2,
            )
            enforcer = GoalDirectedEnforcer(
                PortfolioSolver(_arm_config(guided), cache=cache),
                generator,
                detector,
            )
            for pass_index in range(passes):
                results = []
                for observation in observations:
                    result = enforcer.run(observation)
                    results.append(result)
                    if result.found_overflow:
                        break
                classifications[pass_index].setdefault(app.name, {})[
                    site.name
                ] = _classify(results)
    return ArmMeasurement(
        label=label,
        wall_seconds=time.perf_counter() - started,
        classifications=classifications,
        telemetry=TELEMETRY.snapshot(),
    )


# ----------------------------------------------------------------------
# Workload 1: registry re-analysis
# ----------------------------------------------------------------------
def run_registry(guided: bool) -> ArmMeasurement:
    return _run_applications(
        all_applications(),
        guided,
        "guided" if guided else "unguided",
        passes=REGISTRY_PASSES,
        use_cache=True,
    )


# ----------------------------------------------------------------------
# Workload 2: CDCL-hard guarded chains
# ----------------------------------------------------------------------
def _hard_application(variant: int) -> Application:
    """A guarded allocation whose sanity checks only the CDCL can reason on.

    The checksum guards pin exact low-bit patterns of ``w``/``h`` sums (the
    regime interval propagation and boundary sampling cannot decide), and
    the mask guards bound the high bytes so that once every guard is
    enforced the overflow target is infeasible — an UNSAT tail proved by
    the session's assumption-based CDCL, which is what makes its
    final-conflict core precise.  The square guard exists purely to keep
    that tail *expensive*: no square is ``5 mod 32``, so flipping the
    branch is an UNSAT query that costs the CDCL real conflicts even
    under the structurally-hashed encoder (which refutes the plain
    checksum tail by root propagation alone) — re-deriving it each pass
    is exactly the work core subsumption eliminates.
    """
    w0, h0 = 37 + 8 * variant, 91 + 4 * variant
    checksum1 = (w0 + h0) & 255
    checksum2 = (w0 * 3 + h0) & 127
    source = f"""
proc main() {{
  w = (input(4) << 8) | input(5);
  h = (input(6) << 8) | input(7);
  if (((w + h) & 255) != {checksum1}) {{ halt "checksum1"; }}
  if (((w * 3 + h) & 127) != {checksum2}) {{ halt "checksum2"; }}
  if (((w * w) & 31) == 5) {{ halt "square"; }}
  if ((w & 65280) != 0) {{ halt "wmask"; }}
  if ((h & 65280) != 0) {{ halt "hmask"; }}
  buf = alloc(w * h * 1024) @ "hard.c@{variant}";
}}
"""
    spec = FormatSpec(
        f"hard{variant}",
        [
            FieldSpec("/magic", 0, 4, FieldKind.MAGIC, mutable=False),
            FieldSpec("/w", 4, 2, FieldKind.UINT, Endianness.BIG),
            FieldSpec("/h", 6, 2, FieldKind.UINT, Endianness.BIG),
        ],
    )
    seed = b"HARD" + w0.to_bytes(2, "big") + h0.to_bytes(2, "big")
    return Application(
        name=f"Hard{variant}",
        program=Program.from_source(source, name=f"hard{variant}"),
        format_spec=spec,
        seed_input=seed,
        expectations=[],
    )


def run_hard_chains(guided: bool) -> ArmMeasurement:
    applications = [_hard_application(v) for v in range(HARD_VARIANTS)]
    return _run_applications(
        applications,
        guided,
        "guided" if guided else "unguided",
        passes=HARD_PASSES,
        use_cache=False,
    )


# ----------------------------------------------------------------------
# Workload 3: flattened solving hot path vs the legacy arm
# ----------------------------------------------------------------------
def run_hotpath_speedup() -> Tuple[ArmMeasurement, ArmMeasurement]:
    """The CDCL-hard chains on the legacy vs the flattened hot path.

    Both arms run the *guided* configuration end-to-end — interpreter,
    enforcement loop, sessions, CDCL — differing only in the solving hot
    path (:func:`repro.smt.hotpath.legacy_hot_path` swaps in the
    object-graph CDCL, the recursive term interpreter and the unhashed
    Tseitin encoder).  Classifications must be byte-identical across
    every pass; the wall-clock speedup is the flattening PR's acceptance
    gate.
    """
    from repro.smt.hotpath import legacy_hot_path

    with legacy_hot_path():
        legacy = run_hard_chains(True)
        legacy.label = "legacy"
    flat = run_hard_chains(True)
    flat.label = "flat"
    return legacy, flat


def print_hotpath(legacy: ArmMeasurement, flat: ArmMeasurement) -> None:
    print("\n=== CDCL-hard chains: legacy hot path vs flattened core ===")
    for arm in (legacy, flat):
        print(
            f"{arm.label:9s}: {arm.wall_seconds:6.3f}s wall, "
            f"{arm.checks} enforcement checks, "
            f"{arm.conflicts} CDCL conflicts, "
            f"{int(arm.telemetry['propagations'])} propagations"
        )
    print(
        "classifications equal: "
        f"{legacy.classifications == flat.classifications}"
    )
    if flat.wall_seconds > 0:
        print(f"wall speedup         : {legacy.wall_seconds / flat.wall_seconds:.2f}x")


# ----------------------------------------------------------------------
# Reporting and gates
# ----------------------------------------------------------------------
def print_arms(title: str, unguided: ArmMeasurement, guided: ArmMeasurement) -> None:
    print(f"\n=== {title} ===")
    for arm in (unguided, guided):
        print(
            f"{arm.label:9s}: {arm.wall_seconds:6.3f}s wall, "
            f"{arm.checks} enforcement checks, "
            f"{arm.conflicts} CDCL conflicts, "
            f"{arm.pruned} queries answered from cores, "
            f"{int(arm.telemetry['cores_extracted'])} cores, "
            f"{int(arm.telemetry['sessions_reused'])} sessions reused"
        )
    print(
        "classifications equal: "
        f"{unguided.classifications == guided.classifications}"
    )


def artifact_payload(
    registry_unguided: ArmMeasurement,
    registry_guided: ArmMeasurement,
    hard_unguided: ArmMeasurement,
    hard_guided: ArmMeasurement,
    hotpath_legacy: ArmMeasurement,
    hotpath_flat: ArmMeasurement,
) -> dict:
    def arm(measurement: ArmMeasurement) -> dict:
        return {
            "wall_seconds": round(measurement.wall_seconds, 4),
            "enforcement_checks": measurement.checks,
            "cdcl_conflicts": measurement.conflicts,
            "core_pruned_candidates": measurement.pruned,
            "cores_extracted": int(measurement.telemetry["cores_extracted"]),
            "sessions_reused": int(measurement.telemetry["sessions_reused"]),
            "propagations": int(measurement.telemetry.get("propagations", 0)),
            "sat_decisions": int(
                measurement.telemetry.get("sat_decisions", 0)
            ),
        }

    return {
        "benchmark": "enforcement",
        "version": __version__,
        "registry_passes": REGISTRY_PASSES,
        "hard_passes": HARD_PASSES,
        "registry": {
            "unguided": arm(registry_unguided),
            "guided": arm(registry_guided),
            "classification_parity": (
                registry_unguided.classifications
                == registry_guided.classifications
            ),
        },
        "hard_chains": {
            "variants": HARD_VARIANTS,
            "unguided": arm(hard_unguided),
            "guided": arm(hard_guided),
            "classification_parity": (
                hard_unguided.classifications == hard_guided.classifications
            ),
        },
        "hotpath": {
            "min_speedup": MIN_HOTPATH_SPEEDUP,
            "legacy": arm(hotpath_legacy),
            "flat": arm(hotpath_flat),
            "classification_parity": (
                hotpath_legacy.classifications == hotpath_flat.classifications
            ),
            "wall_speedup": round(
                hotpath_legacy.wall_seconds / hotpath_flat.wall_seconds, 2
            )
            if hotpath_flat.wall_seconds > 0
            else None,
        },
    }


def _gate_failures(
    registry_unguided: ArmMeasurement,
    registry_guided: ArmMeasurement,
    hard_unguided: ArmMeasurement,
    hard_guided: ArmMeasurement,
    hotpath_legacy: ArmMeasurement,
    hotpath_flat: ArmMeasurement,
) -> List[str]:
    failures = []
    if registry_unguided.classifications != registry_guided.classifications:
        failures.append(
            "registry classifications diverge between guided and unguided arms"
        )
    if registry_guided.checks >= registry_unguided.checks:
        failures.append(
            f"guided registry enforcement checks {registry_guided.checks} not "
            f"below unguided {registry_unguided.checks}"
        )
    if registry_guided.pruned <= 0:
        failures.append("registry re-analysis answered no queries from cores")
    if hard_unguided.classifications != hard_guided.classifications:
        failures.append(
            "hard-chain classifications diverge between guided and unguided arms"
        )
    if hard_guided.conflicts >= hard_unguided.conflicts:
        failures.append(
            f"guided CDCL conflicts {hard_guided.conflicts} not below "
            f"unguided {hard_unguided.conflicts} on the hard chains"
        )
    if hard_guided.checks >= hard_unguided.checks:
        failures.append(
            f"guided enforcement checks {hard_guided.checks} not below "
            f"unguided {hard_unguided.checks} on the hard chains"
        )
    if hotpath_legacy.classifications != hotpath_flat.classifications:
        failures.append(
            "hot-path classifications diverge between legacy and flat arms"
        )
    speedup = (
        hotpath_legacy.wall_seconds / hotpath_flat.wall_seconds
        if hotpath_flat.wall_seconds > 0
        else float("inf")
    )
    if speedup < MIN_HOTPATH_SPEEDUP:
        failures.append(
            f"flattened hot path speedup {speedup:.2f}x below the "
            f"{MIN_HOTPATH_SPEEDUP:.1f}x floor on the CDCL-hard chains"
        )
    return failures


# ----------------------------------------------------------------------
# pytest twins
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="enforcement")
def test_registry_core_guidance_parity_and_fewer_checks(benchmark):
    """Byte-identical classifications; strictly fewer enforcement checks."""

    def both():
        return run_registry(False), run_registry(True)

    unguided, guided = benchmark.pedantic(both, rounds=1, iterations=1)
    print_arms("Registry re-analysis", unguided, guided)
    assert unguided.classifications == guided.classifications
    assert guided.checks < unguided.checks
    assert guided.pruned > 0


@pytest.mark.benchmark(group="enforcement")
def test_hard_chains_guided_saves_cdcl_conflicts(benchmark):
    """Core subsumption skips the CDCL-derived UNSAT tail on re-analysis."""

    def both():
        return run_hard_chains(False), run_hard_chains(True)

    unguided, guided = benchmark.pedantic(both, rounds=1, iterations=1)
    print_arms("CDCL-hard guarded chains", unguided, guided)
    assert unguided.classifications == guided.classifications
    assert guided.conflicts < unguided.conflicts
    assert guided.checks < unguided.checks


@pytest.mark.benchmark(group="enforcement")
def test_flattened_hot_path_speedup_on_hard_chains(benchmark):
    """Identical classifications; the flattening PR's wall-clock gate.

    The suite twin uses the looser floor (the standalone entry point
    enforces :data:`MIN_HOTPATH_SPEEDUP`).
    """
    legacy, flat = benchmark.pedantic(run_hotpath_speedup, rounds=1, iterations=1)
    print_hotpath(legacy, flat)
    assert legacy.classifications == flat.classifications
    assert legacy.wall_seconds / flat.wall_seconds >= SUITE_MIN_HOTPATH_SPEEDUP


# ----------------------------------------------------------------------
# Standalone entry point (the CI gate)
# ----------------------------------------------------------------------
def main() -> int:
    registry_unguided = run_registry(False)
    registry_guided = run_registry(True)
    print_arms("Registry re-analysis", registry_unguided, registry_guided)

    hard_unguided = run_hard_chains(False)
    hard_guided = run_hard_chains(True)
    print_arms("CDCL-hard guarded chains", hard_unguided, hard_guided)

    hotpath_legacy, hotpath_flat = run_hotpath_speedup()
    print_hotpath(hotpath_legacy, hotpath_flat)

    path = write_artifact(
        artifact_payload(
            registry_unguided,
            registry_guided,
            hard_unguided,
            hard_guided,
            hotpath_legacy,
            hotpath_flat,
        ),
        name="BENCH_enforcement.json",
    )
    print(f"\nartifact written: {path}")

    failures = _gate_failures(
        registry_unguided,
        registry_guided,
        hard_unguided,
        hard_guided,
        hotpath_legacy,
        hotpath_flat,
    )
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
