"""Shared fixtures and helpers for the benchmark harnesses.

Each benchmark regenerates one of the paper's evaluation artifacts (Table 1,
Table 2 and its success-rate columns, the Section 5.4 blocking-check study,
the Section 2 walkthrough) and prints the reproduced rows next to the values
the paper reports.  Heavy pipelines are run exactly once per benchmark via
``benchmark.pedantic(..., rounds=1, iterations=1)``.
"""

from __future__ import annotations

import pytest

from repro.apps import all_applications, get_application
from repro.core import Diode
from repro.core.fieldmap import FieldMapper
from repro.core.sites import identify_target_sites
from repro.core.target import extract_target_observations


@pytest.fixture(scope="session")
def applications():
    return all_applications()


@pytest.fixture(scope="session")
def analysis_results(applications):
    engine = Diode()
    return {app.name: engine.analyze(app) for app in applications}


@pytest.fixture(scope="session")
def dillo_app():
    return get_application("dillo")


def observation_for(app, tag):
    """Extract the ⟨target expression, seed path⟩ observation for one site."""
    sites = identify_target_sites(app.program, app.seed_input)
    site = next(s for s in sites if s.site_tag == tag)
    mapper = FieldMapper(app.format_spec)
    return extract_target_observations(
        app.program, app.seed_input, site, field_mapper=mapper
    )[0]


def exposed_observations(app):
    """Observations for every site the paper reports as exposed."""
    exposed_tags = [e.tag for e in app.expectations if e.classification == "exposed"]
    return [(tag, observation_for(app, tag)) for tag in exposed_tags]


def print_table(title, header, rows):
    """Print a small aligned table to the benchmark log."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
