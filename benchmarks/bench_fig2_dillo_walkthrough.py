"""E6 — Section 2 / Figure 2: the Dillo walkthrough.

Regenerates the worked example the paper opens with: starting from a benign
seed PNG, DIODE extracts the ``rowbytes * height`` target expression at the
Dillo image-data allocation, solves the target constraint, and incrementally
enforces the libpng / Dillo sanity checks (png_get_uint_31, png_check_IHDR,
the buggy Png_datainfo_callback size check) until the generated PNG triggers
the overflow and crashes the model with an invalid read.
"""

from __future__ import annotations

import pytest

from repro.core.detection import ErrorDetector
from repro.core.enforcement import GoalDirectedEnforcer
from repro.core.fieldmap import FieldMapper
from repro.core.inputs import InputGenerator
from repro.core.sites import identify_target_sites
from repro.core.target import extract_target_observations
from repro.formats.png import PngFormat
from repro.smt.solver import PortfolioSolver

from benchmarks.conftest import print_table


@pytest.mark.benchmark(group="figure2")
def test_dillo_walkthrough(benchmark, dillo_app):
    """Run goal-directed enforcement on the png.c@203 site and report each step."""

    def run():
        sites = identify_target_sites(dillo_app.program, dillo_app.seed_input)
        site = next(s for s in sites if s.site_tag == "png.c@203")
        observation = extract_target_observations(
            dillo_app.program,
            dillo_app.seed_input,
            site,
            field_mapper=FieldMapper(dillo_app.format_spec),
        )[0]
        enforcer = GoalDirectedEnforcer(
            PortfolioSolver(),
            InputGenerator(dillo_app.seed_input, dillo_app.format_spec),
            ErrorDetector(dillo_app.program, dillo_app.seed_input),
        )
        return site, observation, enforcer.run(observation)

    site, observation, result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert result.found_overflow
    assert 1 <= result.enforced_count <= 6

    rows = []
    for step in result.steps:
        model = step.candidate_model or {}
        rows.append(
            (
                step.iteration,
                step.enforced_label if step.enforced_label is not None else "-",
                model.get("/header/width", "-"),
                model.get("/header/height", "-"),
                model.get("/header/bit_depth", "-"),
                "overflow" if step.triggered else "rejected by checks",
            )
        )
    print_table(
        "Figure 2 walkthrough: goal-directed enforcement on Dillo png.c@203",
        ["Iteration", "Enforced label", "width", "height", "bit_depth", "Result"],
        rows,
    )

    # The triggering input is a structurally valid PNG whose width/height/
    # bit-depth fields survive every sanity check yet wrap the allocation.
    final = result.triggering_model
    dissected = PngFormat.dissect(result.triggering_input)
    assert dissected.value_of("/header/width") == final["/header/width"]
    assert dissected.value_of("/header/width") <= 1_000_000
    assert dissected.value_of("/header/height") <= 1_000_000
    evaluation = result.evaluation
    assert evaluation is not None and evaluation.triggers_overflow
    print(
        f"\nTriggering PNG: width={final['/header/width']} "
        f"height={final['/header/height']} bit_depth={final.get('/header/bit_depth')} "
        f"-> error type {evaluation.error_type()}"
    )
