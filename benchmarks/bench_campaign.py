"""Campaign engine benchmark: serial-uncached vs parallel+cached wall clock.

Reproduces the headline claims of the campaign PRs:

1. fanning the whole registry out over the campaign scheduler with the
   shared solver cache (plus the persistent simplification memo) beats the
   serial, uncached baseline by at least 1.5x while answering a nonzero
   fraction of solver queries from cache;
2. a warm-cache rerun against a persistent ``cache_dir`` store answers
   *more* queries from cache and finishes *faster* than the cold run that
   populated the store — both enforced, not just observed.

Every standalone run also emits a machine-readable ``BENCH_campaign.json``
artifact (speedup, hit rates, wall seconds, backend) so the performance
trajectory is tracked across PRs; set ``BENCH_ARTIFACT_DIR`` to redirect
it.

Runs under pytest-benchmark like the sibling harnesses, and standalone for
CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_campaign.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Optional

import pytest

from repro import __version__
from repro.core.campaign import CampaignConfig, CampaignEngine, CampaignResult

#: The minimum speedup the campaign architecture must deliver over the
#: serial-uncached baseline on the registry workload.
MIN_SPEEDUP = 1.5

#: Looser floor used by the pytest twin, which runs inside the full suite
#: where background load can squeeze the measurement; the standalone entry
#: point (`python benchmarks/bench_campaign.py`, the CI smoke step) enforces
#: the real MIN_SPEEDUP.
SUITE_MIN_SPEEDUP = 1.2

#: Name of the machine-readable artifact emitted by the standalone runs.
ARTIFACT_NAME = "BENCH_campaign.json"


def write_artifact(payload: dict, name: str = ARTIFACT_NAME) -> str:
    """Write a benchmark artifact as JSON; returns the path written.

    The ``version`` field is force-stamped from ``repro.__version__`` here —
    not left to each bench's payload builder — so a checked-in artifact can
    never carry a stale release string regardless of which script wrote it.
    The git-describe string rides along the same way, and every write also
    appends one attributed record to ``BENCH_history.jsonl`` beside the
    artifact, so the perf trajectory accumulates run over run
    (compare with ``repro bench-diff``; see :mod:`repro.obs.benchhist`).
    """
    from repro.obs.attribution import git_describe
    from repro.obs.benchhist import append_history

    payload = dict(payload)
    payload["version"] = __version__
    described = git_describe()
    if described is not None:
        payload["git"] = described
    directory = os.environ.get("BENCH_ARTIFACT_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    append_history(payload, name, directory)
    return path


@dataclass
class Comparison:
    """Both arms of the serial-vs-campaign measurement."""

    serial_seconds: float
    campaign_seconds: float
    serial_result: CampaignResult
    campaign_result: CampaignResult

    @property
    def speedup(self) -> float:
        return self.serial_seconds / self.campaign_seconds

    @property
    def hit_rate(self) -> float:
        stats = self.campaign_result.cache_stats
        return stats.hit_rate() if stats is not None else 0.0


@dataclass
class StoreComparison:
    """Cold-populate vs warm-start arms of the persistent-store measurement."""

    cold_seconds: float
    warm_seconds: float
    cold_result: CampaignResult
    warm_result: CampaignResult

    @property
    def cold_hit_rate(self) -> float:
        return self.cold_result.cache_stats.hit_rate()

    @property
    def warm_hit_rate(self) -> float:
        return self.warm_result.cache_stats.hit_rate()

    @property
    def warm_speedup(self) -> float:
        return self.cold_seconds / self.warm_seconds


def _run(jobs: int, use_cache: bool, **overrides) -> CampaignResult:
    return CampaignEngine(
        CampaignConfig(jobs=jobs, use_cache=use_cache, **overrides)
    ).run()


def run_comparison(jobs: Optional[int] = None, rounds: int = 2) -> Comparison:
    """Measure both arms, keeping the best of ``rounds`` runs per arm."""
    resolved_jobs = CampaignConfig(jobs=jobs).resolved_jobs()
    serial_seconds = campaign_seconds = float("inf")
    serial_result = campaign_result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = _run(jobs=1, use_cache=False)
        elapsed = time.perf_counter() - started
        if elapsed < serial_seconds:
            serial_seconds, serial_result = elapsed, result
    for _ in range(rounds):
        started = time.perf_counter()
        result = _run(jobs=resolved_jobs, use_cache=True)
        elapsed = time.perf_counter() - started
        if elapsed < campaign_seconds:
            campaign_seconds, campaign_result = elapsed, result
    return Comparison(
        serial_seconds=serial_seconds,
        campaign_seconds=campaign_seconds,
        serial_result=serial_result,
        campaign_result=campaign_result,
    )


def run_store_comparison(
    jobs: Optional[int] = None, cache_dir: Optional[str] = None
) -> StoreComparison:
    """Cold run populating a persistent store, then a warm-start rerun."""

    def measure(directory: str) -> StoreComparison:
        started = time.perf_counter()
        cold = _run(jobs=jobs or 1, use_cache=True, cache_dir=directory)
        cold_seconds = time.perf_counter() - started
        # The cold run is unrepeatable (it populates the store), so damp
        # scheduler noise on the warm side only: best of two reruns.
        warm_seconds = float("inf")
        warm = None
        for _ in range(2):
            started = time.perf_counter()
            result = _run(jobs=jobs or 1, use_cache=True, cache_dir=directory)
            elapsed = time.perf_counter() - started
            if elapsed < warm_seconds:
                warm_seconds, warm = elapsed, result
        return StoreComparison(
            cold_seconds=cold_seconds,
            warm_seconds=warm_seconds,
            cold_result=cold,
            warm_result=warm,
        )

    if cache_dir is not None:
        return measure(cache_dir)
    with tempfile.TemporaryDirectory(prefix="diode-cache-") as directory:
        return measure(directory)


def print_comparison(comparison: Comparison) -> None:
    stats = comparison.campaign_result.cache_stats
    print("\n=== Campaign engine: serial-uncached vs parallel+cached ===")
    print(f"serial, no cache     : {comparison.serial_seconds:.3f}s")
    print(
        f"campaign ({comparison.campaign_result.jobs} worker(s), cached)"
        f" : {comparison.campaign_seconds:.3f}s"
    )
    print(f"speedup              : {comparison.speedup:.2f}x (floor {MIN_SPEEDUP}x)")
    print(
        f"solver cache         : {stats.hits} hits / {stats.lookups} lookups "
        f"({comparison.hit_rate:.1%}), {stats.stores} entries stored"
    )
    print(
        "classifications equal: "
        f"{comparison.serial_result.classifications() == comparison.campaign_result.classifications()}"
    )


def print_store_comparison(comparison: StoreComparison) -> None:
    print("\n=== Persistent cache store: cold populate vs warm start ===")
    print(
        f"cold run             : {comparison.cold_seconds:.3f}s "
        f"(hit rate {comparison.cold_hit_rate:.1%}, "
        f"saved {comparison.cold_result.cache_saved} entries)"
    )
    print(
        f"warm rerun           : {comparison.warm_seconds:.3f}s "
        f"(hit rate {comparison.warm_hit_rate:.1%}, "
        f"warm-started {comparison.warm_result.cache_loaded} entries)"
    )
    print(f"warm speedup         : {comparison.warm_speedup:.2f}x")
    print(
        "classifications equal: "
        f"{comparison.cold_result.classifications() == comparison.warm_result.classifications()}"
    )


def artifact_payload(
    comparison: Comparison, store: StoreComparison
) -> dict:
    return {
        "benchmark": "campaign",
        "version": __version__,
        "backend": comparison.campaign_result.backend,
        "jobs": comparison.campaign_result.jobs,
        "unit_count": comparison.campaign_result.unit_count,
        "serial_seconds": round(comparison.serial_seconds, 4),
        "campaign_seconds": round(comparison.campaign_seconds, 4),
        "speedup": round(comparison.speedup, 3),
        "hit_rate": round(comparison.hit_rate, 4),
        "min_speedup_floor": MIN_SPEEDUP,
        "store": {
            "cold_seconds": round(store.cold_seconds, 4),
            "warm_seconds": round(store.warm_seconds, 4),
            "warm_speedup": round(store.warm_speedup, 3),
            "cold_hit_rate": round(store.cold_hit_rate, 4),
            "warm_hit_rate": round(store.warm_hit_rate, 4),
            "entries_saved": store.cold_result.cache_saved,
            "entries_loaded": store.warm_result.cache_loaded,
        },
    }


@pytest.mark.benchmark(group="campaign")
def test_campaign_serial_uncached(benchmark):
    """Baseline: the registry analyzed serially with no shared cache."""
    result = benchmark.pedantic(
        lambda: _run(jobs=1, use_cache=False), rounds=1, iterations=1
    )
    assert result.unit_count == 40


@pytest.mark.benchmark(group="campaign")
def test_campaign_parallel_cached(benchmark):
    """The campaign engine with worker threads and the shared solver cache."""
    result = benchmark.pedantic(
        lambda: _run(jobs=4, use_cache=True), rounds=1, iterations=1
    )
    assert result.unit_count == 40
    assert result.cache_stats is not None and result.cache_stats.hits > 0


@pytest.mark.benchmark(group="campaign")
def test_campaign_speedup_and_hit_rate(benchmark):
    """The cached campaign beats serial-uncached and reuses solver verdicts."""
    comparison = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_comparison(comparison)
    assert (
        comparison.serial_result.classifications()
        == comparison.campaign_result.classifications()
    )
    assert comparison.hit_rate > 0.0
    assert comparison.speedup >= SUITE_MIN_SPEEDUP


@pytest.mark.benchmark(group="campaign")
def test_campaign_warm_store_beats_cold(benchmark):
    """A warm-start rerun hits the cache more and finishes faster."""
    comparison = benchmark.pedantic(run_store_comparison, rounds=1, iterations=1)
    print_store_comparison(comparison)
    assert (
        comparison.cold_result.classifications()
        == comparison.warm_result.classifications()
    )
    assert comparison.warm_result.cache_loaded > 0
    assert comparison.warm_hit_rate > comparison.cold_hit_rate
    assert comparison.warm_seconds < comparison.cold_seconds


def main() -> int:
    comparison = run_comparison()
    print_comparison(comparison)
    store = run_store_comparison()
    print_store_comparison(store)
    path = write_artifact(artifact_payload(comparison, store))
    print(f"\nartifact written     : {path}")
    if comparison.campaign_result.classifications() != (
        comparison.serial_result.classifications()
    ):
        print("FAIL: campaign classifications diverge from the serial path")
        return 1
    if comparison.hit_rate <= 0.0:
        print("FAIL: solver cache hit rate is zero")
        return 1
    if comparison.speedup < MIN_SPEEDUP:
        print(f"FAIL: speedup {comparison.speedup:.2f}x below {MIN_SPEEDUP}x floor")
        return 1
    if store.cold_result.classifications() != store.warm_result.classifications():
        print("FAIL: warm-start classifications diverge from the cold run")
        return 1
    if store.warm_hit_rate <= store.cold_hit_rate:
        print(
            f"FAIL: warm hit rate {store.warm_hit_rate:.1%} does not beat "
            f"cold {store.cold_hit_rate:.1%}"
        )
        return 1
    if store.warm_seconds >= store.cold_seconds:
        print(
            f"FAIL: warm rerun {store.warm_seconds:.3f}s not faster than "
            f"cold run {store.cold_seconds:.3f}s"
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
