"""Campaign engine benchmark: serial-uncached vs parallel+cached wall clock.

Reproduces the headline claim of the campaign PR: fanning the whole registry
out over the campaign scheduler with the shared solver cache (plus the
persistent simplification memo) beats the serial, uncached baseline by at
least 1.5x while answering a nonzero fraction of solver queries from cache.

Runs under pytest-benchmark like the sibling harnesses, and standalone for
CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_campaign.py
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Optional

import pytest

from repro.core.campaign import CampaignConfig, CampaignEngine, CampaignResult

#: The minimum speedup the campaign architecture must deliver over the
#: serial-uncached baseline on the registry workload.
MIN_SPEEDUP = 1.5

#: Looser floor used by the pytest twin, which runs inside the full suite
#: where background load can squeeze the measurement; the standalone entry
#: point (`python benchmarks/bench_campaign.py`, the CI smoke step) enforces
#: the real MIN_SPEEDUP.
SUITE_MIN_SPEEDUP = 1.2


@dataclass
class Comparison:
    """Both arms of the serial-vs-campaign measurement."""

    serial_seconds: float
    campaign_seconds: float
    serial_result: CampaignResult
    campaign_result: CampaignResult

    @property
    def speedup(self) -> float:
        return self.serial_seconds / self.campaign_seconds

    @property
    def hit_rate(self) -> float:
        stats = self.campaign_result.cache_stats
        return stats.hit_rate() if stats is not None else 0.0


def _run(jobs: int, use_cache: bool) -> CampaignResult:
    return CampaignEngine(CampaignConfig(jobs=jobs, use_cache=use_cache)).run()


def run_comparison(jobs: Optional[int] = None, rounds: int = 2) -> Comparison:
    """Measure both arms, keeping the best of ``rounds`` runs per arm."""
    resolved_jobs = CampaignConfig(jobs=jobs).resolved_jobs()
    serial_seconds = campaign_seconds = float("inf")
    serial_result = campaign_result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = _run(jobs=1, use_cache=False)
        elapsed = time.perf_counter() - started
        if elapsed < serial_seconds:
            serial_seconds, serial_result = elapsed, result
    for _ in range(rounds):
        started = time.perf_counter()
        result = _run(jobs=resolved_jobs, use_cache=True)
        elapsed = time.perf_counter() - started
        if elapsed < campaign_seconds:
            campaign_seconds, campaign_result = elapsed, result
    return Comparison(
        serial_seconds=serial_seconds,
        campaign_seconds=campaign_seconds,
        serial_result=serial_result,
        campaign_result=campaign_result,
    )


def print_comparison(comparison: Comparison) -> None:
    stats = comparison.campaign_result.cache_stats
    print("\n=== Campaign engine: serial-uncached vs parallel+cached ===")
    print(f"serial, no cache     : {comparison.serial_seconds:.3f}s")
    print(
        f"campaign ({comparison.campaign_result.jobs} worker(s), cached)"
        f" : {comparison.campaign_seconds:.3f}s"
    )
    print(f"speedup              : {comparison.speedup:.2f}x (floor {MIN_SPEEDUP}x)")
    print(
        f"solver cache         : {stats.hits} hits / {stats.lookups} lookups "
        f"({comparison.hit_rate:.1%}), {stats.stores} entries stored"
    )
    print(
        "classifications equal: "
        f"{comparison.serial_result.classifications() == comparison.campaign_result.classifications()}"
    )


@pytest.mark.benchmark(group="campaign")
def test_campaign_serial_uncached(benchmark):
    """Baseline: the registry analyzed serially with no shared cache."""
    result = benchmark.pedantic(
        lambda: _run(jobs=1, use_cache=False), rounds=1, iterations=1
    )
    assert result.unit_count == 40


@pytest.mark.benchmark(group="campaign")
def test_campaign_parallel_cached(benchmark):
    """The campaign engine with worker threads and the shared solver cache."""
    result = benchmark.pedantic(
        lambda: _run(jobs=4, use_cache=True), rounds=1, iterations=1
    )
    assert result.unit_count == 40
    assert result.cache_stats is not None and result.cache_stats.hits > 0


@pytest.mark.benchmark(group="campaign")
def test_campaign_speedup_and_hit_rate(benchmark):
    """The cached campaign beats serial-uncached and reuses solver verdicts."""
    comparison = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_comparison(comparison)
    assert (
        comparison.serial_result.classifications()
        == comparison.campaign_result.classifications()
    )
    assert comparison.hit_rate > 0.0
    assert comparison.speedup >= SUITE_MIN_SPEEDUP


def main() -> int:
    comparison = run_comparison()
    print_comparison(comparison)
    if comparison.campaign_result.classifications() != (
        comparison.serial_result.classifications()
    ):
        print("FAIL: campaign classifications diverge from the serial path")
        return 1
    if comparison.hit_rate <= 0.0:
        print("FAIL: solver cache hit rate is zero")
        return 1
    if comparison.speedup < MIN_SPEEDUP:
        print(f"FAIL: speedup {comparison.speedup:.2f}x below {MIN_SPEEDUP}x floor")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
