#!/usr/bin/env python
"""Quickstart: run DIODE on one benchmark application model.

Usage::

    python examples/quickstart.py [dillo|vlc|swfplay|cwebp|imagemagick]

The script runs the full pipeline — taint-based target-site identification,
concolic target/branch extraction, target-constraint solving and
goal-directed conditional branch enforcement — and prints, for every target
site, its classification and (for exposed sites) the overflow-triggering
field values DIODE generated.
"""

from __future__ import annotations

import sys

from repro.apps import get_application
from repro.core import Diode


def main() -> int:
    name = sys.argv[1] if len(sys.argv) > 1 else "dillo"
    application = get_application(name)
    print(f"Analyzing {application.name}: {application.description}")
    print(f"Seed input: {len(application.seed_input)} bytes "
          f"({application.format_spec.name} format)\n")

    result = Diode().analyze(application)

    print(f"{'Target site':32s} {'Classification':36s} {'Enforced':>9s}  Details")
    print("-" * 110)
    for site_result in result.site_results:
        report = site_result.bug_report
        if report is not None:
            details = (
                f"error={report.error_type}  fields="
                + ", ".join(
                    f"{key}={value}" for key, value in report.triggering_field_values.items()
                )
            )
            enforced = report.enforced_ratio()
        else:
            details = ""
            enforced = "-"
        print(
            f"{site_result.site.name:32s} {site_result.classification.value:36s} "
            f"{enforced:>9s}  {details}"
        )

    row = result.table1_row()
    print(
        f"\nTable-1 row for {application.name}: "
        f"{row['total_target_sites']} target sites, "
        f"{row['diode_exposes_overflow']} exposed, "
        f"{row['target_constraint_unsatisfiable']} unsatisfiable, "
        f"{row['sanity_checks_prevent_overflow']} protected by sanity checks."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
