#!/usr/bin/env python
"""The paper's Section 2 walkthrough: the Dillo PNG image-data overflow.

This example follows the pipeline step by step on the ``png.c@203`` target
site (CVE-2009-2294) instead of calling the all-in-one engine:

1. taint analysis finds the allocation sites influenced by the PNG fields;
2. the concolic stage extracts the symbolic target expression
   (``rowbytes * height``) and the seed path's branch conditions;
3. the target constraint (``overflow(B)``) is built and solved;
4. goal-directed conditional branch enforcement walks through the libpng /
   Dillo sanity checks — including the buggy ``abs(width*height)`` check —
   until a generated PNG triggers the overflow;
5. the generated PNG is replayed to show the resulting invalid reads.

Run with ``python examples/dillo_png_overflow.py``.
"""

from __future__ import annotations

from repro.apps import get_application
from repro.core.branches import (
    compress_branches,
    extract_branch_constraints,
    relevant_branches,
)
from repro.core.detection import ErrorDetector
from repro.core.enforcement import GoalDirectedEnforcer
from repro.core.fieldmap import FieldMapper
from repro.core.inputs import InputGenerator
from repro.core.overflow import overflow_constraint
from repro.core.sites import identify_target_sites
from repro.core.target import extract_target_observations
from repro.exec.concrete import ConcreteInterpreter
from repro.formats.png import PngFormat
from repro.smt.solver import PortfolioSolver


def main() -> int:
    dillo = get_application("dillo")
    mapper = FieldMapper(dillo.format_spec)

    print("Step 1 — target site identification (taint analysis)")
    sites = identify_target_sites(dillo.program, dillo.seed_input)
    site = next(s for s in sites if s.site_tag == "png.c@203")
    grouped = mapper.describe_relevant_bytes(site.relevant_bytes)
    print(f"  {len(sites)} input-influenced allocation sites; targeting {site.name}")
    print(f"  seed allocation size: {site.seed_size} bytes")
    print(f"  relevant input fields: {', '.join(sorted(grouped))}\n")

    print("Step 2 — target expression extraction (concolic stage)")
    observation = extract_target_observations(
        dillo.program, dillo.seed_input, site, field_mapper=mapper
    )[0]
    print(f"  target expression: {observation.size_expression.pretty()}\n")

    print("Step 3 — target constraint")
    beta = overflow_constraint(observation.size_expression)
    compressed = compress_branches(extract_branch_constraints(observation.seed_path))
    relevant = relevant_branches(compressed, beta)
    print(f"  overflow(B) built; {len(relevant)} relevant conditional branches "
          f"on the seed path (of {len(compressed)} compressed branches)\n")

    print("Step 4 — goal-directed conditional branch enforcement")
    enforcer = GoalDirectedEnforcer(
        PortfolioSolver(),
        InputGenerator(dillo.seed_input, dillo.format_spec),
        ErrorDetector(dillo.program, dillo.seed_input),
    )
    result = enforcer.run(observation)
    for step in result.steps:
        model = step.candidate_model or {}
        width = model.get("/header/width", "-")
        height = model.get("/header/height", "-")
        depth = model.get("/header/bit_depth", "-")
        status = "TRIGGERS OVERFLOW" if step.triggered else "rejected by a sanity check"
        enforced = f"after enforcing branch {step.enforced_label}" if step.enforced_label is not None else "target constraint only"
        print(f"  iteration {step.iteration}: {enforced}: "
              f"width={width} height={height} bit_depth={depth} -> {status}")
    print(f"  enforced {result.enforced_count} of {result.relevant_branch_count} "
          f"relevant conditional branches\n")

    print("Step 5 — error detection on the generated PNG")
    dissected = PngFormat.dissect(result.triggering_input)
    print(f"  generated PNG: width={dissected.value_of('/header/width')} "
          f"height={dissected.value_of('/header/height')} "
          f"bit_depth={dissected.value_of('/header/bit_depth')} "
          f"(CRCs recomputed, signature intact)")
    replay = ConcreteInterpreter(dillo.program).run(result.triggering_input)
    print(f"  replay outcome: {replay.outcome.value}, "
          f"{len(replay.memory_errors)} invalid memory accesses")
    if replay.memory_errors:
        first = replay.memory_errors[0]
        print(f"  first invalid access: {first.kind.value} at offset {first.offset} "
              f"of a {first.block_size}-byte block allocated at {first.allocation_site_tag}")
    print(f"  bug report error type: {result.evaluation.error_type()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
