#!/usr/bin/env python
"""Apply DIODE to a brand-new application model.

This example shows the full downstream-user workflow: describe an input
format, write an application model in the DSL (a small TGA-like image
loader with a sanity check and an allocation driven by the image geometry),
build a seed input, and let DIODE find the overflow.

Run with ``python examples/custom_application.py``.
"""

from __future__ import annotations

from repro.apps.appbase import Application
from repro.core import Diode
from repro.formats.fields import Endianness, FieldKind, FieldSpec
from repro.formats.spec import FormatSpec
from repro.lang.program import Program

# 1. Describe the input format (a little-endian TGA-like header).
TGA_SPEC = FormatSpec(
    "tga_like",
    [
        FieldSpec("/magic", 0, 2, FieldKind.MAGIC, mutable=False),
        FieldSpec("/header/width", 2, 2, FieldKind.UINT, Endianness.LITTLE),
        FieldSpec("/header/height", 4, 2, FieldKind.UINT, Endianness.LITTLE),
        FieldSpec("/header/depth", 6, 1, FieldKind.UINT),
        FieldSpec("/header/frames", 7, 4, FieldKind.UINT, Endianness.LITTLE),
        FieldSpec("/pixels", 11, 16, FieldKind.BYTES),
    ],
)

# 2. Model the loader in the DSL.  The frame buffer allocation multiplies
#    three input-controlled quantities; the only guard is a frame-count
#    sanity check, so DIODE must enforce it before the overflow appears.
TGA_LOADER = """
proc read_le16(o) {
  v = input(o) | (input(o + 1) << 8);
  return v;
}
proc read_le32(o) {
  v = input(o) | (input(o + 1) << 8) | (input(o + 2) << 16) | (input(o + 3) << 24);
  return v;
}

proc main() {
  width  = read_le16(2);
  height = read_le16(4);
  depth  = input(6);
  frames = read_le32(7);

  row_index = alloc(height * 4) @ "tga.c@row_index";

  if (frames > 4096) {
    halt "too many animation frames";
  }

  bytes_per_pixel = (depth + 7) >> 3;
  frame_bytes = width * height * bytes_per_pixel;
  animation = alloc(frame_bytes * frames) @ "tga.c@animation";

  animation[frame_bytes * frames - 1] = 0;
  probe = animation[(frames - 1) * frame_bytes];
}
"""


def build_seed() -> bytes:
    data = bytearray(27)
    data[0:2] = b"TG"
    data[2:4] = (64).to_bytes(2, "little")    # width
    data[4:6] = (48).to_bytes(2, "little")    # height
    data[6] = 24                               # depth
    data[7:11] = (2).to_bytes(4, "little")     # frames
    for index in range(16):
        data[11 + index] = (index * 7) & 0xFF
    return bytes(data)


def main() -> int:
    application = Application(
        name="TGA loader (custom)",
        program=Program.from_source(TGA_LOADER, name="tga-loader"),
        format_spec=TGA_SPEC,
        seed_input=build_seed(),
        description="Example of analysing a user-provided application model.",
    )

    result = Diode().analyze(application)
    print(f"{application.name}: {result.total_target_sites} target sites\n")
    for site_result in result.site_results:
        print(f"  {site_result.site.name:20s} -> {site_result.classification.value}")
        report = site_result.bug_report
        if report is None:
            continue
        fields = ", ".join(
            f"{key}={value}" for key, value in report.triggering_field_values.items()
        )
        print(
            f"      triggering input: {fields}\n"
            f"      enforced branches: {report.enforced_ratio()}, "
            f"error type: {report.error_type}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
