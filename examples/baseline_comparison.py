#!/usr/bin/env python
"""Compare DIODE against the baseline strategies the paper discusses.

For a guarded site (Dillo ``png.c@203``) and an unguarded one (CWebP
``jpegdec.c@248``) the script runs:

* random byte fuzzing over the whole seed input;
* taint-directed fuzzing over the relevant bytes only (BuzzFuzz /
  TaintScope style);
* target-constraint-only sampling (Section 5.5);
* full-seed-path enforcement, the classic concolic strategy (Section 5.4);
* DIODE's goal-directed conditional branch enforcement.

The output shows the paper's central claim: only the goal-directed strategy
finds overflows that hide behind sanity checks.

Run with ``python examples/baseline_comparison.py``.
"""

from __future__ import annotations

from repro.apps import get_application
from repro.core.baselines import (
    FullPathEnforcement,
    RandomByteFuzzer,
    TaintDirectedFuzzer,
    TargetOnlySampling,
)
from repro.core.detection import ErrorDetector
from repro.core.enforcement import GoalDirectedEnforcer
from repro.core.fieldmap import FieldMapper
from repro.core.inputs import InputGenerator
from repro.core.sites import identify_target_sites
from repro.core.target import extract_target_observations
from repro.smt.solver import PortfolioSolver

ATTEMPTS = 100


def compare(application_name: str, tag: str) -> None:
    app = get_application(application_name)
    sites = identify_target_sites(app.program, app.seed_input)
    site = next(s for s in sites if s.site_tag == tag)
    observation = extract_target_observations(
        app.program, app.seed_input, site, field_mapper=FieldMapper(app.format_spec)
    )[0]

    print(f"\n{app.name} — target site {tag}")
    print("-" * 72)

    random_fuzz = RandomByteFuzzer(app, seed=1).run(site, attempts=ATTEMPTS)
    print(f"  random fuzzing            : {random_fuzz.ratio():>8s} inputs trigger the overflow")

    directed_fuzz = TaintDirectedFuzzer(app, seed=1).run(site, attempts=ATTEMPTS)
    print(f"  taint-directed fuzzing    : {directed_fuzz.ratio():>8s}")

    target_only = TargetOnlySampling(app, seed=1).run(observation, samples=ATTEMPTS)
    print(f"  target constraint alone   : {target_only.ratio():>8s}")

    full_path = FullPathEnforcement(app).run(observation)
    if full_path.satisfiable is False:
        verdict = "unsatisfiable (blocking checks)"
    elif full_path.satisfiable is None:
        verdict = "solver could not decide"
    else:
        verdict = f"{full_path.ratio()} inputs trigger"
    print(f"  full-seed-path enforcement: {verdict:>8s}")

    enforcer = GoalDirectedEnforcer(
        PortfolioSolver(),
        InputGenerator(app.seed_input, app.format_spec),
        ErrorDetector(app.program, app.seed_input),
    )
    diode = enforcer.run(observation)
    if diode.found_overflow:
        print(
            f"  DIODE (goal-directed)     : overflow triggered after enforcing "
            f"{diode.enforced_count} of {diode.relevant_branch_count} relevant branches"
        )
    else:
        print(f"  DIODE (goal-directed)     : {diode.outcome.value}")


def main() -> int:
    compare("dillo", "png.c@203")       # guarded by sanity checks
    compare("cwebp", "jpegdec.c@248")   # no relevant sanity checks
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
