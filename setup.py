"""Setuptools shim.

The execution environment has no ``wheel`` package, so PEP 517 editable
installs (``pip install -e .``) cannot build a wheel.  This ``setup.py``
allows the legacy editable path (``pip install -e . --no-use-pep517`` or
``python setup.py develop``) to work offline.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
