"""The unified content-addressed artifact store.

Every persistent artifact the reproduction writes — solver-cache verdicts
(whole-query and component granularity), canonical UNSAT cores, blasted
CNF skeletons, witness-corpus records — goes through one on-disk layer:
:class:`ArtifactStore`, a content-addressed, append-only record store with
a versioned + fingerprint-stamped ``meta.json``, sharded record files
written with atomic replaces, and an exclusive-lock merge-on-save as the
*only* save path.  The concrete stores (:mod:`repro.smt.cachestore`,
:mod:`repro.triage.corpus`) are thin codecs on top: they translate their
domain objects to JSON-able payloads and back, and delegate every
durability decision here.

See :mod:`repro.store.base` for the layout and concurrency contract and
:mod:`repro.store.locking` for the lock protocol.
"""

from repro.store.base import ArtifactStore, StoreRecord, content_key
from repro.store.locking import DirectoryLock

__all__ = ["ArtifactStore", "DirectoryLock", "StoreRecord", "content_key"]
