"""Content-addressed, append-only artifact store with merge-on-save.

One :class:`ArtifactStore` owns one directory::

    meta.json       {"version": ..., "fingerprint": [...], "shards": N,
                     "entries": N, "kinds": {"query": N, "witness": N, ...}}
    shard-00.json   [{"k": kind, "h": key, "d": payload}, ...]
    ...
    .lock           (exists only while a save is in flight)

Records are **content-addressed**: each carries a ``kind`` (the codec's
namespace — solver-cache query, component, UNSAT core, CNF skeleton,
witness) and a ``key``, the canonical content hash of its payload within
that kind (:func:`content_key`, or a codec-supplied identity such as a
witness signature, which is itself a content hash).  Identity lives in
the key, so merging is set union and records are immutable — the store
is *logically* append-only even though compaction rewrites the files.

Durability contract, shared by every store in the system:

* ``meta.json`` stamps the **format version** and a semantic
  **fingerprint**; a mismatch on either means the records may be
  meaningless under current code or configuration, so loads are a cold
  start and the next save overwrites the store;
* records are **sharded** by key over ``shard-NN.json`` files, so files
  stay small and a corrupt shard loses its records, never the store;
* every file is written with an **atomic replace**, so readers racing a
  writer see complete files (readers take no lock);
* saving is **merge-on-save under an exclusive lock**
  (:class:`~repro.store.locking.DirectoryLock`): the on-disk records are
  re-read, the incoming ones folded in by ``(kind, key)``, and the union
  written back.  Per-file atomic replaces alone would let two racing
  writers each miss the other's records — the lost-update bug this layer
  exists to fix;
* shard files the new layout no longer uses (a shrunk ``shard_count``,
  a store that lost records) are removed, whatever count an earlier
  layout used — no orphans.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.store.locking import (
    DEFAULT_POLL_SECONDS,
    DEFAULT_TIMEOUT_SECONDS,
    DirectoryLock,
)

__all__ = ["ArtifactStore", "StoreRecord", "content_key"]

#: Default number of shard files a store spreads its records over.
DEFAULT_SHARD_COUNT = 16

_META_NAME = "meta.json"

_LOCK_NAME = ".lock"

_SHARD_PATTERN = re.compile(r"^shard-(\d+)\.json$")

#: Errors that mean "this file/record is unusable", not "crash the run".
_WIRE_ERRORS = (KeyError, ValueError, TypeError, IndexError, AttributeError)


def content_key(kind: str, payload) -> str:
    """Canonical content hash of a JSON-able payload, namespaced by kind.

    The canonical form is sorted-key, separator-free JSON, so the key is
    identical across processes, runs and platforms for structurally equal
    payloads; the kind is hashed in so e.g. a whole-query entry and a
    component entry over the same conjuncts stay distinct records.
    """
    canonical = json.dumps(
        [kind, payload], separators=(",", ":"), sort_keys=True
    )
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreRecord:
    """One immutable artifact: a kind, its content key, a JSON-able payload."""

    kind: str
    key: str
    payload: object


#: Resolves a ``(kind, key)`` collision between an on-disk payload and an
#: incoming one; returns the payload to keep.  ``None`` keeps the existing
#: payload (records are idempotent content, so first-writer-wins is the
#: correct default); the witness codec supplies real merge semantics
#: (smaller witness wins, ``times_seen`` accumulates).
MergeFn = Callable[[str, object, object], object]


class ArtifactStore:
    """Versioned, fingerprinted, sharded record persistence (see module doc)."""

    def __init__(
        self,
        root: str,
        *,
        version: int,
        shard_count: int = DEFAULT_SHARD_COUNT,
        lock_timeout: float = DEFAULT_TIMEOUT_SECONDS,
        lock_poll: float = DEFAULT_POLL_SECONDS,
    ) -> None:
        self.root = str(root)
        self.version = int(version)
        self.shard_count = max(1, int(shard_count))
        self.lock_timeout = lock_timeout
        self.lock_poll = lock_poll

    # ------------------------------------------------------------------
    def meta_path(self) -> str:
        return os.path.join(self.root, _META_NAME)

    def _shard_path(self, index: int) -> str:
        return os.path.join(self.root, f"shard-{index:02d}.json")

    def _lock(self) -> DirectoryLock:
        return DirectoryLock(
            os.path.join(self.root, _LOCK_NAME),
            timeout=self.lock_timeout,
            poll=self.lock_poll,
        )

    def _shard_of(self, key: str) -> int:
        digest = hashlib.sha1(str(key).encode("utf-8")).hexdigest()
        return int(digest, 16) % self.shard_count

    # ------------------------------------------------------------------
    def read_meta(self) -> Optional[dict]:
        """The raw ``meta.json`` dict, or ``None`` when absent/corrupt."""
        try:
            with open(self.meta_path(), "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return meta if isinstance(meta, dict) else None

    def _meta_matches(self, meta: Optional[dict], fingerprint_wire) -> bool:
        if meta is None or meta.get("version") != self.version:
            return False
        return meta.get("fingerprint") == _json_normalized(fingerprint_wire)

    # ------------------------------------------------------------------
    def load(self, fingerprint_wire) -> List[StoreRecord]:
        """Read every record; empty on absence, version or fingerprint mismatch.

        ``fingerprint_wire`` is the codec's JSON-able semantic fingerprint
        (compared against the stamp in ``meta.json`` after JSON
        normalization, so tuples and lists compare equal).  A corrupt
        shard loses its records, never the store; malformed envelopes are
        skipped individually.
        """
        with TRACER.span("store.load", root=self.root):
            records = self._load(fingerprint_wire)
        METRICS.counter("store.loads").inc()
        METRICS.counter("store.records_loaded").inc(len(records))
        return records

    def _load(self, fingerprint_wire) -> List[StoreRecord]:
        meta = self.read_meta()
        if not self._meta_matches(meta, fingerprint_wire):
            return []
        try:
            shard_count = max(1, min(int(meta.get("shards", 1)), 4096))
        except (TypeError, ValueError):
            return []

        records: List[StoreRecord] = []
        for index in range(shard_count):
            try:
                with open(
                    self._shard_path(index), "r", encoding="utf-8"
                ) as handle:
                    envelopes = json.load(handle)
            except FileNotFoundError:
                continue
            except (OSError, json.JSONDecodeError):
                # One corrupt shard loses its records, not the store.
                continue
            if not isinstance(envelopes, list):
                continue
            for envelope in envelopes:
                record = _record_from_envelope(envelope)
                if record is not None:
                    records.append(record)
        return records

    # ------------------------------------------------------------------
    def save(
        self,
        fingerprint_wire,
        records: Iterable[StoreRecord],
        merge_record: Optional[MergeFn] = None,
        replace: bool = False,
    ) -> int:
        """Merge ``records`` into the store; returns the total now stored.

        The whole load → merge → write sequence runs under the exclusive
        directory lock.  On-disk records written under a different format
        version or fingerprint are *not* merged (they may be meaningless
        under current semantics) — the save becomes a cold overwrite, and
        the new ``meta.json`` stamp marks the store reborn.  With
        ``replace`` the on-disk records are discarded even when they
        match (the replay subcommand rewrites witness statuses wholesale).

        ``merge_record(kind, existing_payload, incoming_payload)``
        resolves ``(kind, key)`` collisions; the default keeps the
        existing payload (records are content-addressed, so colliding
        payloads are equal for every codec without bespoke merge
        semantics).
        """
        incoming = list(records)
        with TRACER.span("store.save", root=self.root):
            total = self._save(fingerprint_wire, incoming, merge_record, replace)
        METRICS.counter("store.saves").inc()
        METRICS.counter("store.records_saved").inc(len(incoming))
        METRICS.gauge("store.entries").set(total)
        return total

    def _save(
        self,
        fingerprint_wire,
        records: List[StoreRecord],
        merge_record: Optional[MergeFn],
        replace: bool,
    ) -> int:
        os.makedirs(self.root, exist_ok=True)
        with self._lock():
            combined: Dict[Tuple[str, str], object] = {}
            if not replace:
                for record in self.load(fingerprint_wire):
                    combined[(record.kind, record.key)] = record.payload
            for record in records:
                slot = (record.kind, record.key)
                existing = combined.get(slot)
                if existing is None or merge_record is None:
                    combined[slot] = record.payload
                else:
                    try:
                        combined[slot] = merge_record(
                            record.kind, existing, record.payload
                        )
                    except _WIRE_ERRORS:
                        combined[slot] = record.payload

            shards: Dict[int, List[dict]] = {}
            kinds: Dict[str, int] = {}
            for (kind, key) in sorted(combined):
                kinds[kind] = kinds.get(kind, 0) + 1
                shards.setdefault(self._shard_of(key), []).append(
                    {"k": kind, "h": key, "d": combined[(kind, key)]}
                )

            for index, path in self._existing_shards():
                if index >= self.shard_count or not shards.get(index):
                    # Orphaned by a shrunk shard_count (or simply empty
                    # under the new layout): stale records must not
                    # resurrect on the next load.
                    try:
                        os.remove(path)
                    except FileNotFoundError:  # pragma: no cover - raced
                        pass
            for index, envelopes in shards.items():
                _write_atomic(self._shard_path(index), envelopes)
            _write_atomic(
                self.meta_path(),
                {
                    "version": self.version,
                    "fingerprint": _json_normalized(fingerprint_wire),
                    "shards": self.shard_count,
                    "entries": len(combined),
                    "kinds": kinds,
                },
            )
            return len(combined)

    # ------------------------------------------------------------------
    def _existing_shards(self) -> List[Tuple[int, str]]:
        """Every ``shard-NN.json`` currently on disk, whatever layout wrote it."""
        try:
            names = os.listdir(self.root)
        except OSError:  # pragma: no cover - root vanished mid-save
            return []
        found: List[Tuple[int, str]] = []
        for name in names:
            match = _SHARD_PATTERN.match(name)
            if match is not None:
                found.append((int(match.group(1)), os.path.join(self.root, name)))
        return sorted(found)


def _record_from_envelope(envelope) -> Optional[StoreRecord]:
    if not isinstance(envelope, dict):
        return None
    kind = envelope.get("k")
    key = envelope.get("h")
    if not isinstance(kind, str) or not isinstance(key, str):
        return None
    if "d" not in envelope:
        return None
    return StoreRecord(kind=kind, key=key, payload=envelope["d"])


def _json_normalized(value):
    """``value`` after a JSON round trip (tuples become lists, etc.)."""
    return json.loads(json.dumps(value))


def _write_atomic(path: str, payload) -> None:
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
    os.replace(tmp_path, path)
