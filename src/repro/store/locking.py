"""Exclusive lock files guarding a store directory's save path.

The lock is a plain file created with ``O_CREAT | O_EXCL`` — portable,
dependency-free, and visible to every process sharing the directory
(which is the whole point: campaign processes, process-backend parents
and replay runs all converge on one store).

Liveness needs stale-lock breaking: a writer that dies between acquire
and release would otherwise deadlock every later save.  Breaking a lock
safely is the subtle part.  The naive protocol — "on timeout, unlink the
lock and loop back to ``O_EXCL``" — has a thundering-herd race: two
waiters can both hit their deadline, both unlink (the second unlink
removing the *new* holder's lock, not the stale one), and both enter the
critical section.  The protocol here closes that race:

* each waiter tracks the lock file's **identity** (inode + mtime); when
  the identity changes, the lock turned over to a live writer, and the
  waiter's patience deadline resets — a fresh holder's lock is never
  broken;
* at the deadline, the breaker ``os.rename``\\ s the lock aside to a
  unique per-breaker name.  Rename is atomic: exactly one breaker wins
  (losers get ``FileNotFoundError`` and simply re-poll), and the rename
  can never destroy a *new* holder's lock the way a second unlink can —
  if the holder changed, the waiter's identity check already reset its
  deadline before it reached the break;
* acquisition itself stays ``O_CREAT | O_EXCL``, so even if several
  waiters reach the post-break poll together, the filesystem picks a
  single winner.
"""

from __future__ import annotations

import itertools
import os
import time

from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER

__all__ = ["DirectoryLock"]

#: How long a waiter tolerates a lock whose identity never changes before
#: declaring its holder dead (saves take milliseconds).
DEFAULT_TIMEOUT_SECONDS = 10.0

DEFAULT_POLL_SECONDS = 0.02

_BREAK_SEQUENCE = itertools.count()


class DirectoryLock:
    """An exclusive advisory lock file with atomic stale-lock breaking.

    Usable as a context manager::

        with DirectoryLock(os.path.join(store_dir, ".lock")):
            ...  # load -> merge -> write

    Not reentrant, and deliberately advisory: only writers take it (the
    read path relies on per-file atomic replaces instead, so readers
    never block writers or each other).
    """

    def __init__(
        self,
        path: str,
        timeout: float = DEFAULT_TIMEOUT_SECONDS,
        poll: float = DEFAULT_POLL_SECONDS,
    ) -> None:
        self.path = str(path)
        self.timeout = float(timeout)
        self.poll = float(poll)
        self._fd: int | None = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    # ------------------------------------------------------------------
    def acquire(self) -> None:
        """Block until this process holds the lock."""
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path!r} is already held")
        waited_from = time.perf_counter()
        deadline = time.monotonic() + self.timeout
        watched = None
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass
            else:
                os.write(fd, str(os.getpid()).encode("ascii"))
                self._fd = fd
                waited = time.perf_counter() - waited_from
                METRICS.counter("store.lock_acquires").inc()
                METRICS.histogram("store.lock_wait_seconds").observe(waited)
                from repro.obs.events import EVENTS, STORE_LOCK_WAIT

                EVENTS.emit(
                    STORE_LOCK_WAIT, seconds=round(waited, 6), path=self.path
                )
                return
            try:
                stat = os.stat(self.path)
                identity = (stat.st_ino, stat.st_mtime_ns)
            except OSError:
                # Released (or broken) between the open and the stat;
                # race straight back to O_EXCL.
                continue
            if identity != watched:
                if watched is not None:
                    # The lock turned over to a live writer; never break a
                    # fresh holder's lock.
                    deadline = time.monotonic() + self.timeout
                watched = identity
            elif time.monotonic() >= deadline:
                self._break_stale()
                deadline = time.monotonic() + self.timeout
                watched = None
                continue
            time.sleep(self.poll)

    def release(self) -> None:
        """Release the lock (idempotent)."""
        fd, self._fd = self._fd, None
        if fd is None:
            return
        os.close(fd)
        try:
            os.remove(self.path)
        except FileNotFoundError:  # pragma: no cover - freed by a breaker
            pass

    # ------------------------------------------------------------------
    def _break_stale(self) -> None:
        """Atomically retire a lock whose holder is presumed dead.

        The rename-to-unique-name is the single-winner step: losers see
        ``FileNotFoundError`` and go back to polling, and the stale file
        is removed under a name nobody else races on.
        """
        aside = f"{self.path}.stale-{os.getpid()}-{next(_BREAK_SEQUENCE)}"
        try:
            os.rename(self.path, aside)
        except OSError:
            return
        METRICS.counter("store.lock_breaks").inc()
        TRACER.event("store.lock_break", path=self.path)
        try:
            os.remove(aside)
        except FileNotFoundError:  # pragma: no cover - defensive
            pass

    # ------------------------------------------------------------------
    def __enter__(self) -> "DirectoryLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
