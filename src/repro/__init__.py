"""DIODE reproduction: targeted integer overflow discovery.

This package reproduces the system described in *Targeted Automatic Integer
Overflow Discovery Using Goal-Directed Conditional Branch Enforcement*
(ASPLOS 2015): the DIODE engine (:mod:`repro.core`), the substrates it runs
on — a bitvector SMT solver (:mod:`repro.smt`), a core imperative language
and its concrete/concolic/taint interpreters (:mod:`repro.lang`,
:mod:`repro.exec`), an input-format library (:mod:`repro.formats`) — and
models of the paper's five benchmark applications (:mod:`repro.apps`).
Discovered overflows flow through the witness-triage subsystem
(:mod:`repro.triage`): deduplication by canonical signature, input
minimization, a persistent cross-run corpus, and regression replay.

Quickstart::

    from repro.apps import get_application
    from repro.core import Diode

    application = get_application("dillo")
    result = Diode().analyze(application)
    for site_result in result.site_results:
        print(site_result.site.name, site_result.classification.value)
"""

#: Single source of truth for the package version: the CLI's ``--version``,
#: the campaign's ``--json`` output and the benchmark artifacts all read it
#: from here.
__version__ = "1.7.0"

from repro.core.engine import Diode, DiodeConfig
from repro.apps.registry import all_applications, application_names, get_application

__all__ = [
    "Diode",
    "DiodeConfig",
    "all_applications",
    "application_names",
    "get_application",
    "__version__",
]
