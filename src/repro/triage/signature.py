"""Canonical witness signatures: one stable identity per distinct overflow.

A campaign can rediscover the same integer overflow many times — under
different schedules, backends, runs, or with different solver-chosen field
values.  The paper's Table 2 counts *distinct* overflows, so the triage
subsystem needs an identity that collapses rediscoveries while separating
genuinely different bugs.

The signature hashes three components:

* the **application** name — the same site tag can exist in two models;
* the **canonical site identity** — the site's ``@ "tag"`` annotation when
  present (stable across recompilations of the model), else its numeric
  allocation label;
* the **wrapped-op provenance** — the sorted set of operator names whose
  results actually wrapped in the allocation size's dataflow, as observed
  by a concrete :class:`~repro.exec.overflow_witness.OverflowWitnessInterpreter`
  run of the witness.

Field values are deliberately *not* hashed: ``width=65536`` and
``width=131072`` that wrap the same multiplication at the same site are the
same bug.  Two distinct overflows at one site (say an additive wrap guarded
separately from a multiplicative one) differ in provenance and keep
distinct signatures.

Signatures are versioned (``w<version>-<digest>``); bump
:data:`SIGNATURE_VERSION` when the identity components change so corpora
built under the old definition cannot silently half-dedupe against new
records.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Sequence

__all__ = ["SIGNATURE_VERSION", "site_identity", "witness_signature"]

#: Bump when the signature's identity components change.
SIGNATURE_VERSION = 1

#: Hex digits of the SHA-256 digest kept in the signature: 80 bits is far
#: beyond collision range for corpus-sized populations and keeps signatures
#: grep-friendly.
_DIGEST_HEX_CHARS = 20


def site_identity(site_label: int, site_tag: Optional[str]) -> str:
    """The canonical site component of a witness signature.

    Prefers the source-level tag (``png.c@203``) — stable across model
    edits that renumber labels — and falls back to the numeric label for
    untagged sites, mirroring :attr:`repro.core.sites.TargetSite.name`.
    """
    return site_tag or f"alloc@{site_label}"


def witness_signature(
    application: str,
    site_label: int,
    site_tag: Optional[str],
    provenance: Sequence[str],
) -> str:
    """Canonical signature of one verified overflow witness."""
    payload = json.dumps(
        {
            "v": SIGNATURE_VERSION,
            "app": application,
            "site": site_identity(site_label, site_tag),
            "ops": sorted(set(provenance)),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return f"w{SIGNATURE_VERSION}-{digest[:_DIGEST_HEX_CHARS]}"
