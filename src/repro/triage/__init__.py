"""Witness triage: dedup, minimization, persistent corpus, regression replay.

DIODE's end product is a set of *distinct, verified* integer overflows (the
paper's Table 2); a discovery campaign, left alone, emits ephemeral
per-run bug reports that rediscover and re-verify the same overflows on
every invocation.  This package owns the lifecycle of a discovered
overflow after the campaign finds it:

* :mod:`repro.triage.signature` — canonical witness signatures hashing
  ⟨application, site identity, wrapped-op provenance⟩, so the same bug
  found via different field values, schedules or backends dedupes to one
  record;
* :mod:`repro.triage.minimize` — ddmin-style reduction of the triggering
  field values plus per-field shrink-toward-baseline, every candidate
  re-validated by a concrete overflow-witness run;
* :mod:`repro.triage.corpus` — the persistent witness corpus: versioned,
  fingerprint-stamped, sharded JSON with merge-on-save semantics, so
  parallel campaigns and process-backend workers converge on one deduped
  store;
* :mod:`repro.triage.engine` — the :class:`WitnessTriager` pipeline the
  campaign (and the process backend's workers) run per bug report, and the
  regression-replay engine behind ``repro replay``.
"""

from repro.triage.corpus import (
    CORPUS_FORMAT_VERSION,
    CorpusStore,
    WitnessRecord,
    corpus_fingerprint,
    merge_records,
)
from repro.triage.engine import (
    ReplayEntry,
    ReplayReport,
    TriageStats,
    WitnessTriager,
    rebuild_witness_input,
    replay_corpus,
)
from repro.triage.minimize import MinimizationOutcome, WitnessMinimizer
from repro.triage.signature import SIGNATURE_VERSION, site_identity, witness_signature

__all__ = [
    "CORPUS_FORMAT_VERSION",
    "CorpusStore",
    "MinimizationOutcome",
    "ReplayEntry",
    "ReplayReport",
    "SIGNATURE_VERSION",
    "TriageStats",
    "WitnessMinimizer",
    "WitnessRecord",
    "WitnessTriager",
    "corpus_fingerprint",
    "merge_records",
    "rebuild_witness_input",
    "replay_corpus",
    "site_identity",
    "witness_signature",
]
