"""The persistent witness corpus: versioned, sharded, merge-on-save JSON.

The corpus is the triage subsystem's memory across runs: one
:class:`WitnessRecord` per canonical witness signature, stored under a
``--corpus-dir`` with the same durability discipline as the solver-cache
store (:mod:`repro.smt.cachestore`):

* ``meta.json`` carries the corpus **format version** and a semantic
  **fingerprint** (machine word width + signature version).  A mismatch on
  either means the stored witnesses may be meaningless under the current
  semantics, so the load is a cold start and the next save overwrites the
  store.
* records are **sharded** over ``shard-NN.json`` files by a stable hash of
  their signature, so files stay small and a corrupt shard loses its
  records, never the corpus.
* every file is written with an atomic replace, so readers racing a writer
  see complete files.

Saving **merges**: under an exclusive lock file (so racing writers cannot
interleave their load → merge → write sequences), the on-disk corpus is
re-read and the new records folded in by signature — so parallel
campaigns, process-backend workers and sequential runs all converge on one
deduplicated corpus instead of clobbering each other.  On a signature
collision the smaller witness wins
(fewest changed fields, then the smaller perturbation) and the
``times_seen`` counters accumulate.

Wire-format versioning rules (mirrored in the README):

* adding an optional record field is backward compatible — readers default
  it (see :meth:`WitnessRecord.from_wire`) and must not bump the version;
* removing, renaming or re-interpreting a field bumps
  :data:`CORPUS_FORMAT_VERSION`;
* changes to what a signature *means* bump
  :data:`~repro.triage.signature.SIGNATURE_VERSION`, which flows into the
  fingerprint and likewise invalidates old stores.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exec.values import WORD_WIDTH
from repro.triage.signature import SIGNATURE_VERSION, site_identity

__all__ = [
    "CORPUS_FORMAT_VERSION",
    "CorpusStore",
    "WitnessRecord",
    "corpus_fingerprint",
    "merge_records",
]

#: Bump when the record wire format changes incompatibly.
CORPUS_FORMAT_VERSION = 1

#: Default number of shard files a corpus spreads its records over.
DEFAULT_SHARD_COUNT = 8

_META_NAME = "meta.json"

_LOCK_NAME = ".lock"

#: How long a writer waits for the save lock before assuming its holder
#: died and breaking it (campaign saves take milliseconds).
_LOCK_TIMEOUT_SECONDS = 10.0

_LOCK_POLL_SECONDS = 0.02

#: Errors that mean "this record/file is unusable", not "crash the run".
_WIRE_ERRORS = (KeyError, ValueError, TypeError, AttributeError)

#: Replay / lifecycle statuses a record can carry.
STATUS_FRESH = "fresh"
STATUS_STILL_TRIGGERS = "still-triggers"
STATUS_NO_LONGER_TRIGGERS = "no-longer-triggers"
STATUS_UNKNOWN_SITE = "unknown-site"
STATUS_UNKNOWN_APPLICATION = "unknown-application"


def corpus_fingerprint() -> Tuple:
    """Fingerprint of the semantics stored witnesses depend on.

    A witness is "field values that wrap a size computation on a given
    machine word width, under a given signature definition"; either
    changing invalidates the corpus.
    """
    return ("word-width", WORD_WIDTH, "signature-version", SIGNATURE_VERSION)


@dataclass
class WitnessRecord:
    """One deduplicated, minimized, verified overflow witness."""

    signature: str
    application: str
    site_label: int
    site_tag: Optional[str]
    #: Sorted wrapped-operator names from the witness run.
    provenance: Tuple[str, ...]
    #: Minimized triggering field values (path → integer value).
    field_values: Dict[str, int]
    #: Raw triggering input (hex) for witnesses the field vocabulary cannot
    #: rebuild; ``None`` when ``field_values`` alone re-triggers.
    input_hex: Optional[str] = None
    requested_size: Optional[int] = None
    error_type: str = "None"
    cve: str = "New"
    enforced_branches: int = 0
    relevant_branches: int = 0
    #: Whether the minimization pass validated a reduced witness (False for
    #: raw-input fallback records stored as-found).
    minimized: bool = False
    removed_fields: int = 0
    shrunk_fields: int = 0
    original_fields: int = 0
    times_seen: int = 1
    status: str = STATUS_FRESH

    # ------------------------------------------------------------------
    @property
    def site_name(self) -> str:
        """Human-readable site name (tag when present, else the label)."""
        return site_identity(self.site_label, self.site_tag)

    def matches_site(self, site_label: int, site_tag: Optional[str]) -> bool:
        """Whether this record describes the given allocation site."""
        if self.site_tag is not None and site_tag is not None:
            return self.site_tag == site_tag
        return self.site_label == site_label

    def changed_field_count(self) -> int:
        return len(self.field_values)

    # ------------------------------------------------------------------
    def to_wire(self) -> dict:
        """JSON-able form of this record (also the process-backend payload)."""
        return {
            "signature": self.signature,
            "application": self.application,
            "site_label": self.site_label,
            "site_tag": self.site_tag,
            "provenance": list(self.provenance),
            "field_values": dict(self.field_values),
            "input_hex": self.input_hex,
            "requested_size": self.requested_size,
            "error_type": self.error_type,
            "cve": self.cve,
            "enforced_branches": self.enforced_branches,
            "relevant_branches": self.relevant_branches,
            "minimized": self.minimized,
            "removed_fields": self.removed_fields,
            "shrunk_fields": self.shrunk_fields,
            "original_fields": self.original_fields,
            "times_seen": self.times_seen,
            "status": self.status,
        }

    @classmethod
    def from_wire(cls, obj: Mapping) -> "WitnessRecord":
        """Inverse of :meth:`to_wire`; raises on malformed records."""
        return cls(
            signature=str(obj["signature"]),
            application=str(obj["application"]),
            site_label=int(obj["site_label"]),
            site_tag=None if obj.get("site_tag") is None else str(obj["site_tag"]),
            provenance=tuple(str(op) for op in obj.get("provenance", ())),
            field_values={
                str(path): int(value)
                for path, value in dict(obj.get("field_values", {})).items()
            },
            input_hex=(
                None if obj.get("input_hex") is None else str(obj["input_hex"])
            ),
            requested_size=(
                None
                if obj.get("requested_size") is None
                else int(obj["requested_size"])
            ),
            error_type=str(obj.get("error_type", "None")),
            cve=str(obj.get("cve", "New")),
            enforced_branches=int(obj.get("enforced_branches", 0)),
            relevant_branches=int(obj.get("relevant_branches", 0)),
            minimized=bool(obj.get("minimized", False)),
            removed_fields=int(obj.get("removed_fields", 0)),
            shrunk_fields=int(obj.get("shrunk_fields", 0)),
            original_fields=int(obj.get("original_fields", 0)),
            times_seen=max(1, int(obj.get("times_seen", 1))),
            status=str(obj.get("status", STATUS_FRESH)),
        )


def merge_records(
    existing: Optional[WitnessRecord], incoming: WitnessRecord
) -> WitnessRecord:
    """Fold two records with the same signature into one.

    The smaller witness wins — fewest changed fields, then the smaller
    total perturbation — so repeated campaigns monotonically improve the
    corpus.  ``times_seen`` accumulates across both.
    """
    if existing is None:
        return replace(incoming)
    if existing.signature != incoming.signature:
        raise ValueError(
            f"cannot merge records with different signatures "
            f"({existing.signature} vs {incoming.signature})"
        )
    winner = min(existing, incoming, key=_witness_size)
    return replace(
        winner, times_seen=existing.times_seen + incoming.times_seen
    )


def _witness_size(record: WitnessRecord) -> Tuple[int, int, int]:
    """Ordering key for merge conflicts: smaller witnesses sort first."""
    return (
        0 if record.input_hex is None else 1,  # field-rebuildable beats raw
        record.changed_field_count(),
        sum(abs(value) for value in record.field_values.values()),
    )


# ----------------------------------------------------------------------
# The on-disk store
# ----------------------------------------------------------------------
class CorpusStore:
    """Versioned, fingerprinted, sharded witness-corpus persistence."""

    def __init__(
        self, corpus_dir: str, shard_count: int = DEFAULT_SHARD_COUNT
    ) -> None:
        self.corpus_dir = str(corpus_dir)
        self.shard_count = max(1, int(shard_count))

    # ------------------------------------------------------------------
    def _meta_path(self) -> str:
        return os.path.join(self.corpus_dir, _META_NAME)

    def _shard_path(self, index: int) -> str:
        return os.path.join(self.corpus_dir, f"shard-{index:02d}.json")

    @staticmethod
    def _shard_of(signature: str, shard_count: int) -> int:
        digest = hashlib.sha1(signature.encode("utf-8")).hexdigest()
        return int(digest, 16) % shard_count

    # ------------------------------------------------------------------
    def load(self) -> Dict[str, WitnessRecord]:
        """Read the corpus; empty on absence, version or fingerprint mismatch."""
        try:
            with open(self._meta_path(), "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return {}
        try:
            if meta.get("version") != CORPUS_FORMAT_VERSION:
                return {}
            if tuple(meta.get("fingerprint", ())) != corpus_fingerprint():
                return {}
            shard_count = int(meta.get("shards", DEFAULT_SHARD_COUNT))
        except _WIRE_ERRORS:
            return {}

        records: Dict[str, WitnessRecord] = {}
        for index in range(shard_count):
            try:
                with open(self._shard_path(index), "r", encoding="utf-8") as handle:
                    entries = json.load(handle)
            except FileNotFoundError:
                continue
            except (OSError, json.JSONDecodeError):
                # One corrupt shard loses its records, not the corpus.
                continue
            if not isinstance(entries, list):
                continue
            for item in entries:
                try:
                    record = WitnessRecord.from_wire(item)
                except _WIRE_ERRORS:
                    continue
                records[record.signature] = merge_records(
                    records.get(record.signature), record
                )
        return records

    # ------------------------------------------------------------------
    def save(
        self, records: Mapping[str, WitnessRecord], merge: bool = True
    ) -> int:
        """Write ``records``; returns the total records now stored.

        With ``merge`` (the default) the on-disk corpus is re-read and the
        new records folded in by signature, so concurrent or sequential
        campaigns converge instead of overwriting each other.  The whole
        load → merge → write sequence runs under an exclusive lock file —
        per-file atomic replaces alone would let two racing writers each
        miss the other's records.  ``merge=False`` replaces the store
        outright (the replay subcommand uses it after rewriting statuses).
        """
        os.makedirs(self.corpus_dir, exist_ok=True)
        lock_fd = self._acquire_lock()
        try:
            combined: Dict[str, WitnessRecord] = self.load() if merge else {}
            for signature, record in records.items():
                combined[signature] = merge_records(
                    combined.get(signature), record
                )

            shards: Dict[int, List[dict]] = {}
            for signature in sorted(combined):
                shards.setdefault(
                    self._shard_of(signature, self.shard_count), []
                ).append(combined[signature].to_wire())

            for index in range(self.shard_count):
                path = self._shard_path(index)
                entries = shards.get(index)
                if not entries:
                    try:
                        os.remove(path)
                    except FileNotFoundError:
                        pass
                    continue
                self._write_atomic(path, entries)
            self._write_atomic(
                self._meta_path(),
                {
                    "version": CORPUS_FORMAT_VERSION,
                    "fingerprint": list(corpus_fingerprint()),
                    "shards": self.shard_count,
                    "entries": len(combined),
                },
            )
        finally:
            self._release_lock(lock_fd)
        return len(combined)

    # ------------------------------------------------------------------
    def _lock_path(self) -> str:
        return os.path.join(self.corpus_dir, _LOCK_NAME)

    def _acquire_lock(self) -> int:
        """Take the exclusive save lock, breaking it if its holder died."""
        deadline = time.monotonic() + _LOCK_TIMEOUT_SECONDS
        while True:
            try:
                fd = os.open(
                    self._lock_path(), os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                os.write(fd, str(os.getpid()).encode("ascii"))
                return fd
            except FileExistsError:
                if time.monotonic() >= deadline:
                    # The holder has been gone far longer than any save
                    # takes; reclaim the lock rather than deadlocking.
                    try:
                        os.remove(self._lock_path())
                    except FileNotFoundError:
                        pass
                    deadline = time.monotonic() + _LOCK_TIMEOUT_SECONDS
                else:
                    time.sleep(_LOCK_POLL_SECONDS)

    def _release_lock(self, fd: int) -> None:
        os.close(fd)
        try:
            os.remove(self._lock_path())
        except FileNotFoundError:  # pragma: no cover - freed by a breaker
            pass

    @staticmethod
    def _write_atomic(path: str, payload) -> None:
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        os.replace(tmp_path, path)
