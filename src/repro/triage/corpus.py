"""The persistent witness corpus: a codec over :mod:`repro.store`.

The corpus is the triage subsystem's memory across runs: one
:class:`WitnessRecord` per canonical witness signature, stored under a
``--corpus-dir``.  Persistence — the versioned + fingerprinted
``meta.json``, sharded files with atomic replaces, and the
exclusive-lock **merge-on-save** that lets parallel campaigns,
process-backend workers and sequential runs converge on one deduplicated
corpus instead of clobbering each other — is supplied by
:class:`repro.store.ArtifactStore`, shared with the solver-cache store
(:mod:`repro.smt.cachestore`).  This module contributes the witness
semantics: records are content-addressed by signature (itself a content
hash), the fingerprint is the machine word width + signature version,
and a signature collision resolves by :func:`merge_records` — the
smaller witness wins (fewest changed fields, then the smaller
perturbation) and the ``times_seen`` counters accumulate.

Wire-format versioning rules (see ``docs/solver.md`` for the shared
store-layer rules, mirrored in the README):

* adding an optional record field is backward compatible — readers default
  it (see :meth:`WitnessRecord.from_wire`) and must not bump the version;
* removing, renaming or re-interpreting a field bumps
  :data:`CORPUS_FORMAT_VERSION`;
* changes to what a signature *means* bump
  :data:`~repro.triage.signature.SIGNATURE_VERSION`, which flows into the
  fingerprint and likewise invalidates old stores.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exec.values import WORD_WIDTH
from repro.store import ArtifactStore, StoreRecord
from repro.triage.signature import SIGNATURE_VERSION, site_identity

__all__ = [
    "CORPUS_FORMAT_VERSION",
    "CorpusStore",
    "WitnessRecord",
    "corpus_fingerprint",
    "merge_records",
]

#: Bump when the record wire format changes incompatibly.
#: v2: unified content-addressed ``repro.store`` envelope.
CORPUS_FORMAT_VERSION = 2

#: Default number of shard files a corpus spreads its records over.
DEFAULT_SHARD_COUNT = 8

#: The corpus's single artifact kind in the unified store envelope.
KIND_WITNESS = "witness"

#: Errors that mean "this record/file is unusable", not "crash the run".
_WIRE_ERRORS = (KeyError, ValueError, TypeError, AttributeError)

#: Replay / lifecycle statuses a record can carry.
STATUS_FRESH = "fresh"
STATUS_STILL_TRIGGERS = "still-triggers"
STATUS_NO_LONGER_TRIGGERS = "no-longer-triggers"
STATUS_UNKNOWN_SITE = "unknown-site"
STATUS_UNKNOWN_APPLICATION = "unknown-application"


def corpus_fingerprint() -> Tuple:
    """Fingerprint of the semantics stored witnesses depend on.

    A witness is "field values that wrap a size computation on a given
    machine word width, under a given signature definition"; either
    changing invalidates the corpus.
    """
    return ("word-width", WORD_WIDTH, "signature-version", SIGNATURE_VERSION)


@dataclass
class WitnessRecord:
    """One deduplicated, minimized, verified overflow witness."""

    signature: str
    application: str
    site_label: int
    site_tag: Optional[str]
    #: Sorted wrapped-operator names from the witness run.
    provenance: Tuple[str, ...]
    #: Minimized triggering field values (path → integer value).
    field_values: Dict[str, int]
    #: Raw triggering input (hex) for witnesses the field vocabulary cannot
    #: rebuild; ``None`` when ``field_values`` alone re-triggers.
    input_hex: Optional[str] = None
    requested_size: Optional[int] = None
    error_type: str = "None"
    cve: str = "New"
    enforced_branches: int = 0
    relevant_branches: int = 0
    #: Whether the minimization pass validated a reduced witness (False for
    #: raw-input fallback records stored as-found).
    minimized: bool = False
    removed_fields: int = 0
    shrunk_fields: int = 0
    original_fields: int = 0
    times_seen: int = 1
    status: str = STATUS_FRESH

    # ------------------------------------------------------------------
    @property
    def site_name(self) -> str:
        """Human-readable site name (tag when present, else the label)."""
        return site_identity(self.site_label, self.site_tag)

    def matches_site(self, site_label: int, site_tag: Optional[str]) -> bool:
        """Whether this record describes the given allocation site."""
        if self.site_tag is not None and site_tag is not None:
            return self.site_tag == site_tag
        return self.site_label == site_label

    def changed_field_count(self) -> int:
        return len(self.field_values)

    # ------------------------------------------------------------------
    def to_wire(self) -> dict:
        """JSON-able form of this record (also the process-backend payload)."""
        return {
            "signature": self.signature,
            "application": self.application,
            "site_label": self.site_label,
            "site_tag": self.site_tag,
            "provenance": list(self.provenance),
            "field_values": dict(self.field_values),
            "input_hex": self.input_hex,
            "requested_size": self.requested_size,
            "error_type": self.error_type,
            "cve": self.cve,
            "enforced_branches": self.enforced_branches,
            "relevant_branches": self.relevant_branches,
            "minimized": self.minimized,
            "removed_fields": self.removed_fields,
            "shrunk_fields": self.shrunk_fields,
            "original_fields": self.original_fields,
            "times_seen": self.times_seen,
            "status": self.status,
        }

    @classmethod
    def from_wire(cls, obj: Mapping) -> "WitnessRecord":
        """Inverse of :meth:`to_wire`; raises on malformed records."""
        return cls(
            signature=str(obj["signature"]),
            application=str(obj["application"]),
            site_label=int(obj["site_label"]),
            site_tag=None if obj.get("site_tag") is None else str(obj["site_tag"]),
            provenance=tuple(str(op) for op in obj.get("provenance", ())),
            field_values={
                str(path): int(value)
                for path, value in dict(obj.get("field_values", {})).items()
            },
            input_hex=(
                None if obj.get("input_hex") is None else str(obj["input_hex"])
            ),
            requested_size=(
                None
                if obj.get("requested_size") is None
                else int(obj["requested_size"])
            ),
            error_type=str(obj.get("error_type", "None")),
            cve=str(obj.get("cve", "New")),
            enforced_branches=int(obj.get("enforced_branches", 0)),
            relevant_branches=int(obj.get("relevant_branches", 0)),
            minimized=bool(obj.get("minimized", False)),
            removed_fields=int(obj.get("removed_fields", 0)),
            shrunk_fields=int(obj.get("shrunk_fields", 0)),
            original_fields=int(obj.get("original_fields", 0)),
            times_seen=max(1, int(obj.get("times_seen", 1))),
            status=str(obj.get("status", STATUS_FRESH)),
        )


def merge_records(
    existing: Optional[WitnessRecord], incoming: WitnessRecord
) -> WitnessRecord:
    """Fold two records with the same signature into one.

    The smaller witness wins — fewest changed fields, then the smaller
    total perturbation — so repeated campaigns monotonically improve the
    corpus.  ``times_seen`` accumulates across both.
    """
    if existing is None:
        return replace(incoming)
    if existing.signature != incoming.signature:
        raise ValueError(
            f"cannot merge records with different signatures "
            f"({existing.signature} vs {incoming.signature})"
        )
    winner = min(existing, incoming, key=_witness_size)
    return replace(
        winner, times_seen=existing.times_seen + incoming.times_seen
    )


def _witness_size(record: WitnessRecord) -> Tuple[int, int, int]:
    """Ordering key for merge conflicts: smaller witnesses sort first."""
    return (
        0 if record.input_hex is None else 1,  # field-rebuildable beats raw
        record.changed_field_count(),
        sum(abs(value) for value in record.field_values.values()),
    )


# ----------------------------------------------------------------------
# The on-disk store
# ----------------------------------------------------------------------
def _merge_wire_records(kind: str, existing: object, incoming: object):
    """Store-level collision resolution: decode, fold, re-encode.

    Raising on a malformed payload is deliberate — the store layer then
    keeps the incoming payload, so one bad on-disk record cannot veto a
    fresh save.
    """
    return merge_records(
        WitnessRecord.from_wire(existing), WitnessRecord.from_wire(incoming)
    ).to_wire()


class CorpusStore:
    """Witness-corpus persistence: a thin codec over :class:`ArtifactStore`."""

    def __init__(
        self, corpus_dir: str, shard_count: int = DEFAULT_SHARD_COUNT
    ) -> None:
        self.corpus_dir = str(corpus_dir)
        self.shard_count = max(1, int(shard_count))
        self._store = ArtifactStore(
            self.corpus_dir,
            version=CORPUS_FORMAT_VERSION,
            shard_count=self.shard_count,
        )

    # ------------------------------------------------------------------
    def _meta_path(self) -> str:
        return self._store.meta_path()

    # ------------------------------------------------------------------
    def load(self) -> Dict[str, WitnessRecord]:
        """Read the corpus; empty on absence, version or fingerprint mismatch."""
        records: Dict[str, WitnessRecord] = {}
        for stored in self._store.load(list(corpus_fingerprint())):
            if stored.kind != KIND_WITNESS:
                continue
            try:
                record = WitnessRecord.from_wire(stored.payload)
            except _WIRE_ERRORS:
                continue
            records[record.signature] = merge_records(
                records.get(record.signature), record
            )
        return records

    # ------------------------------------------------------------------
    def save(
        self, records: Mapping[str, WitnessRecord], merge: bool = True
    ) -> int:
        """Write ``records``; returns the total records now stored.

        With ``merge`` (the default) the on-disk corpus is re-read and the
        new records folded in by signature under the store's exclusive
        lock, so concurrent or sequential campaigns converge instead of
        overwriting each other.  ``merge=False`` replaces the store
        outright (the replay subcommand uses it after rewriting statuses).
        """
        wire: List[StoreRecord] = []
        for signature in sorted(records):
            wire.append(
                StoreRecord(
                    KIND_WITNESS, str(signature), records[signature].to_wire()
                )
            )
        return self._store.save(
            list(corpus_fingerprint()),
            wire,
            merge_record=_merge_wire_records,
            replace=not merge,
        )
