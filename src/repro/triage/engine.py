"""Triage orchestration: bug report → verified, minimized, signed witness.

:class:`WitnessTriager` is the per-application worker behind the campaign's
triage pass (and, through the process backend, behind worker-side triage):
given one :class:`~repro.core.report.OverflowBugReport` it

1. re-validates the witness with a concrete overflow-witness run —
   preferring a rebuild from the triggering *field values* (the minimizable
   representation), falling back to the raw triggering input bytes when the
   field vocabulary cannot express the witness;
2. minimizes the field values (:mod:`repro.triage.minimize`);
3. extracts the wrapped-op provenance of the final witness run and mints
   the canonical signature (:mod:`repro.triage.signature`);
4. emits a corpus-ready :class:`~repro.triage.corpus.WitnessRecord`.

A report whose witness does not re-trigger under either representation is
*rejected* (returns ``None``) — the corpus only ever contains witnesses a
concrete run has verified.

:func:`replay_corpus` is the regression-replay engine behind the
``repro replay`` CLI subcommand: every corpus record is re-validated
against the current application registry and stamped
``still-triggers`` / ``no-longer-triggers`` / ``unknown-site`` /
``unknown-application``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.appbase import Application
from repro.core.detection import CandidateEvaluation, ErrorDetector
from repro.core.inputs import InputGenerator
from repro.core.report import OverflowBugReport
from repro.core.sites import TargetSite, identify_target_sites
from repro.formats.spec import FormatError
from repro.obs.trace import TRACER
from repro.triage.corpus import (
    STATUS_FRESH,
    STATUS_NO_LONGER_TRIGGERS,
    STATUS_STILL_TRIGGERS,
    STATUS_UNKNOWN_APPLICATION,
    STATUS_UNKNOWN_SITE,
    WitnessRecord,
)
from repro.triage.minimize import WitnessMinimizer
from repro.triage.signature import witness_signature

__all__ = [
    "ReplayEntry",
    "ReplayReport",
    "TriageStats",
    "WitnessTriager",
    "rebuild_witness_input",
    "replay_corpus",
]


@dataclass
class TriageStats:
    """Aggregate outcome of one campaign's triage pass."""

    #: Bug reports the campaign handed to triage.
    raw_reports: int = 0
    #: Reports whose witness re-triggered under a concrete run.
    validated: int = 0
    #: Reports rejected because no representation re-triggered.
    validation_failures: int = 0
    #: Distinct canonical signatures among the validated witnesses.
    distinct: int = 0
    #: Validated witnesses that collapsed onto an existing signature.
    duplicates: int = 0
    #: Witnesses the minimizer validated in reduced form.
    minimized: int = 0
    #: Triggering-field counts before and after minimization.
    fields_before: int = 0
    fields_after: int = 0

    # ------------------------------------------------------------------
    def register(self, record: WitnessRecord, is_new: bool) -> None:
        """Fold one triaged witness into the totals."""
        self.validated += 1
        if is_new:
            self.distinct += 1
        else:
            self.duplicates += 1
        if record.minimized:
            self.minimized += 1
        self.fields_before += record.original_fields
        self.fields_after += record.changed_field_count()

    def dedup_ratio(self) -> float:
        """Raw reports per distinct witness (1.0 = no duplicates)."""
        return self.raw_reports / self.distinct if self.distinct else 0.0

    def shrink_ratio(self) -> float:
        """Fraction of triggering fields minimization removed."""
        if not self.fields_before:
            return 0.0
        return 1.0 - (self.fields_after / self.fields_before)

    def as_dict(self) -> dict:
        return {
            "raw_reports": self.raw_reports,
            "validated": self.validated,
            "validation_failures": self.validation_failures,
            "distinct": self.distinct,
            "duplicates": self.duplicates,
            "dedup_ratio": round(self.dedup_ratio(), 4),
            "minimized": self.minimized,
            "fields_before": self.fields_before,
            "fields_after": self.fields_after,
            "shrink_ratio": round(self.shrink_ratio(), 4),
        }


def rebuild_witness_input(
    record: WitnessRecord, generator: InputGenerator
) -> bytes:
    """Reconstruct a corpus witness's input bytes against the current seed.

    Field-rebuildable records go through the generator (so checksums and
    derived fields track the *current* seed); raw-input fallback records
    replay their stored bytes verbatim.
    """
    if record.input_hex is not None:
        return bytes.fromhex(record.input_hex)
    return generator.generate_from_fields(record.field_values).data


class WitnessTriager:
    """Turn one application's bug reports into corpus-ready witness records."""

    def __init__(
        self,
        application: Application,
        detector: Optional[ErrorDetector] = None,
        minimize: bool = True,
        max_attempts: Optional[int] = None,
    ) -> None:
        self.application = application
        self.detector = detector or ErrorDetector(
            application.program, application.seed_input
        )
        self.minimize = minimize
        kwargs = {} if max_attempts is None else {"max_attempts": max_attempts}
        self.minimizer = WitnessMinimizer(
            application, detector=self.detector, **kwargs
        )
        self.generator = self.minimizer.generator

    # ------------------------------------------------------------------
    def triage(
        self, site: TargetSite, report: OverflowBugReport
    ) -> Optional[WitnessRecord]:
        """Validate, minimize and sign one bug report; ``None`` if bogus."""
        with TRACER.span(
            "triage", application=self.application.name, site=site.name
        ):
            return self._triage(site, report)

    def _triage(
        self, site: TargetSite, report: OverflowBugReport
    ) -> Optional[WitnessRecord]:
        field_values = dict(report.triggering_field_values)

        if self.minimize:
            outcome = self.minimizer.minimize(site.site_label, field_values)
            if outcome.validated:
                return self._record(
                    site,
                    report,
                    field_values=outcome.field_values,
                    input_hex=None,
                    evaluation=outcome.evaluation,
                    minimized=True,
                    removed_fields=outcome.removed_fields,
                    shrunk_fields=outcome.shrunk_fields,
                    original_fields=outcome.original_fields,
                )
            # The minimizer's first validation already rebuilt these field
            # values and saw no overflow — go straight to the raw input.
        else:
            candidate = self.generator.generate_from_fields(field_values).data
            evaluation = self.detector.evaluate(candidate, site.site_label)
            if evaluation.triggers_overflow:
                return self._record(
                    site,
                    report,
                    field_values=field_values,
                    input_hex=None,
                    evaluation=evaluation,
                    minimized=False,
                    original_fields=len(field_values),
                )

        # The field vocabulary cannot rebuild the witness: fall back to the
        # raw triggering input bytes.
        if report.triggering_input is not None:
            raw = bytes(report.triggering_input)
            evaluation = self.detector.evaluate(raw, site.site_label)
            if evaluation.triggers_overflow:
                return self._record(
                    site,
                    report,
                    field_values=field_values,
                    input_hex=raw.hex(),
                    evaluation=evaluation,
                    minimized=False,
                    original_fields=len(field_values),
                )
        return None

    # ------------------------------------------------------------------
    def _record(
        self,
        site: TargetSite,
        report: OverflowBugReport,
        *,
        field_values: Dict[str, int],
        input_hex: Optional[str],
        evaluation: Optional[CandidateEvaluation],
        minimized: bool,
        removed_fields: int = 0,
        shrunk_fields: int = 0,
        original_fields: int = 0,
    ) -> WitnessRecord:
        provenance: Tuple[str, ...] = (
            evaluation.wrap_provenance if evaluation is not None else ()
        )
        return WitnessRecord(
            signature=witness_signature(
                self.application.name, site.site_label, site.site_tag, provenance
            ),
            application=self.application.name,
            site_label=site.site_label,
            site_tag=site.site_tag,
            provenance=provenance,
            field_values=dict(field_values),
            input_hex=input_hex,
            requested_size=(
                evaluation.requested_size if evaluation is not None else None
            ),
            error_type=(
                evaluation.error_type() if evaluation is not None else "None"
            ),
            cve=report.cve,
            enforced_branches=report.enforced_branches,
            relevant_branches=report.relevant_branches,
            minimized=minimized,
            removed_fields=removed_fields,
            shrunk_fields=shrunk_fields,
            original_fields=original_fields,
            status=STATUS_FRESH,
        )


# ----------------------------------------------------------------------
# Regression replay
# ----------------------------------------------------------------------
@dataclass
class ReplayEntry:
    """Replay outcome for one corpus record."""

    signature: str
    application: str
    site_name: str
    status: str
    requested_size: Optional[int] = None
    error_type: str = "None"


@dataclass
class ReplayReport:
    """Aggregate outcome of replaying a corpus against the registry."""

    entries: List[ReplayEntry] = field(default_factory=list)
    wall_seconds: float = 0.0

    def counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for entry in self.entries:
            totals[entry.status] = totals.get(entry.status, 0) + 1
        return totals

    @property
    def regressions(self) -> List[ReplayEntry]:
        """Witnesses the current registry no longer reproduces."""
        return [
            e for e in self.entries if e.status == STATUS_NO_LONGER_TRIGGERS
        ]


def replay_corpus(
    records: Dict[str, WitnessRecord],
    applications: Sequence[Application],
    mark_missing: bool = True,
) -> ReplayReport:
    """Re-validate every corpus record against the given application models.

    Records are stamped in place (``record.status``) and summarized in the
    returned report.  ``mark_missing`` controls whether records naming an
    application outside ``applications`` are stamped ``unknown-application``
    (replaying the full registry) or left untouched (replaying a filtered
    subset).
    """
    started = time.perf_counter()
    by_name = {application.name: application for application in applications}
    report = ReplayReport()

    validators: Dict[str, Tuple[ErrorDetector, InputGenerator, List[TargetSite]]] = {}

    def validator_for(application: Application):
        bundle = validators.get(application.name)
        if bundle is None:
            bundle = (
                ErrorDetector(application.program, application.seed_input),
                InputGenerator(application.seed_input, application.format_spec),
                identify_target_sites(application.program, application.seed_input),
            )
            validators[application.name] = bundle
        return bundle

    for signature in sorted(records):
        record = records[signature]
        application = by_name.get(record.application)
        if application is None:
            if mark_missing:
                record.status = STATUS_UNKNOWN_APPLICATION
                report.entries.append(
                    ReplayEntry(
                        signature=signature,
                        application=record.application,
                        site_name=record.site_name,
                        status=STATUS_UNKNOWN_APPLICATION,
                    )
                )
            continue

        detector, generator, sites = validator_for(application)
        site = next(
            (
                s
                for s in sites
                if record.matches_site(s.site_label, s.site_tag)
            ),
            None,
        )
        entry = ReplayEntry(
            signature=signature,
            application=record.application,
            site_name=record.site_name,
            status=STATUS_UNKNOWN_SITE,
        )
        if site is not None:
            try:
                data = rebuild_witness_input(record, generator)
            except (FormatError, ValueError):
                data = None
            if data is not None:
                evaluation = detector.evaluate(data, site.site_label)
                if evaluation.triggers_overflow:
                    entry.status = STATUS_STILL_TRIGGERS
                    entry.requested_size = evaluation.requested_size
                    entry.error_type = evaluation.error_type()
                else:
                    entry.status = STATUS_NO_LONGER_TRIGGERS
        record.status = entry.status
        report.entries.append(entry)

    report.wall_seconds = time.perf_counter() - started
    return report
