"""Witness minimization: the smallest field values that still wrap.

A discovered witness carries the solver's triggering field values verbatim
— often more fields than the overflow needs, at values further from the
seed than necessary.  Before a witness enters the corpus, the minimizer
reduces it in two passes, re-validating **every** candidate with a concrete
:class:`~repro.exec.overflow_witness.OverflowWitnessInterpreter` run (via
the application's :class:`~repro.core.detection.ErrorDetector`, so seed-run
errors stay filtered):

1. **ddmin over the changed fields** — fields whose triggering value equals
   the seed baseline are dropped outright; the rest go through the classic
   delta-debugging complement loop until no chunk of the surviving fields
   can be reverted to baseline without losing the overflow;
2. **per-field shrink toward baseline** — for each surviving field, a
   bounded binary search between the seed's value and the triggering value
   finds a smaller perturbation that still wraps the allocation.

Because acceptance is always "this exact candidate re-triggered the
overflow at the target site", the minimized witness is re-verified by
construction — the property ``bench_triage.py`` gates.

The search is budgeted (:attr:`WitnessMinimizer.max_attempts` concrete
runs); exhausting the budget just stops shrinking early, it never
invalidates the witness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.apps.appbase import Application
from repro.core.detection import CandidateEvaluation, ErrorDetector
from repro.core.inputs import InputGenerator
from repro.formats.spec import FormatError

__all__ = ["MinimizationOutcome", "WitnessMinimizer"]

#: Default budget of concrete validation runs per witness.  Triggering
#: candidates exercise the overflow path (the *slow* executions), so the
#: default trades the last few bits of shrink precision for keeping the
#: triage pass a small fraction of campaign wall-clock; callers persisting
#: a long-lived corpus can raise it.
DEFAULT_MAX_ATTEMPTS = 32

#: Binary-search steps per field in the shrink pass.
_SHRINK_STEPS = 6


@dataclass
class MinimizationOutcome:
    """The result of minimizing one witness."""

    #: The minimized triggering field values (only fields that differ from
    #: the seed baseline survive).
    field_values: Dict[str, int]
    #: Whether the final ``field_values`` re-triggered the overflow.  When
    #: False the witness could not even be rebuilt from its field values
    #: (e.g. raw-byte assignments the field vocabulary cannot express) and
    #: ``field_values`` echoes the input unchanged.
    validated: bool
    #: Concrete validation runs spent.
    attempts: int
    #: Fields reverted to their baseline value by the ddmin pass.
    removed_fields: int
    #: Fields whose value the shrink pass moved toward the baseline.
    shrunk_fields: int
    #: Field count of the original witness.
    original_fields: int
    #: The detector evaluation of the final minimized candidate (``None``
    #: when ``validated`` is False).
    evaluation: Optional[CandidateEvaluation] = field(default=None, repr=False)


class WitnessMinimizer:
    """ddmin-style reduction of triggering field values for one application."""

    def __init__(
        self,
        application: Application,
        detector: Optional[ErrorDetector] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        self.application = application
        self.detector = detector or ErrorDetector(
            application.program, application.seed_input
        )
        self.generator = InputGenerator(
            application.seed_input, application.format_spec
        )
        self.max_attempts = max(1, int(max_attempts))
        self._attempts = 0
        self._last_evaluation: Optional[CandidateEvaluation] = None

    # ------------------------------------------------------------------
    def baseline_value(self, path: str) -> Optional[int]:
        """The seed input's value for a named field (``None`` if unknown)."""
        spec = self.application.format_spec
        if spec is None or not spec.has_field(path):
            return None
        try:
            return spec.field(path).read(self.application.seed_input)
        except FormatError:
            return None

    # ------------------------------------------------------------------
    def minimize(
        self, site_label: int, field_values: Mapping[str, int]
    ) -> MinimizationOutcome:
        """Reduce ``field_values`` to a minimal overflow-triggering core."""
        self._attempts = 0
        self._last_evaluation = None
        original = dict(field_values)

        if not self._triggers(site_label, original):
            return MinimizationOutcome(
                field_values=original,
                validated=False,
                attempts=self._attempts,
                removed_fields=0,
                shrunk_fields=0,
                original_fields=len(original),
            )
        best_evaluation = self._last_evaluation

        # Fields already at their baseline value contribute nothing to the
        # rewritten input; drop them before spending ddmin budget.
        changed = [
            path
            for path in original
            if original[path] != self.baseline_value(path)
        ]
        kept = self._ddmin(site_label, changed, original)
        values = {path: original[path] for path in kept}
        if kept != changed:
            # The reduced set was validated inside _ddmin; keep its run.
            best_evaluation = self._last_evaluation

        shrunk = 0
        for path in list(values):
            if self._shrink_field(site_label, values, path):
                shrunk += 1
                best_evaluation = self._last_evaluation

        return MinimizationOutcome(
            field_values=values,
            validated=True,
            attempts=self._attempts,
            removed_fields=len(original) - len(values),
            shrunk_fields=shrunk,
            original_fields=len(original),
            evaluation=best_evaluation,
        )

    # ------------------------------------------------------------------
    def _triggers(self, site_label: int, field_values: Mapping[str, int]) -> bool:
        """One budgeted concrete validation run."""
        if self._attempts >= self.max_attempts:
            return False
        self._attempts += 1
        candidate = self.generator.generate_from_fields(field_values)
        evaluation = self.detector.evaluate(candidate.data, site_label)
        if evaluation.triggers_overflow:
            self._last_evaluation = evaluation
            return True
        return False

    def _ddmin(
        self, site_label: int, changed: List[str], values: Mapping[str, int]
    ) -> List[str]:
        """Classic ddmin complement loop over the changed-field list."""
        current = list(changed)
        granularity = 2
        while len(current) >= 2 and self._attempts < self.max_attempts:
            chunk = math.ceil(len(current) / granularity)
            reduced = False
            for start in range(0, len(current), chunk):
                subset = set(current[start : start + chunk])
                complement = [path for path in current if path not in subset]
                if not complement:
                    continue
                if self._triggers(
                    site_label, {path: values[path] for path in complement}
                ):
                    current = complement
                    granularity = max(2, granularity - 1)
                    reduced = True
                    break
            if not reduced:
                if granularity >= len(current):
                    break
                granularity = min(len(current), granularity * 2)
        return current

    def _shrink_field(
        self, site_label: int, values: Dict[str, int], path: str
    ) -> bool:
        """Binary-search ``values[path]`` toward the seed baseline in place."""
        baseline = self.baseline_value(path)
        triggering = values[path]
        if baseline is None or baseline == triggering:
            return False
        # Invariant: ``high`` triggers, ``low`` does not (ddmin already
        # established that reverting the field to baseline loses the wrap).
        low, high = baseline, triggering
        for _ in range(_SHRINK_STEPS):
            if abs(high - low) <= 1 or self._attempts >= self.max_attempts:
                break
            mid = (low + high) // 2
            trial = dict(values)
            trial[path] = mid
            if self._triggers(site_label, trial):
                high = mid
            else:
                low = mid
        if high != triggering:
            values[path] = high
            # Keep _last_evaluation consistent with the accepted values: the
            # last successful run used some trial dict; re-validate the final
            # composition only if the last success was not exactly ``values``.
            return True
        return False
