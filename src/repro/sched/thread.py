"""The thread backend: a work queue over ``ThreadPoolExecutor``.

Every worker shares the campaign's :class:`~repro.smt.cache.SolverCache`
and the process-wide simplification memo directly, so a verdict derived by
one unit is visible to every sibling the moment it is stored.  Under the
GIL the threads add no CPU parallelism for the pure-Python solver — the
measured win comes from that sharing — which is exactly why the process
backend exists.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict

from repro.obs.metrics import METRICS
from repro.sched.base import (
    Backend,
    CampaignUnit,
    Slot,
    UnitRunRequest,
    drain_futures,
)


class ThreadBackend(Backend):
    """Fan units out over ``request.jobs`` worker threads."""

    name = "thread"

    def _run_queued(
        self, request: UnitRunRequest, unit: CampaignUnit, submitted: float
    ):
        # Time between submission and a worker thread picking the unit up:
        # the queue-depth signal a fleet scheduler sizes its pool by.
        METRICS.histogram("sched.queue_wait_seconds").observe(
            time.perf_counter() - submitted
        )
        return request.run_unit(unit, backend=self.name)

    def run_units(self, request: UnitRunRequest) -> Dict[Slot, object]:
        with ThreadPoolExecutor(max_workers=request.worker_count()) as executor:
            futures = [
                executor.submit(self._run_queued, request, unit, time.perf_counter())
                for unit in request.units
            ]
            payloads = drain_futures(request.units, futures)
        return {
            (unit.app_index, unit.site_index): payload
            for unit, payload in zip(request.units, payloads)
        }
