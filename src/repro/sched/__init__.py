"""Pluggable execution backends for the campaign engine.

The campaign engine treats every ⟨application, target site⟩ pair as one
independent unit of work; this package owns *how* those units are executed.
Each strategy is a :class:`~repro.sched.base.Backend`:

* ``serial`` (:mod:`repro.sched.serial`) — registry order, no executor; the
  deterministic reference schedule.
* ``thread`` (:mod:`repro.sched.thread`) — a ``ThreadPoolExecutor`` work
  queue sharing one in-process :class:`~repro.smt.cache.SolverCache`;
  under the GIL its win comes from the caches, not CPU parallelism.
* ``process`` (:mod:`repro.sched.process`) — a ``ProcessPoolExecutor``
  shipping slim picklable unit descriptors out and picklable
  :class:`~repro.sched.process.SiteResultPayload` records (plus wire-format
  solver-cache deltas) back, rebuilding per-application collaborators once
  per worker; the only backend with real CPU parallelism.

Classification parity is the contract: every backend must produce exactly
the classifications of the serial ``Diode.analyze`` path.  The unit is pure
and cached verdicts are derived from canonical representatives, so parity
holds by construction; the test suite and ``benchmarks/bench_backends.py``
enforce it.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.sched.base import (
    Backend,
    CampaignUnit,
    UnitAnalysisError,
    UnitRunRequest,
)
from repro.sched.context import ApplicationContext, build_application_context
from repro.sched.process import ProcessBackend, SiteResultPayload
from repro.sched.serial import SerialBackend
from repro.sched.thread import ThreadBackend

#: Registered backend classes, keyed by their CLI-visible names.
BACKENDS: Dict[str, Type[Backend]] = {
    backend.name: backend
    for backend in (SerialBackend, ThreadBackend, ProcessBackend)
}


def available_backends() -> List[str]:
    """Names of the registered execution backends."""
    return list(BACKENDS)


def get_backend(name: str) -> Backend:
    """Instantiate the backend registered under ``name``."""
    backend = BACKENDS.get(name)
    if backend is None:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(BACKENDS)}"
        )
    return backend()


__all__ = [
    "ApplicationContext",
    "BACKENDS",
    "Backend",
    "CampaignUnit",
    "ProcessBackend",
    "SerialBackend",
    "SiteResultPayload",
    "ThreadBackend",
    "UnitAnalysisError",
    "UnitRunRequest",
    "available_backends",
    "build_application_context",
    "get_backend",
]
