"""The execution-backend interface and its shared scheduling helpers.

A :class:`Backend` receives one :class:`UnitRunRequest` — the immutable
per-application contexts, the flat unit list, the shared solver cache and
the resolved worker count — and returns a ``(app_index, site_index) ->
SiteResult`` mapping.  How the units run (inline, worker threads, worker
processes) is entirely the backend's business; everything observable about
the *results* must be schedule-independent.

Error contract (shared by every backend through :func:`drain_futures`): the
first unit failure cancels all still-pending sibling units, and the failure
is re-raised as a :class:`UnitAnalysisError` carrying the failing unit's
⟨application, site⟩ identity with the original exception chained as its
``__cause__``.

This module deliberately imports nothing from :mod:`repro.core` at module
scope: the core package's campaign engine imports :mod:`repro.sched`, and
deferring the reverse edge to call time keeps the import graph acyclic no
matter which side is imported first.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import FIRST_EXCEPTION, Future, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import DiodeConfig
    from repro.core.report import SiteResult
    from repro.sched.context import ApplicationContext
    from repro.smt.cache import SolverCache

#: Result-slot key: ``(app_index, site_index)``.
Slot = Tuple[int, int]


@dataclass(frozen=True)
class CampaignUnit:
    """One schedulable ⟨application, target site⟩ analysis.

    Only primitives — the descriptor must survive pickling into a worker
    process, where the heavyweight collaborators are rebuilt from the
    registry short name rather than shipped over the pipe.
    """

    app_index: int
    site_index: int
    application_name: str
    site_name: str


class UnitAnalysisError(RuntimeError):
    """A campaign unit failed; carries the ⟨application, site⟩ identity."""

    def __init__(self, unit: CampaignUnit, cause: BaseException) -> None:
        self.unit = unit
        self.application_name = unit.application_name
        self.site_name = unit.site_name
        super().__init__(
            f"campaign unit ⟨{unit.application_name}, {unit.site_name}⟩ "
            f"failed: {cause!r}"
        )


@dataclass
class UnitRunRequest:
    """Everything a backend needs to execute one campaign's units."""

    contexts: List["ApplicationContext"]
    units: List[CampaignUnit]
    cache: Optional["SolverCache"]
    jobs: int
    diode: "DiodeConfig"
    #: Registry short names indexed by ``app_index`` — what a worker process
    #: needs to rebuild the application model on its side of the pipe.
    application_names: List[str]
    #: Whether workers should triage bug reports (validate + minimize + sign
    #: witnesses; :mod:`repro.triage`).  Only the process backend acts on
    #: it — in-process backends leave triage to the campaign engine, which
    #: already holds the shared per-application collaborators.
    triage: bool = False
    #: Whether worker-side triage minimizes witnesses before signing.
    minimize_witnesses: bool = True
    #: Filled by backends that triage on the worker side: ``slot → wire-form
    #: WitnessRecord`` (``None`` = the report failed witness re-validation).
    #: Slots absent from this mapping are triaged by the campaign engine.
    witness_results: Dict[Slot, Optional[dict]] = field(default_factory=dict)
    #: Trace directory for this run (``campaign --trace-dir``).  In-process
    #: backends inherit the campaign's already-attached sink; the process
    #: backend ships this path to workers so each attaches its own
    #: ``spans-<pid>.jsonl`` sink.
    trace_dir: Optional[str] = None
    #: Whether the live event stream is enabled for this run (``campaign
    #: --no-events`` is the ablation).  In-process backends inherit the
    #: parent's already-toggled stream; the process backend ships the flag
    #: to workers.
    events: bool = True
    #: Heartbeat cadence for in-flight units (the process backend starts a
    #: heartbeat thread per worker; the campaign engine starts the parent's).
    heartbeat_seconds: float = 0.5

    def run_unit(self, unit: CampaignUnit, backend: str = "") -> "SiteResult":
        """Execute one unit in-process against the shared contexts."""
        from repro.core.engine import analyze_site
        from repro.obs.events import unit_lifecycle
        from repro.obs.metrics import METRICS
        from repro.obs.trace import TRACER

        context = self.contexts[unit.app_index]
        with unit_lifecycle(
            unit.application_name, unit.site_name, backend
        ) as finish_attrs:
            with TRACER.span(
                "unit",
                application=unit.application_name,
                site=unit.site_name,
                backend=backend,
            ):
                result = analyze_site(
                    context.application,
                    context.sites[unit.site_index],
                    self.diode,
                    solver_cache=self.cache,
                    detector=context.detector,
                    field_mapper=context.mapper,
                )
            finish_attrs["classification"] = result.classification.value
        METRICS.counter("campaign.units_completed").inc()
        return result

    def worker_count(self) -> int:
        """Workers actually worth spawning for this unit list."""
        return max(1, min(self.jobs, len(self.units) or 1))


class Backend(ABC):
    """One strategy for executing a campaign's units."""

    #: Registry / CLI name of the backend.
    name: str = "abstract"

    @abstractmethod
    def run_units(self, request: UnitRunRequest) -> Dict[Slot, object]:
        """Run every unit and return results keyed by ``(app, site)`` index."""


def drain_futures(
    units: Sequence[CampaignUnit], futures: Sequence["Future"]
) -> List[object]:
    """Collect unit futures, with first-failure cancellation semantics.

    Waits until every future finishes or any future raises.  On a failure,
    all still-pending siblings are cancelled (already-running units cannot
    be interrupted, but no new ones start) and the earliest-submitted
    failure is re-raised as :class:`UnitAnalysisError` with the original
    exception as ``__cause__``.  Otherwise returns results in submission
    order.
    """
    wait(futures, return_when=FIRST_EXCEPTION)
    failed_index: Optional[int] = None
    for index, future in enumerate(futures):
        if future.done() and not future.cancelled():
            if future.exception() is not None:
                failed_index = index
                break
    if failed_index is None:
        return [future.result() for future in futures]

    for future in futures:
        future.cancel()
    cause = futures[failed_index].exception()
    raise UnitAnalysisError(units[failed_index], cause) from cause
