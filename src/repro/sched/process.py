"""The process backend: real CPU parallelism over ``ProcessPoolExecutor``.

Terms are hash-consed with identity equality, so nothing containing a
:class:`~repro.smt.terms.Term` may cross the process boundary — a pickled
term would rebuild as a distinct, non-interned object and silently break
``is``-based equality.  The backend therefore ships only:

* **out**: slim :class:`~repro.sched.base.CampaignUnit` descriptors
  (primitives only); each worker rebuilds the application model and its
  per-application collaborators from the registry short name, lazily and
  at most once per ⟨worker, application⟩ pair;
* **back**: :class:`SiteResultPayload` records (classification value, bug
  report, timing — all term-free) plus the worker cache's *new* artifacts
  in the :mod:`repro.smt.cachestore` wire format — whole-query verdicts,
  component-granularity verdicts, canonical UNSAT cores and blasted-CNF
  skeletons, each tagged with its kind — which the parent merges into the
  campaign cache so a persistent store (or a later run) sees every
  worker's derivations across all four kinds.  When the
  campaign enables triage, each unit's result also carries a wire-form
  :class:`~repro.triage.corpus.WitnessRecord` (validated, minimized,
  signed *in the worker*, which parallelizes minimization's concrete
  re-validation runs); the parent collects them into
  ``request.witness_results`` for the campaign's corpus merge.

Workers are primed at pool start with the parent cache's current contents
(the warm-start path when a ``--cache-dir`` store was loaded), and report
per-unit hit/miss counter deltas so the campaign's aggregate cache
statistics reflect worker-side lookups.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.sched.base import (
    Backend,
    CampaignUnit,
    Slot,
    UnitRunRequest,
    drain_futures,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.report import OverflowBugReport, SiteResult
    from repro.core.sites import TargetSite
    from repro.sched.context import ApplicationContext

#: Width of :meth:`SolverCache.stats_snapshot` tuples (imported lazily in
#: workers, so the width is mirrored here; asserted against the class when
#: a worker builds its state).
_STATS_FIELDS = 11


@dataclass
class SiteResultPayload:
    """Picklable, term-free projection of a :class:`SiteResult`.

    Carries exactly what the campaign report consumes — the classification,
    the (already picklable) bug report and the discovery timing.  The
    parent re-attaches its own :class:`TargetSite` object when rebuilding,
    so sites never cross the pipe either.
    """

    classification: str
    discovery_seconds: float
    bug_report: Optional["OverflowBugReport"]

    @classmethod
    def from_site_result(cls, result: "SiteResult") -> "SiteResultPayload":
        return cls(
            classification=result.classification.value,
            discovery_seconds=result.discovery_seconds,
            bug_report=result.bug_report,
        )

    def to_site_result(self, site: "TargetSite") -> "SiteResult":
        from repro.core.report import SiteClassification, SiteResult

        return SiteResult(
            site=site,
            classification=SiteClassification(self.classification),
            bug_report=self.bug_report,
            discovery_seconds=self.discovery_seconds,
        )


class _WorkerState:
    """Per-process collaborators, built once by the pool initializer."""

    def __init__(
        self,
        application_names: List[str],
        diode,
        use_cache: bool,
        seed_entries: List[dict],
        triage: bool = False,
        minimize_witnesses: bool = True,
        trace_dir: Optional[str] = None,
        events: bool = True,
        heartbeat_seconds: float = 0.5,
        event_queue=None,
    ) -> None:
        from repro.obs import events as ev
        from repro.obs.metrics import METRICS
        from repro.smt.cache import SimplifyMemo, SolverCache

        self.application_names = application_names
        self.diode = diode
        self.cache = SolverCache() if use_cache else None
        self.contexts: Dict[int, "ApplicationContext"] = {}
        self.triage = triage
        self.minimize_witnesses = minimize_witnesses
        self.triagers: Dict[int, object] = {}
        #: Registry wire mark for per-unit metric deltas (the worker-side
        #: half of the campaign's metric aggregation).
        self.metrics_mark: dict = METRICS.snapshot()
        # A fork-started worker inherits the parent's sink lists, whose
        # already-open JSONL handles point at the *parent's* files —
        # emitting through them would write every worker record into the
        # parent's file as well as the worker's own.  Drop the inherited
        # sinks (the parent still owns the handles) before attaching the
        # worker's per-process ones.
        from repro.obs.trace import TRACER, JsonlSink

        TRACER.clear_sinks()
        ev.EVENTS.clear_sinks()
        if trace_dir:
            # Each worker appends to its own spans-<pid>.jsonl; the sink
            # lives for the worker's lifetime and dies with the pool.
            TRACER.add_sink(JsonlSink(trace_dir))
        # The event stream mirrors the parent's configuration: the worker
        # persists its own events-<pid>.jsonl and forwards the low-rate
        # streaming subset live over the side queue.  The count mark is
        # taken *before* worker.up so the first unit's delta carries it.
        ev.EVENTS.enabled = bool(events)
        if events:
            if trace_dir:
                ev.EVENTS.add_sink(ev.JsonlEventSink(trace_dir))
            if event_queue is not None:
                ev.EVENTS.add_sink(ev.QueueSink(event_queue))
        self.events_mark: dict = ev.EVENTS.snapshot()
        if events:
            ev.EVENTS.emit(ev.WORKER_UP)
            # Daemon thread, dies with the worker; nothing to stop.
            ev.start_heartbeat(max(0.05, float(heartbeat_seconds)))
        #: ``(kind, key)`` pairs already shipped to the parent — all four
        #: artifact kinds (whole-query, component, UNSAT core, CNF
        #: skeleton) travel through the same delta stream.
        self.exported_keys: set = set()
        assert SolverCache.STATS_FIELDS == _STATS_FIELDS
        self.stats_mark: Tuple[int, ...] = (0,) * _STATS_FIELDS
        if self.cache is not None:
            # The memo stays enabled for the worker's whole lifetime; the
            # process dies with the pool, so no disable pairing is needed.
            SimplifyMemo.enable()
            if seed_entries:
                from repro.smt.cachestore import merge_wire_entries

                merged = merge_wire_entries(self.cache, seed_entries)
                self.exported_keys.update(merged)

    def context_for(self, app_index: int) -> "ApplicationContext":
        context = self.contexts.get(app_index)
        if context is None:
            from repro.apps.registry import get_application
            from repro.sched.context import build_application_context

            context = build_application_context(
                app_index, get_application(self.application_names[app_index])
            )
            self.contexts[app_index] = context
        return context

    def triager_for(self, app_index: int):
        """Lazy per-⟨worker, application⟩ witness triager."""
        triager = self.triagers.get(app_index)
        if triager is None:
            from repro.triage.engine import WitnessTriager

            context = self.context_for(app_index)
            triager = WitnessTriager(
                context.application,
                detector=context.detector,
                minimize=self.minimize_witnesses,
            )
            self.triagers[app_index] = triager
        return triager


_STATE: Optional[_WorkerState] = None


def _worker_init(
    application_names: List[str],
    diode,
    use_cache: bool,
    seed_entries: List[dict],
    triage: bool = False,
    minimize_witnesses: bool = True,
    trace_dir: Optional[str] = None,
    events: bool = True,
    heartbeat_seconds: float = 0.5,
    event_queue=None,
) -> None:
    global _STATE
    _STATE = _WorkerState(
        application_names,
        diode,
        use_cache,
        seed_entries,
        triage,
        minimize_witnesses,
        trace_dir,
        events,
        heartbeat_seconds,
        event_queue,
    )


def _worker_run(
    unit: CampaignUnit,
) -> Tuple[
    SiteResultPayload, List[dict], Tuple[int, ...], Optional[dict], dict, dict
]:
    """Analyze one unit in the worker; return payload + cache/witness/metric/event deltas."""
    from repro.core.engine import analyze_site
    from repro.obs.events import EVENTS, diff_event_wires, unit_lifecycle
    from repro.obs.metrics import METRICS, diff_snapshots
    from repro.obs.trace import TRACER

    state = _STATE
    if state is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("process backend worker used before initialization")
    context = state.context_for(unit.app_index)
    with unit_lifecycle(
        unit.application_name, unit.site_name, "process"
    ) as finish_attrs:
        with TRACER.span(
            "unit",
            application=unit.application_name,
            site=unit.site_name,
            backend="process",
        ):
            result = analyze_site(
                context.application,
                context.sites[unit.site_index],
                state.diode,
                solver_cache=state.cache,
                detector=context.detector,
                field_mapper=context.mapper,
            )
        finish_attrs["classification"] = result.classification.value
    METRICS.counter("campaign.units_completed").inc()

    delta: List[dict] = []
    stats_delta: Tuple[int, ...] = (0,) * _STATS_FIELDS
    if state.cache is not None:
        from repro.smt.cachestore import export_wire_entries

        delta, keys = export_wire_entries(state.cache, exclude=state.exported_keys)
        state.exported_keys.update(keys)
        mark = state.cache.stats_snapshot()
        stats_delta = tuple(
            now - before for now, before in zip(mark, state.stats_mark)
        )
        state.stats_mark = mark

    witness_wire: Optional[dict] = None
    if state.triage and result.bug_report is not None:
        record = state.triager_for(unit.app_index).triage(
            context.sites[unit.site_index], result.bug_report
        )
        witness_wire = None if record is None else record.to_wire()

    # Last, so the deltas also cover triage/cache work done above.  The
    # event delta carries exact counts for everything this worker emitted
    # since the previous unit — including the high-rate cache.* events the
    # live queue deliberately does not forward.
    snapshot = METRICS.snapshot()
    metrics_wire = diff_snapshots(state.metrics_mark, snapshot)
    state.metrics_mark = snapshot
    events_snapshot = EVENTS.snapshot()
    events_wire = diff_event_wires(state.events_mark, events_snapshot)
    state.events_mark = events_snapshot
    return (
        SiteResultPayload.from_site_result(result),
        delta,
        stats_delta,
        witness_wire,
        metrics_wire,
        events_wire,
    )


class ProcessBackend(Backend):
    """Fan units out over ``request.jobs`` worker processes."""

    name = "process"

    def run_units(self, request: UnitRunRequest) -> Dict[Slot, object]:
        import threading

        from repro.obs import events as ev

        seed_entries: List[dict] = []
        if request.cache is not None:
            from repro.smt.cachestore import export_wire_entries

            seed_entries, _ = export_wire_entries(request.cache)

        # The live side channel: workers forward streaming-class event
        # records (lifecycle, heartbeat, worker up/down) onto a managed
        # queue *while units run*, and the drainer thread ingests them into
        # the parent stream so progress rendering and straggler detection
        # see worker units mid-flight.  A Manager proxy queue is used
        # because a plain multiprocessing.Queue cannot ride through
        # ProcessPoolExecutor initargs.  Counts are NOT taken from the
        # queue (ingest never counts); they arrive exactly via the per-unit
        # event wire deltas merged below.
        manager = None
        event_queue = None
        drainer = None
        worker_pids: set = set()
        if request.events:
            import multiprocessing

            manager = multiprocessing.Manager()
            event_queue = manager.Queue()

            def drain() -> None:
                while True:
                    try:
                        record = event_queue.get()
                    except (EOFError, OSError):  # pragma: no cover - teardown
                        return
                    if record is None:
                        return
                    if isinstance(record, dict):
                        pid = record.get("pid")
                        if isinstance(pid, int):
                            worker_pids.add(pid)
                        ev.EVENTS.ingest(record)

            drainer = threading.Thread(
                target=drain, name="repro-event-drain", daemon=True
            )
            drainer.start()

        try:
            with ProcessPoolExecutor(
                max_workers=request.worker_count(),
                initializer=_worker_init,
                initargs=(
                    list(request.application_names),
                    request.diode,
                    request.cache is not None,
                    seed_entries,
                    request.triage,
                    request.minimize_witnesses,
                    request.trace_dir,
                    request.events,
                    request.heartbeat_seconds,
                    event_queue,
                ),
            ) as executor:
                futures = [
                    executor.submit(_worker_run, unit) for unit in request.units
                ]
                payloads = drain_futures(request.units, futures)
        finally:
            if event_queue is not None:
                # Unblock and retire the drainer even when a unit failed,
                # then mark every worker that announced itself as down (the
                # pool is closed here, so the processes are gone; workers
                # have no shutdown hook of their own).
                try:
                    event_queue.put(None)
                except Exception:  # pragma: no cover - manager already dead
                    pass
                drainer.join(timeout=10)
                for pid in sorted(worker_pids):
                    ev.EVENTS.emit(ev.WORKER_DOWN, worker_pid=pid)
            if manager is not None:
                manager.shutdown()

        from repro.obs.metrics import METRICS

        results: Dict[Slot, object] = {}
        for unit, (
            payload,
            delta,
            stats_delta,
            witness_wire,
            metrics_wire,
            events_wire,
        ) in zip(request.units, payloads):
            slot = (unit.app_index, unit.site_index)
            site = request.contexts[unit.app_index].sites[unit.site_index]
            results[slot] = payload.to_site_result(site)
            if request.cache is not None:
                if delta:
                    from repro.smt.cachestore import merge_wire_entries

                    merge_wire_entries(request.cache, delta)
                request.cache.add_external_stats(*stats_delta)
            if request.triage and payload.bug_report is not None:
                request.witness_results[slot] = witness_wire
            # Merge order cannot matter: counters/histogram buckets are
            # integers and add, gauges take max (see repro.obs.metrics);
            # event counts are integers and add (see repro.obs.events).
            METRICS.merge(metrics_wire)
            ev.EVENTS.merge(events_wire)
        return results
