"""Per-application collaborator bundles shared by every backend.

One :class:`ApplicationContext` holds the immutable collaborators every
site of one application shares — the seed-run error detector, the field
mapper and the identified target sites — so a backend builds them once per
application (in-process backends) or once per ⟨worker, application⟩ pair
(the process backend's lazy rebuild) instead of once per site.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.obs.trace import TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apps.appbase import Application
    from repro.core.detection import ErrorDetector
    from repro.core.fieldmap import FieldMapper
    from repro.core.sites import TargetSite


@dataclass
class ApplicationContext:
    """Shared immutable per-application collaborators."""

    index: int
    application: "Application"
    detector: "ErrorDetector"
    mapper: "FieldMapper"
    sites: List["TargetSite"]
    #: Seconds spent identifying target sites (the paper's analysis phase).
    analysis_seconds: float


def build_application_context(
    index: int, application: "Application"
) -> ApplicationContext:
    """Identify target sites and build the shared collaborators."""
    from repro.core.detection import ErrorDetector
    from repro.core.fieldmap import FieldMapper
    from repro.core.sites import identify_target_sites

    identify_started = time.perf_counter()
    with TRACER.span("taint", application=application.name):
        sites = identify_target_sites(
            application.program, application.seed_input
        )
    analysis_seconds = time.perf_counter() - identify_started
    return ApplicationContext(
        index=index,
        application=application,
        detector=ErrorDetector(application.program, application.seed_input),
        mapper=FieldMapper(application.format_spec),
        sites=sites,
        analysis_seconds=analysis_seconds,
    )
