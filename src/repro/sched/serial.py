"""The serial backend: registry order, no executor, no shared-state races.

This is the deterministic reference schedule every other backend is
measured against, and the automatic fallback when the campaign resolves to
a single worker (spawning an executor for one lane only adds overhead).
"""

from __future__ import annotations

from typing import Dict

from repro.sched.base import Backend, Slot, UnitAnalysisError, UnitRunRequest


class SerialBackend(Backend):
    """Run every unit inline, in unit-list (registry) order."""

    name = "serial"

    def run_units(self, request: UnitRunRequest) -> Dict[Slot, object]:
        results: Dict[Slot, object] = {}
        for unit in request.units:
            try:
                results[(unit.app_index, unit.site_index)] = request.run_unit(
                    unit, backend=self.name
                )
            except Exception as exc:
                # Serial semantics match drain_futures: later units are
                # "pending" and simply never start.
                raise UnitAnalysisError(unit, exc) from exc
        return results
