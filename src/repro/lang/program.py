"""Program container: a lowered core-language program plus metadata.

A :class:`Program` bundles the labelled core statement sequence with lookup
tables (label → statement, tag → label) and validation.  It is the unit the
interpreters in :mod:`repro.exec` execute and the unit DIODE analyses.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.lang.ast import (
    AllocStmt,
    CallExpr,
    CallStmt,
    IfStmt,
    ReturnStmt,
    SeqStmt,
    Stmt,
    WhileStmt,
    statement_expressions,
    walk_expressions,
    walk_statements,
)
from repro.lang.lowering import lower_program
from repro.lang.parser import ParsedUnit, parse_program


class ProgramError(ValueError):
    """Raised when a program fails validation."""


class Program:
    """A lowered, labelled core-language program."""

    def __init__(self, name: str, body: SeqStmt) -> None:
        self.name = name
        self.body = body
        self._by_label: Dict[int, Stmt] = {}
        self._by_tag: Dict[str, Stmt] = {}
        self._validate_and_index()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_source(cls, source: str, name: str = "program", entry: str = "main") -> "Program":
        """Parse and lower DSL source text into a :class:`Program`."""
        unit = parse_program(source, filename=name)
        return cls.from_unit(unit, name=name, entry=entry)

    @classmethod
    def from_unit(cls, unit: ParsedUnit, name: str = "program", entry: str = "main") -> "Program":
        """Lower an already-parsed unit into a :class:`Program`."""
        body = lower_program(unit, entry=entry)
        return cls(name=name, body=body)

    # ------------------------------------------------------------------
    # Validation / indexing
    # ------------------------------------------------------------------
    def _validate_and_index(self) -> None:
        for statement in walk_statements(self.body):
            if statement.label is None:
                raise ProgramError(
                    f"statement at {statement.loc} has no label; "
                    "programs must be built through lowering"
                )
            if statement.label in self._by_label:
                raise ProgramError(f"duplicate label {statement.label}")
            self._by_label[statement.label] = statement
            if statement.tag:
                if statement.tag in self._by_tag:
                    raise ProgramError(f"duplicate tag {statement.tag!r}")
                self._by_tag[statement.tag] = statement
            if isinstance(statement, (CallStmt, ReturnStmt)):
                raise ProgramError(
                    f"surface-only statement {type(statement).__name__} survived lowering"
                )
            for expression in statement_expressions(statement):
                for sub in walk_expressions(expression):
                    if isinstance(sub, CallExpr):
                        raise ProgramError("CallExpr survived lowering")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def statements(self) -> Iterator[Stmt]:
        """Iterate over every statement in the program."""
        return walk_statements(self.body)

    def statement_at(self, label: int) -> Stmt:
        """Return the statement with the given label."""
        try:
            return self._by_label[label]
        except KeyError as error:
            raise ProgramError(f"no statement with label {label}") from error

    def statement_tagged(self, tag: str) -> Stmt:
        """Return the statement carrying the given ``@ "tag"`` annotation."""
        try:
            return self._by_tag[tag]
        except KeyError as error:
            raise ProgramError(f"no statement tagged {tag!r}") from error

    def label_of_tag(self, tag: str) -> int:
        """Return the label of the statement carrying ``tag``."""
        statement = self.statement_tagged(tag)
        assert statement.label is not None
        return statement.label

    def tag_of_label(self, label: int) -> Optional[str]:
        """Return the tag of the statement at ``label`` (if any)."""
        return self.statement_at(label).tag

    def allocation_sites(self) -> List[AllocStmt]:
        """All ``alloc`` statements in the program (potential target sites)."""
        return [s for s in self.statements() if isinstance(s, AllocStmt)]

    def conditional_labels(self) -> List[int]:
        """Labels of all conditional statements (``if`` and ``while``)."""
        return [
            s.label
            for s in self.statements()
            if isinstance(s, (IfStmt, WhileStmt)) and s.label is not None
        ]

    def statement_count(self) -> int:
        """Total number of core statements."""
        return len(self._by_label)

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, statements={self.statement_count()}, "
            f"allocation_sites={len(self.allocation_sites())})"
        )
