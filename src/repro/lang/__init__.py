"""The core imperative language of the paper (Figure 3) plus a small surface DSL.

The benchmark application models (:mod:`repro.apps`) are written in a C-like
surface language with procedures and constants.  :mod:`repro.lang.lowering`
inlines procedures and desugars the surface forms down to the core language
of the paper: assignments, ``alloc``, memory loads/stores, ``if``, ``while``
and sequencing, each statement carrying a unique label.  The interpreters in
:mod:`repro.exec` implement the paper's small-step semantics over that core.
"""

from repro.lang.ast import (
    BinaryExpr,
    BinaryOp,
    UnaryExpr,
    UnaryOp,
    ConstExpr,
    VarExpr,
    InputByteExpr,
    InputSizeExpr,
    LoadExpr,
    CallExpr,
    Expr,
    Stmt,
    SkipStmt,
    AssignStmt,
    AllocStmt,
    StoreStmt,
    IfStmt,
    WhileStmt,
    SeqStmt,
    HaltStmt,
    WarnStmt,
    CallStmt,
    ReturnStmt,
    ProcDef,
    SourceLocation,
)
from repro.lang.lexer import Lexer, Token, TokenKind, LexError
from repro.lang.parser import Parser, ParseError, parse_program
from repro.lang.lowering import LoweringError, lower_program
from repro.lang.program import Program, ProgramError

__all__ = [
    "BinaryExpr",
    "BinaryOp",
    "UnaryExpr",
    "UnaryOp",
    "ConstExpr",
    "VarExpr",
    "InputByteExpr",
    "InputSizeExpr",
    "LoadExpr",
    "CallExpr",
    "Expr",
    "Stmt",
    "SkipStmt",
    "AssignStmt",
    "AllocStmt",
    "StoreStmt",
    "IfStmt",
    "WhileStmt",
    "SeqStmt",
    "HaltStmt",
    "WarnStmt",
    "CallStmt",
    "ReturnStmt",
    "ProcDef",
    "SourceLocation",
    "Lexer",
    "Token",
    "TokenKind",
    "LexError",
    "Parser",
    "ParseError",
    "parse_program",
    "LoweringError",
    "lower_program",
    "Program",
    "ProgramError",
]
