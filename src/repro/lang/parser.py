"""Recursive-descent parser for the surface DSL.

Grammar (informal)::

    unit        := (constdef | procdef)* procdef*
    constdef    := "const" IDENT "=" expr ";"
    procdef     := "proc" IDENT "(" params? ")" block
    params      := IDENT ("," IDENT)*
    block       := "{" stmt* "}"
    stmt        := "skip" ";"
                 | "halt" STRING? ";"
                 | "warn" STRING? ";"
                 | "return" expr? ";"
                 | "if" "(" expr ")" block ("else" (block | ifstmt))?
                 | "while" "(" expr ")" block
                 | IDENT "=" "alloc" "(" expr ")" tag? ";"
                 | IDENT "=" expr tag? ";"
                 | IDENT "[" expr "]" "=" expr ";"
                 | IDENT "(" args ")" ";"                 # call statement
    tag         := "@" STRING
    expr        := ternary-free C-like precedence:
                   "||" < "&&" < compare < "|" < "^" < "&" < shift < add < mul < unary
    primary     := NUMBER | IDENT | IDENT "(" args ")" | IDENT "[" expr "]"
                 | "input" "(" expr ")" | "input_size" | "abs" "(" expr ")"
                 | "true" | "false" | "(" expr ")"

The program entry point is the procedure named ``main``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lang.ast import (
    AllocStmt,
    AssignStmt,
    BinaryExpr,
    BinaryOp,
    CallExpr,
    CallStmt,
    ConstExpr,
    Expr,
    HaltStmt,
    IfStmt,
    InputByteExpr,
    InputSizeExpr,
    LoadExpr,
    ProcDef,
    ReturnStmt,
    SeqStmt,
    SkipStmt,
    SourceLocation,
    Stmt,
    StoreStmt,
    UnaryExpr,
    UnaryOp,
    VarExpr,
    WarnStmt,
    WhileStmt,
)
from repro.lang.lexer import Lexer, Token, TokenKind


class ParseError(SyntaxError):
    """Raised on malformed DSL source."""


class ParsedUnit:
    """The result of parsing: constants and procedure definitions."""

    def __init__(
        self, constants: Dict[str, int], procedures: Dict[str, ProcDef]
    ) -> None:
        self.constants = constants
        self.procedures = procedures

    def __repr__(self) -> str:
        return (
            f"ParsedUnit(constants={sorted(self.constants)}, "
            f"procedures={sorted(self.procedures)})"
        )


class Parser:
    """Parse DSL source text into a :class:`ParsedUnit`."""

    def __init__(self, source: str, filename: str = "<dsl>") -> None:
        self.tokens = Lexer(source, filename).tokens()
        self.position = 0
        self.constants: Dict[str, int] = {}
        self.procedures: Dict[str, ProcDef] = {}

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        index = min(self.position + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self.position += 1
        return token

    def _expect_punct(self, text: str) -> Token:
        token = self._next()
        if not token.is_punct(text):
            raise ParseError(f"{token.loc}: expected {text!r}, found {token.text!r}")
        return token

    def _expect_keyword(self, text: str) -> Token:
        token = self._next()
        if not token.is_keyword(text):
            raise ParseError(f"{token.loc}: expected {text!r}, found {token.text!r}")
        return token

    def _expect_ident(self) -> Token:
        token = self._next()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(
                f"{token.loc}: expected an identifier, found {token.text!r}"
            )
        return token

    def _accept_punct(self, text: str) -> Optional[Token]:
        if self._peek().is_punct(text):
            return self._next()
        return None

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse(self) -> ParsedUnit:
        """Parse the whole unit."""
        while self._peek().kind is not TokenKind.EOF:
            token = self._peek()
            if token.is_keyword("const"):
                self._parse_const()
            elif token.is_keyword("proc"):
                self._parse_proc()
            else:
                raise ParseError(
                    f"{token.loc}: expected 'const' or 'proc' at top level, "
                    f"found {token.text!r}"
                )
        return ParsedUnit(self.constants, self.procedures)

    def _parse_const(self) -> None:
        self._expect_keyword("const")
        name = self._expect_ident()
        self._expect_punct("=")
        value_expr = self._parse_expression()
        self._expect_punct(";")
        value = _evaluate_constant(value_expr, self.constants)
        if value is None:
            raise ParseError(
                f"{name.loc}: constant {name.text!r} must have a constant initializer"
            )
        self.constants[name.text] = value

    def _parse_proc(self) -> None:
        self._expect_keyword("proc")
        name = self._expect_ident()
        self._expect_punct("(")
        parameters: List[str] = []
        if not self._peek().is_punct(")"):
            while True:
                parameters.append(self._expect_ident().text)
                if self._accept_punct(","):
                    continue
                break
        self._expect_punct(")")
        body = self._parse_block()
        if name.text in self.procedures:
            raise ParseError(f"{name.loc}: duplicate procedure {name.text!r}")
        self.procedures[name.text] = ProcDef(
            name=name.text,
            parameters=tuple(parameters),
            body=body,
            loc=name.loc,
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_block(self) -> SeqStmt:
        open_brace = self._expect_punct("{")
        statements: List[Stmt] = []
        while not self._peek().is_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                raise ParseError(f"{open_brace.loc}: unterminated block")
            statements.append(self._parse_statement())
        self._expect_punct("}")
        return SeqStmt(statements=statements, loc=open_brace.loc)

    def _parse_statement(self) -> Stmt:
        token = self._peek()

        if token.is_keyword("skip"):
            self._next()
            self._expect_punct(";")
            return SkipStmt(loc=token.loc)
        if token.is_keyword("halt"):
            self._next()
            message = ""
            if self._peek().kind is TokenKind.STRING:
                message = self._next().text
            self._expect_punct(";")
            return HaltStmt(message=message, loc=token.loc)
        if token.is_keyword("warn"):
            self._next()
            message = ""
            if self._peek().kind is TokenKind.STRING:
                message = self._next().text
            self._expect_punct(";")
            return WarnStmt(message=message, loc=token.loc)
        if token.is_keyword("return"):
            self._next()
            value: Optional[Expr] = None
            if not self._peek().is_punct(";"):
                value = self._parse_expression()
            self._expect_punct(";")
            return ReturnStmt(value=value, loc=token.loc)
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.kind is TokenKind.IDENT:
            return self._parse_assignment_or_call()
        raise ParseError(f"{token.loc}: unexpected token {token.text!r} in statement")

    def _parse_if(self) -> IfStmt:
        keyword = self._expect_keyword("if")
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        then_body = self._parse_block()
        else_body = SeqStmt(statements=[], loc=keyword.loc)
        if self._peek().is_keyword("else"):
            self._next()
            if self._peek().is_keyword("if"):
                nested = self._parse_if()
                else_body = SeqStmt(statements=[nested], loc=nested.loc)
            else:
                else_body = self._parse_block()
        return IfStmt(
            condition=condition,
            then_body=then_body,
            else_body=else_body,
            loc=keyword.loc,
        )

    def _parse_while(self) -> WhileStmt:
        keyword = self._expect_keyword("while")
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_block()
        return WhileStmt(condition=condition, body=body, loc=keyword.loc)

    def _parse_assignment_or_call(self) -> Stmt:
        name = self._expect_ident()

        if self._peek().is_punct("("):
            arguments = self._parse_arguments()
            self._expect_punct(";")
            return CallStmt(callee=name.text, arguments=tuple(arguments), loc=name.loc)

        if self._peek().is_punct("["):
            self._next()
            offset = self._parse_expression()
            self._expect_punct("]")
            self._expect_punct("=")
            value = self._parse_expression()
            self._expect_punct(";")
            return StoreStmt(
                base=name.text, offset=offset, value=value, loc=name.loc
            )

        self._expect_punct("=")
        if self._peek().is_keyword("alloc"):
            self._next()
            self._expect_punct("(")
            size = self._parse_expression()
            self._expect_punct(")")
            tag = self._parse_optional_tag()
            self._expect_punct(";")
            return AllocStmt(target=name.text, size=size, loc=name.loc, tag=tag)
        value = self._parse_expression()
        tag = self._parse_optional_tag()
        self._expect_punct(";")
        return AssignStmt(target=name.text, value=value, loc=name.loc, tag=tag)

    def _parse_optional_tag(self) -> Optional[str]:
        if self._accept_punct("@"):
            token = self._next()
            if token.kind is not TokenKind.STRING:
                raise ParseError(f"{token.loc}: expected a string tag after '@'")
            return token.text
        return None

    def _parse_arguments(self) -> List[Expr]:
        self._expect_punct("(")
        arguments: List[Expr] = []
        if not self._peek().is_punct(")"):
            while True:
                arguments.append(self._parse_expression())
                if self._accept_punct(","):
                    continue
                break
        self._expect_punct(")")
        return arguments

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expression(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._peek().is_punct("||"):
            op_token = self._next()
            right = self._parse_and()
            left = BinaryExpr(BinaryOp.OR, left, right, loc=op_token.loc)
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_comparison()
        while self._peek().is_punct("&&"):
            op_token = self._next()
            right = self._parse_comparison()
            left = BinaryExpr(BinaryOp.AND, left, right, loc=op_token.loc)
        return left

    _COMPARISONS = {
        "==": BinaryOp.EQ,
        "!=": BinaryOp.NE,
        "<": BinaryOp.LT,
        "<=": BinaryOp.LE,
        ">": BinaryOp.GT,
        ">=": BinaryOp.GE,
        "<s": BinaryOp.SLT,
        "<=s": BinaryOp.SLE,
        ">s": BinaryOp.SGT,
        ">=s": BinaryOp.SGE,
    }

    def _parse_comparison(self) -> Expr:
        left = self._parse_bitor()
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text in self._COMPARISONS:
            self._next()
            right = self._parse_bitor()
            return BinaryExpr(self._COMPARISONS[token.text], left, right, loc=token.loc)
        return left

    def _parse_bitor(self) -> Expr:
        left = self._parse_bitxor()
        while self._peek().is_punct("|"):
            op_token = self._next()
            right = self._parse_bitxor()
            left = BinaryExpr(BinaryOp.BITOR, left, right, loc=op_token.loc)
        return left

    def _parse_bitxor(self) -> Expr:
        left = self._parse_bitand()
        while self._peek().is_punct("^"):
            op_token = self._next()
            right = self._parse_bitand()
            left = BinaryExpr(BinaryOp.BITXOR, left, right, loc=op_token.loc)
        return left

    def _parse_bitand(self) -> Expr:
        left = self._parse_shift()
        while self._peek().is_punct("&"):
            op_token = self._next()
            right = self._parse_shift()
            left = BinaryExpr(BinaryOp.BITAND, left, right, loc=op_token.loc)
        return left

    def _parse_shift(self) -> Expr:
        left = self._parse_additive()
        while self._peek().is_punct("<<") or self._peek().is_punct(">>"):
            op_token = self._next()
            op = BinaryOp.SHL if op_token.text == "<<" else BinaryOp.SHR
            right = self._parse_additive()
            left = BinaryExpr(op, left, right, loc=op_token.loc)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._peek().is_punct("+") or self._peek().is_punct("-"):
            op_token = self._next()
            op = BinaryOp.ADD if op_token.text == "+" else BinaryOp.SUB
            right = self._parse_multiplicative()
            left = BinaryExpr(op, left, right, loc=op_token.loc)
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while (
            self._peek().is_punct("*")
            or self._peek().is_punct("/")
            or self._peek().is_punct("%")
        ):
            op_token = self._next()
            op = {
                "*": BinaryOp.MUL,
                "/": BinaryOp.DIV,
                "%": BinaryOp.MOD,
            }[op_token.text]
            right = self._parse_unary()
            left = BinaryExpr(op, left, right, loc=op_token.loc)
        return left

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.is_punct("-"):
            self._next()
            return UnaryExpr(UnaryOp.NEG, self._parse_unary(), loc=token.loc)
        if token.is_punct("~"):
            self._next()
            return UnaryExpr(UnaryOp.BITNOT, self._parse_unary(), loc=token.loc)
        if token.is_punct("!"):
            self._next()
            return UnaryExpr(UnaryOp.NOT, self._parse_unary(), loc=token.loc)
        if token.is_keyword("abs"):
            self._next()
            self._expect_punct("(")
            operand = self._parse_expression()
            self._expect_punct(")")
            return UnaryExpr(UnaryOp.ABS, operand, loc=token.loc)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._next()
        if token.kind is TokenKind.NUMBER:
            return ConstExpr(value=int(token.value or 0), loc=token.loc)
        if token.is_keyword("true"):
            return ConstExpr(value=1, loc=token.loc)
        if token.is_keyword("false"):
            return ConstExpr(value=0, loc=token.loc)
        if token.is_keyword("input"):
            self._expect_punct("(")
            offset = self._parse_expression()
            self._expect_punct(")")
            return InputByteExpr(offset=offset, loc=token.loc)
        if token.is_keyword("input_size"):
            return InputSizeExpr(loc=token.loc)
        if token.is_punct("("):
            inner = self._parse_expression()
            self._expect_punct(")")
            return inner
        if token.kind is TokenKind.IDENT:
            if token.text in self.constants:
                if not (self._peek().is_punct("(") or self._peek().is_punct("[")):
                    return ConstExpr(value=self.constants[token.text], loc=token.loc)
            if self._peek().is_punct("("):
                arguments = self._parse_arguments()
                return CallExpr(
                    callee=token.text, arguments=tuple(arguments), loc=token.loc
                )
            if self._peek().is_punct("["):
                self._next()
                offset = self._parse_expression()
                self._expect_punct("]")
                return LoadExpr(base=token.text, offset=offset, loc=token.loc)
            return VarExpr(name=token.text, loc=token.loc)
        raise ParseError(f"{token.loc}: unexpected token {token.text!r} in expression")


def _evaluate_constant(expr: Expr, constants: Dict[str, int]) -> Optional[int]:
    """Evaluate a constant initializer; returns ``None`` if not constant."""
    if isinstance(expr, ConstExpr):
        return expr.value
    if isinstance(expr, VarExpr):
        return constants.get(expr.name)
    if isinstance(expr, UnaryExpr):
        operand = _evaluate_constant(expr.operand, constants)
        if operand is None:
            return None
        if expr.op is UnaryOp.NEG:
            return -operand
        if expr.op is UnaryOp.BITNOT:
            return ~operand
        if expr.op is UnaryOp.NOT:
            return 0 if operand else 1
        if expr.op is UnaryOp.ABS:
            return abs(operand)
    if isinstance(expr, BinaryExpr):
        left = _evaluate_constant(expr.left, constants)
        right = _evaluate_constant(expr.right, constants)
        if left is None or right is None:
            return None
        return _fold_constant_binary(expr.op, left, right)
    return None


def _fold_constant_binary(op: BinaryOp, left: int, right: int) -> Optional[int]:
    if op is BinaryOp.ADD:
        return left + right
    if op is BinaryOp.SUB:
        return left - right
    if op is BinaryOp.MUL:
        return left * right
    if op is BinaryOp.DIV:
        return left // right if right else 0
    if op is BinaryOp.MOD:
        return left % right if right else 0
    if op is BinaryOp.SHL:
        return left << right
    if op is BinaryOp.SHR:
        return left >> right
    if op is BinaryOp.BITAND:
        return left & right
    if op is BinaryOp.BITOR:
        return left | right
    if op is BinaryOp.BITXOR:
        return left ^ right
    return None


def parse_program(source: str, filename: str = "<dsl>") -> ParsedUnit:
    """Parse DSL source text into constants and procedure definitions."""
    return Parser(source, filename).parse()
