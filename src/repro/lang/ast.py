"""Abstract syntax for the core imperative language and the surface DSL.

The core language follows the paper's Figure 3: program variables, input
values, arithmetic and boolean expressions, assignment, dynamic allocation,
memory read/write, conditionals, loops and sequencing.  Two conservative
extensions make the benchmark application models practical without changing
the semantics the DIODE algorithm relies on:

* memory loads may appear in expression position (``LoadExpr``), not only as
  the dedicated statement form;
* the surface DSL adds procedures (``ProcDef`` / ``CallExpr`` / ``CallStmt``
  / ``ReturnStmt``), which :mod:`repro.lang.lowering` inlines away, and the
  diagnostic statements ``halt`` (fatal error, e.g. libpng's ``png_error``)
  and ``warn`` (non-fatal, e.g. ``png_warning``).

Every core statement receives a unique integer label during lowering; the
label plays the role of the paper's ``before(C)`` program point and is the
identity used for branch-condition compression and goal-directed enforcement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SourceLocation:
    """Location of a construct in the surface DSL source."""

    filename: str = "<unknown>"
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


# ======================================================================
# Expressions
# ======================================================================
class Expr:
    """Base class for expressions."""

    loc: SourceLocation


class BinaryOp(enum.Enum):
    """Binary operators (arithmetic, bitwise, comparison, boolean)."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    SHL = "<<"
    SHR = ">>"
    BITAND = "&"
    BITOR = "|"
    BITXOR = "^"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    SLT = "<s"
    SLE = "<=s"
    SGT = ">s"
    SGE = ">=s"
    AND = "&&"
    OR = "||"


class UnaryOp(enum.Enum):
    """Unary operators."""

    NEG = "-"
    BITNOT = "~"
    NOT = "!"
    ABS = "abs"


#: Operators whose result is boolean.
BOOLEAN_RESULT_OPS = frozenset(
    {
        BinaryOp.EQ,
        BinaryOp.NE,
        BinaryOp.LT,
        BinaryOp.LE,
        BinaryOp.GT,
        BinaryOp.GE,
        BinaryOp.SLT,
        BinaryOp.SLE,
        BinaryOp.SGT,
        BinaryOp.SGE,
        BinaryOp.AND,
        BinaryOp.OR,
    }
)


@dataclass(frozen=True)
class ConstExpr(Expr):
    """An integer literal."""

    value: int
    loc: SourceLocation = field(default_factory=SourceLocation, compare=False)


@dataclass(frozen=True)
class VarExpr(Expr):
    """A reference to a program variable (PgmVar in the paper)."""

    name: str
    loc: SourceLocation = field(default_factory=SourceLocation, compare=False)


@dataclass(frozen=True)
class InputByteExpr(Expr):
    """The value of the input byte at a given offset (an InpVar use).

    Concretely this reads ``input[offset]`` (0 past the end of the input);
    symbolically it is the 8-bit input variable for that offset, zero
    extended to the machine width.
    """

    offset: Expr
    loc: SourceLocation = field(default_factory=SourceLocation, compare=False)


@dataclass(frozen=True)
class InputSizeExpr(Expr):
    """The total number of input bytes."""

    loc: SourceLocation = field(default_factory=SourceLocation, compare=False)


@dataclass(frozen=True)
class UnaryExpr(Expr):
    """A unary operation."""

    op: UnaryOp
    operand: Expr
    loc: SourceLocation = field(default_factory=SourceLocation, compare=False)


@dataclass(frozen=True)
class BinaryExpr(Expr):
    """A binary operation."""

    op: BinaryOp
    left: Expr
    right: Expr
    loc: SourceLocation = field(default_factory=SourceLocation, compare=False)


@dataclass(frozen=True)
class LoadExpr(Expr):
    """A memory read ``base[offset]`` in expression position."""

    base: str
    offset: Expr
    loc: SourceLocation = field(default_factory=SourceLocation, compare=False)


@dataclass(frozen=True)
class CallExpr(Expr):
    """A procedure call in expression position (surface DSL only)."""

    callee: str
    arguments: Tuple[Expr, ...]
    loc: SourceLocation = field(default_factory=SourceLocation, compare=False)


# ======================================================================
# Statements
# ======================================================================
class Stmt:
    """Base class for statements.

    ``label`` is assigned during lowering and is unique per core statement.
    ``tag`` is an optional human-readable annotation attached in the surface
    DSL with ``@ "name"`` — application models use it to name allocation
    sites after the paper's source locations (e.g. ``png.c@203``).
    """

    label: Optional[int]
    tag: Optional[str]
    loc: SourceLocation


def _stmt_defaults():
    return {"label": None, "tag": None}


@dataclass
class SkipStmt(Stmt):
    """``skip``."""

    loc: SourceLocation = field(default_factory=SourceLocation)
    label: Optional[int] = None
    tag: Optional[str] = None


@dataclass
class AssignStmt(Stmt):
    """``x = A``."""

    target: str
    value: Expr
    loc: SourceLocation = field(default_factory=SourceLocation)
    label: Optional[int] = None
    tag: Optional[str] = None


@dataclass
class AllocStmt(Stmt):
    """``x = alloc(A)`` — the potential target sites of DIODE."""

    target: str
    size: Expr
    loc: SourceLocation = field(default_factory=SourceLocation)
    label: Optional[int] = None
    tag: Optional[str] = None


@dataclass
class StoreStmt(Stmt):
    """``x[A] = B`` — memory write."""

    base: str
    offset: Expr
    value: Expr
    loc: SourceLocation = field(default_factory=SourceLocation)
    label: Optional[int] = None
    tag: Optional[str] = None


@dataclass
class IfStmt(Stmt):
    """``if B S1 S2``."""

    condition: Expr
    then_body: "SeqStmt"
    else_body: "SeqStmt"
    loc: SourceLocation = field(default_factory=SourceLocation)
    label: Optional[int] = None
    tag: Optional[str] = None


@dataclass
class WhileStmt(Stmt):
    """``while B S``."""

    condition: Expr
    body: "SeqStmt"
    loc: SourceLocation = field(default_factory=SourceLocation)
    label: Optional[int] = None
    tag: Optional[str] = None


@dataclass
class SeqStmt(Stmt):
    """``C1; ...; Cn`` — a statement sequence (block)."""

    statements: List[Stmt] = field(default_factory=list)
    loc: SourceLocation = field(default_factory=SourceLocation)
    label: Optional[int] = None
    tag: Optional[str] = None

    def __iter__(self):
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)


@dataclass
class HaltStmt(Stmt):
    """Fatal error exit (``png_error``-style): stop processing the input."""

    message: str = ""
    loc: SourceLocation = field(default_factory=SourceLocation)
    label: Optional[int] = None
    tag: Optional[str] = None


@dataclass
class WarnStmt(Stmt):
    """Non-fatal warning (``png_warning``-style): record a message, continue."""

    message: str = ""
    loc: SourceLocation = field(default_factory=SourceLocation)
    label: Optional[int] = None
    tag: Optional[str] = None


@dataclass
class CallStmt(Stmt):
    """A procedure call in statement position (surface DSL only)."""

    callee: str
    arguments: Tuple[Expr, ...] = ()
    loc: SourceLocation = field(default_factory=SourceLocation)
    label: Optional[int] = None
    tag: Optional[str] = None


@dataclass
class ReturnStmt(Stmt):
    """``return A`` — only valid inside a procedure (surface DSL only)."""

    value: Optional[Expr] = None
    loc: SourceLocation = field(default_factory=SourceLocation)
    label: Optional[int] = None
    tag: Optional[str] = None


@dataclass
class ProcDef:
    """A surface-DSL procedure definition."""

    name: str
    parameters: Tuple[str, ...]
    body: SeqStmt
    loc: SourceLocation = field(default_factory=SourceLocation)


# ======================================================================
# Traversal helpers
# ======================================================================
def walk_statements(stmt: Stmt):
    """Yield every statement in the subtree rooted at ``stmt`` (pre-order)."""
    yield stmt
    if isinstance(stmt, SeqStmt):
        for child in stmt.statements:
            yield from walk_statements(child)
    elif isinstance(stmt, IfStmt):
        yield from walk_statements(stmt.then_body)
        yield from walk_statements(stmt.else_body)
    elif isinstance(stmt, WhileStmt):
        yield from walk_statements(stmt.body)


def walk_expressions(expr: Expr):
    """Yield every sub-expression of ``expr`` (pre-order)."""
    yield expr
    if isinstance(expr, UnaryExpr):
        yield from walk_expressions(expr.operand)
    elif isinstance(expr, BinaryExpr):
        yield from walk_expressions(expr.left)
        yield from walk_expressions(expr.right)
    elif isinstance(expr, InputByteExpr):
        yield from walk_expressions(expr.offset)
    elif isinstance(expr, LoadExpr):
        yield from walk_expressions(expr.offset)
    elif isinstance(expr, CallExpr):
        for argument in expr.arguments:
            yield from walk_expressions(argument)


def statement_expressions(stmt: Stmt):
    """Yield the expressions directly referenced by a single statement."""
    if isinstance(stmt, AssignStmt):
        yield stmt.value
    elif isinstance(stmt, AllocStmt):
        yield stmt.size
    elif isinstance(stmt, StoreStmt):
        yield stmt.offset
        yield stmt.value
    elif isinstance(stmt, (IfStmt, WhileStmt)):
        yield stmt.condition
    elif isinstance(stmt, CallStmt):
        yield from stmt.arguments
    elif isinstance(stmt, ReturnStmt):
        if stmt.value is not None:
            yield stmt.value
