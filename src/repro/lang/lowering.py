"""Lowering from the surface DSL to the paper's core language.

The surface language allows procedures, calls in expression and statement
position, and ``return`` statements.  The core language of the paper
(Figure 3) has none of these, so lowering:

1. **Inlines every call** with per-call-site variable renaming (so a
   procedure used twice yields two independent sets of locals) and a depth
   limit that rejects recursion.
2. **Rewrites calls in expression position** into a temporary variable
   assignment placed before the enclosing statement.  Calls are not allowed
   inside ``while`` conditions (the condition would need re-evaluation on
   every iteration); application models hoist such calls manually.
3. **Handles ``return``** by assigning the return value to the call-site's
   result variable.  A ``return`` that is not the last statement of a branch
   of the procedure body is rejected — early exits in the middle of a block
   would require control-flow flattening that the core language cannot
   express without extra guard branches, which would distort the relevant
   branch counts DIODE reasons about.
4. **Assigns a unique integer label** to every core statement, in a stable
   pre-order, so branch identity (compression / enforcement) is
   deterministic across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang.ast import (
    AllocStmt,
    AssignStmt,
    BinaryExpr,
    CallExpr,
    CallStmt,
    ConstExpr,
    Expr,
    HaltStmt,
    IfStmt,
    InputByteExpr,
    InputSizeExpr,
    LoadExpr,
    ProcDef,
    ReturnStmt,
    SeqStmt,
    SkipStmt,
    SourceLocation,
    Stmt,
    StoreStmt,
    UnaryExpr,
    VarExpr,
    WarnStmt,
    WhileStmt,
)
from repro.lang.parser import ParsedUnit


class LoweringError(ValueError):
    """Raised when a surface program cannot be lowered to the core language."""


MAX_INLINE_DEPTH = 32


@dataclass
class _LoweringContext:
    """State shared across one lowering run."""

    procedures: Dict[str, ProcDef]
    temp_counter: int = 0
    inline_counter: int = 0

    def fresh_temp(self) -> str:
        self.temp_counter += 1
        return f"__t{self.temp_counter}"

    def fresh_inline_prefix(self, name: str) -> str:
        self.inline_counter += 1
        return f"__{name}_{self.inline_counter}"


def lower_program(unit: ParsedUnit, entry: str = "main") -> SeqStmt:
    """Lower a parsed unit into a labelled core-language statement sequence."""
    if entry not in unit.procedures:
        raise LoweringError(f"entry procedure {entry!r} is not defined")
    entry_proc = unit.procedures[entry]
    if entry_proc.parameters:
        raise LoweringError(f"entry procedure {entry!r} must take no parameters")
    context = _LoweringContext(procedures=dict(unit.procedures))
    lowered = _lower_block(entry_proc.body, context, rename={}, depth=0, result_var=None)
    _assign_labels(lowered)
    return lowered


# ----------------------------------------------------------------------
# Statement lowering
# ----------------------------------------------------------------------
def _lower_block(
    block: SeqStmt,
    context: _LoweringContext,
    rename: Dict[str, str],
    depth: int,
    result_var: Optional[str],
) -> SeqStmt:
    statements: List[Stmt] = []
    for index, statement in enumerate(block.statements):
        is_last = index == len(block.statements) - 1
        statements.extend(
            _lower_statement(statement, context, rename, depth, result_var, is_last)
        )
    return SeqStmt(statements=statements, loc=block.loc)


def _lower_statement(
    statement: Stmt,
    context: _LoweringContext,
    rename: Dict[str, str],
    depth: int,
    result_var: Optional[str],
    is_last: bool,
) -> List[Stmt]:
    if isinstance(statement, SkipStmt):
        return [SkipStmt(loc=statement.loc, tag=statement.tag)]

    if isinstance(statement, (HaltStmt, WarnStmt)):
        cls = type(statement)
        return [cls(message=statement.message, loc=statement.loc, tag=statement.tag)]

    if isinstance(statement, AssignStmt):
        prelude, value = _lower_expression(statement.value, context, rename, depth)
        return prelude + [
            AssignStmt(
                target=_rename(statement.target, rename),
                value=value,
                loc=statement.loc,
                tag=statement.tag,
            )
        ]

    if isinstance(statement, AllocStmt):
        prelude, size = _lower_expression(statement.size, context, rename, depth)
        return prelude + [
            AllocStmt(
                target=_rename(statement.target, rename),
                size=size,
                loc=statement.loc,
                tag=statement.tag,
            )
        ]

    if isinstance(statement, StoreStmt):
        prelude_offset, offset = _lower_expression(statement.offset, context, rename, depth)
        prelude_value, value = _lower_expression(statement.value, context, rename, depth)
        return prelude_offset + prelude_value + [
            StoreStmt(
                base=_rename(statement.base, rename),
                offset=offset,
                value=value,
                loc=statement.loc,
                tag=statement.tag,
            )
        ]

    if isinstance(statement, IfStmt):
        prelude, condition = _lower_expression(statement.condition, context, rename, depth)
        then_body = _lower_block(statement.then_body, context, rename, depth, result_var)
        else_body = _lower_block(statement.else_body, context, rename, depth, result_var)
        return prelude + [
            IfStmt(
                condition=condition,
                then_body=then_body,
                else_body=else_body,
                loc=statement.loc,
                tag=statement.tag,
            )
        ]

    if isinstance(statement, WhileStmt):
        prelude, condition = _lower_expression(statement.condition, context, rename, depth)
        if prelude:
            raise LoweringError(
                f"{statement.loc}: procedure calls are not allowed in while conditions"
            )
        body = _lower_block(statement.body, context, rename, depth, result_var)
        return [
            WhileStmt(
                condition=condition,
                body=body,
                loc=statement.loc,
                tag=statement.tag,
            )
        ]

    if isinstance(statement, CallStmt):
        return _inline_call(
            statement.callee,
            list(statement.arguments),
            context,
            rename,
            depth,
            result_var=None,
            loc=statement.loc,
        )

    if isinstance(statement, ReturnStmt):
        if result_var is None and statement.value is not None:
            raise LoweringError(
                f"{statement.loc}: 'return <value>' outside of a value-returning call"
            )
        if not is_last:
            raise LoweringError(
                f"{statement.loc}: 'return' must be the last statement of its block"
            )
        if statement.value is None:
            return [SkipStmt(loc=statement.loc)]
        prelude, value = _lower_expression(statement.value, context, rename, depth)
        if result_var is None:
            return prelude + [SkipStmt(loc=statement.loc)]
        return prelude + [
            AssignStmt(target=result_var, value=value, loc=statement.loc)
        ]

    raise LoweringError(f"cannot lower statement of type {type(statement).__name__}")


def _inline_call(
    callee: str,
    arguments: List[Expr],
    context: _LoweringContext,
    rename: Dict[str, str],
    depth: int,
    result_var: Optional[str],
    loc: SourceLocation,
) -> List[Stmt]:
    if depth >= MAX_INLINE_DEPTH:
        raise LoweringError(f"{loc}: call depth exceeds {MAX_INLINE_DEPTH} (recursion?)")
    procedure = context.procedures.get(callee)
    if procedure is None:
        raise LoweringError(f"{loc}: call to undefined procedure {callee!r}")
    if len(arguments) != len(procedure.parameters):
        raise LoweringError(
            f"{loc}: {callee!r} expects {len(procedure.parameters)} argument(s), "
            f"got {len(arguments)}"
        )
    prefix = context.fresh_inline_prefix(callee)
    callee_rename: Dict[str, str] = {}
    statements: List[Stmt] = []

    for parameter, argument in zip(procedure.parameters, arguments):
        prelude, lowered_argument = _lower_expression(argument, context, rename, depth)
        statements.extend(prelude)
        local_name = f"{prefix}_{parameter}"
        callee_rename[parameter] = local_name
        statements.append(
            AssignStmt(target=local_name, value=lowered_argument, loc=loc)
        )

    # Locals of the callee that are not parameters also get the prefix: the
    # rename map is populated lazily by `_rename` via `default_prefix`.
    body = _lower_block(
        procedure.body,
        context,
        rename=_PrefixedRename(callee_rename, prefix),
        depth=depth + 1,
        result_var=result_var,
    )
    statements.extend(body.statements)
    return statements


class _PrefixedRename(dict):
    """Rename map that lazily prefixes unknown names (callee locals)."""

    def __init__(self, initial: Dict[str, str], prefix: str) -> None:
        super().__init__(initial)
        self._prefix = prefix

    def __missing__(self, key: str) -> str:
        value = f"{self._prefix}_{key}"
        self[key] = value
        return value


def _rename(name: str, rename: Dict[str, str]) -> str:
    if isinstance(rename, _PrefixedRename):
        return rename[name]
    return rename.get(name, name)


# ----------------------------------------------------------------------
# Expression lowering
# ----------------------------------------------------------------------
def _lower_expression(
    expr: Expr,
    context: _LoweringContext,
    rename: Dict[str, str],
    depth: int,
) -> Tuple[List[Stmt], Expr]:
    """Lower an expression; returns (prelude statements, pure expression)."""
    if isinstance(expr, ConstExpr):
        return [], expr
    if isinstance(expr, VarExpr):
        return [], VarExpr(name=_rename(expr.name, rename), loc=expr.loc)
    if isinstance(expr, InputSizeExpr):
        return [], expr
    if isinstance(expr, InputByteExpr):
        prelude, offset = _lower_expression(expr.offset, context, rename, depth)
        return prelude, InputByteExpr(offset=offset, loc=expr.loc)
    if isinstance(expr, LoadExpr):
        prelude, offset = _lower_expression(expr.offset, context, rename, depth)
        return prelude, LoadExpr(
            base=_rename(expr.base, rename), offset=offset, loc=expr.loc
        )
    if isinstance(expr, UnaryExpr):
        prelude, operand = _lower_expression(expr.operand, context, rename, depth)
        return prelude, UnaryExpr(op=expr.op, operand=operand, loc=expr.loc)
    if isinstance(expr, BinaryExpr):
        left_prelude, left = _lower_expression(expr.left, context, rename, depth)
        right_prelude, right = _lower_expression(expr.right, context, rename, depth)
        return left_prelude + right_prelude, BinaryExpr(
            op=expr.op, left=left, right=right, loc=expr.loc
        )
    if isinstance(expr, CallExpr):
        result_var = context.fresh_temp()
        statements = [AssignStmt(target=result_var, value=ConstExpr(0), loc=expr.loc)]
        statements.extend(
            _inline_call(
                expr.callee,
                list(expr.arguments),
                context,
                rename,
                depth,
                result_var=result_var,
                loc=expr.loc,
            )
        )
        return statements, VarExpr(name=result_var, loc=expr.loc)
    raise LoweringError(f"cannot lower expression of type {type(expr).__name__}")


# ----------------------------------------------------------------------
# Label assignment
# ----------------------------------------------------------------------
def _assign_labels(root: SeqStmt) -> None:
    counter = 0

    def visit(statement: Stmt) -> None:
        nonlocal counter
        statement.label = counter
        counter += 1
        if isinstance(statement, SeqStmt):
            for child in statement.statements:
                visit(child)
        elif isinstance(statement, IfStmt):
            visit(statement.then_body)
            visit(statement.else_body)
        elif isinstance(statement, WhileStmt):
            visit(statement.body)

    visit(root)
