"""Tokenizer for the surface DSL."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.lang.ast import SourceLocation


class LexError(SyntaxError):
    """Raised on invalid input characters or malformed literals."""


class TokenKind(enum.Enum):
    """Token categories produced by :class:`Lexer`."""

    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "proc",
        "const",
        "if",
        "else",
        "while",
        "skip",
        "alloc",
        "halt",
        "warn",
        "return",
        "input",
        "input_size",
        "abs",
        "true",
        "false",
    }
)

# Multi-character punctuation, longest first so the scanner is greedy.
PUNCTUATION = [
    "<=s",
    ">=s",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "<s",
    ">s",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    "=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "@",
]


@dataclass(frozen=True)
class Token:
    """A single token with its source location."""

    kind: TokenKind
    text: str
    value: Optional[int] = None
    loc: SourceLocation = SourceLocation()

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r})"


class Lexer:
    """Convert DSL source text into a token list."""

    def __init__(self, source: str, filename: str = "<dsl>") -> None:
        self.source = source
        self.filename = filename
        self.position = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> List[Token]:
        """Tokenize the whole input (including a trailing EOF token)."""
        return list(self._iter_tokens())

    # ------------------------------------------------------------------
    def _iter_tokens(self) -> Iterator[Token]:
        while True:
            self._skip_whitespace_and_comments()
            if self.position >= len(self.source):
                yield Token(TokenKind.EOF, "", loc=self._loc())
                return
            yield self._next_token()

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.position < len(self.source) and self.source[self.position] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.position += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.position < len(self.source):
            char = self.source[self.position]
            if char in " \t\r\n":
                self._advance()
                continue
            if char == "#" or self.source.startswith("//", self.position):
                while (
                    self.position < len(self.source)
                    and self.source[self.position] != "\n"
                ):
                    self._advance()
                continue
            if self.source.startswith("/*", self.position):
                end = self.source.find("*/", self.position + 2)
                if end < 0:
                    raise LexError(f"{self._loc()}: unterminated block comment")
                while self.position < end + 2:
                    self._advance()
                continue
            break

    def _next_token(self) -> Token:
        loc = self._loc()
        char = self.source[self.position]

        if char.isdigit():
            return self._number(loc)
        if char.isalpha() or char == "_":
            return self._identifier(loc)
        if char == '"':
            return self._string(loc)
        for punct in PUNCTUATION:
            if self.source.startswith(punct, self.position):
                # "<s" / "<=s" must not swallow the start of an identifier
                # like "size"; only treat the trailing "s" as part of the
                # operator when it is not followed by an identifier char.
                if punct.endswith("s"):
                    after = self.position + len(punct)
                    if after < len(self.source) and (
                        self.source[after].isalnum() or self.source[after] == "_"
                    ):
                        continue
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, loc=loc)
        raise LexError(f"{loc}: unexpected character {char!r}")

    def _number(self, loc: SourceLocation) -> Token:
        start = self.position
        if self.source.startswith(("0x", "0X"), self.position):
            self._advance(2)
            while self.position < len(self.source) and (
                self.source[self.position] in "0123456789abcdefABCDEF_"
            ):
                self._advance()
            text = self.source[start : self.position]
            return Token(TokenKind.NUMBER, text, value=int(text.replace("_", ""), 16), loc=loc)
        while self.position < len(self.source) and (
            self.source[self.position].isdigit() or self.source[self.position] == "_"
        ):
            self._advance()
        text = self.source[start : self.position]
        return Token(TokenKind.NUMBER, text, value=int(text.replace("_", "")), loc=loc)

    def _identifier(self, loc: SourceLocation) -> Token:
        start = self.position
        while self.position < len(self.source) and (
            self.source[self.position].isalnum() or self.source[self.position] == "_"
        ):
            self._advance()
        text = self.source[start : self.position]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, loc=loc)

    def _string(self, loc: SourceLocation) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self.position >= len(self.source):
                raise LexError(f"{loc}: unterminated string literal")
            char = self.source[self.position]
            if char == '"':
                self._advance()
                break
            if char == "\\":
                self._advance()
                if self.position >= len(self.source):
                    raise LexError(f"{loc}: unterminated escape sequence")
                escape = self.source[self.position]
                chars.append({"n": "\n", "t": "\t"}.get(escape, escape))
                self._advance()
                continue
            chars.append(char)
            self._advance()
        return Token(TokenKind.STRING, "".join(chars), loc=loc)
