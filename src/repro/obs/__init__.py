"""Campaign-wide observability: metrics, spans, trace sinks, reporting.

Three modules, layered bottom-up (none of them imports anything else from
:mod:`repro`, so every other layer — solver, store, scheduler, campaign —
may instrument itself freely without import cycles):

* :mod:`repro.obs.metrics` — the process-global :data:`~repro.obs.metrics.METRICS`
  registry (counters, gauges, fixed-bucket duration histograms) whose
  snapshots delta and merge losslessly across process-backend workers;
* :mod:`repro.obs.trace` — the process-global :data:`~repro.obs.trace.TRACER`
  (nestable stage spans, structured events) over pluggable sinks
  (in-memory collector, schema-versioned JSONL trace directory);
* :mod:`repro.obs.report` — the re-runnable report step behind the
  ``repro trace`` CLI subcommand (per-stage summary, straggler top-N,
  Chrome trace-event export).

The contract every instrumented layer relies on: **observability is
passive** — identical site classifications with tracing on or off, and
deterministic metric totals regardless of backend worker count for
schedule-independent workloads (gated by CI and
``benchmarks/bench_observability.py``).
"""

from __future__ import annotations

from repro.obs.metrics import (
    METRICS,
    METRICS_WIRE_VERSION,
    MetricsRegistry,
    diff_snapshots,
    merge_snapshots,
)
from repro.obs.report import (
    StageSummary,
    TraceData,
    UnitSummary,
    chrome_trace_events,
    load_trace_dir,
    stage_summaries,
    unit_summaries,
)
from repro.obs.trace import (
    TRACER,
    TRACE_SCHEMA_VERSION,
    InMemorySink,
    JsonlSink,
    Tracer,
    validate_record,
)

__all__ = [
    "InMemorySink",
    "JsonlSink",
    "METRICS",
    "METRICS_WIRE_VERSION",
    "MetricsRegistry",
    "StageSummary",
    "TRACER",
    "TRACE_SCHEMA_VERSION",
    "TraceData",
    "Tracer",
    "UnitSummary",
    "chrome_trace_events",
    "diff_snapshots",
    "load_trace_dir",
    "merge_snapshots",
    "stage_summaries",
    "unit_summaries",
    "validate_record",
]
