"""Spans, structured events, and trace sinks.

The :class:`Tracer` is the event half of the observability subsystem: the
pipeline wraps each stage of a campaign unit (taint, concolic, screening,
solve, enforcement, triage) plus the store layer's load/merge/save in a
*span* — a named, nestable interval with monotonic duration, a wall-clock
anchor and JSON-able attributes.  Point-in-time occurrences (a stale lock
broken, a cache store reborn) are *events*.

Two consumers exist:

* **Stage timers** — every finished span feeds the duration histogram
  ``stage.<name>.seconds`` in :data:`repro.obs.metrics.METRICS`,
  unconditionally.  This is cheap (two ``perf_counter`` calls and one
  locked dict update) and gives every run a per-stage breakdown even with
  no trace sink attached.
* **Sinks** — when a sink is attached (a campaign run with
  ``--trace-dir``, or an in-memory collector in tests), finished spans
  and events are emitted as structured records.  With no sink attached
  the tracer skips record construction entirely.

Observability is passive: spans never alter control flow, sink failures
are swallowed after disabling the sink, and tracing on/off is gated for
classification parity by CI and ``benchmarks/bench_observability.py``.

Trace directory layout (schema version :data:`TRACE_SCHEMA_VERSION`)::

    <trace-dir>/meta.json          {"format": "repro-trace", "version": 1}
    <trace-dir>/spans-<pid>.jsonl  one JSON record per line

Every process participating in a run (the campaign parent, each process-
backend worker) appends to its own ``spans-<pid>.jsonl`` file, so no
cross-process write coordination is needed; ``repro trace`` loads the
whole directory.  Record schema::

    {"v": 1, "kind": "span",  "name": ..., "id": N, "parent": N|null,
     "pid": N, "tid": N, "wall": epoch-seconds, "dur": seconds,
     "attrs": {...}}
    {"v": 1, "kind": "event", "name": ..., "id": N, "parent": N|null,
     "pid": N, "tid": N, "wall": epoch-seconds, "attrs": {...}}

Like every persisted artifact in this repository the trace format is
versioned: readers reject a ``meta.json`` with an unknown version, skip
records whose ``v`` they do not understand, and any schema change bumps
:data:`TRACE_SCHEMA_VERSION` (see ``docs/observability.md``).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Dict, List, Optional

from repro.obs.metrics import METRICS

__all__ = [
    "InMemorySink",
    "JsonlSink",
    "TRACER",
    "TRACE_META_NAME",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "ensure_trace_dir",
    "validate_record",
]

#: Version stamp of the trace directory format and record schema.
TRACE_SCHEMA_VERSION = 1

TRACE_META_NAME = "meta.json"

#: Span/event ids, unique within one process (``pid`` disambiguates across
#: processes).  ``itertools.count`` is atomic under the GIL.
_IDS = itertools.count(1)

_VALID_KINDS = ("span", "event")

_ATTR_TYPES = (str, int, float, bool, type(None))


class InMemorySink:
    """Collects records in a list — the test/report collector."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.records: List[dict] = []

    def emit(self, record: dict) -> None:
        with self._lock:
            self.records.append(record)

    def close(self) -> None:  # pragma: no cover - symmetry with JsonlSink
        pass


class JsonlSink:
    """Appends records to ``<trace_dir>/spans-<pid>.jsonl``, one per line.

    The file is opened lazily on first emit (so configuring tracing for a
    run that emits nothing leaves no empty file) and every line is flushed
    — a process-backend worker killed with its pool must not lose its
    tail.  Writes are serialized by a lock for the thread backend.
    """

    def __init__(self, trace_dir: str) -> None:
        self.trace_dir = str(trace_dir)
        self._lock = threading.Lock()
        self._handle = None

    def path(self) -> str:
        return os.path.join(self.trace_dir, f"spans-{os.getpid()}.jsonl")

    def emit(self, record: dict) -> None:
        with self._lock:
            if self._handle is None:
                ensure_trace_dir(self.trace_dir)
                self._handle = open(self.path(), "a", encoding="utf-8")
            self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            handle, self._handle = self._handle, None
            if handle is not None:
                handle.close()


def ensure_trace_dir(trace_dir: str) -> None:
    """Create ``trace_dir`` and its versioned ``meta.json`` if absent.

    Racing writers (a parent and its pool workers) all write equivalent
    content, so the atomic replace is idempotent.  Besides the format
    version the meta carries best-effort attribution fields
    (``repro_version``, ``git``) so a saved trace is traceable to the
    code that produced it; readers key only on ``format``/``version``,
    which is why adding these fields needs no schema bump.
    """
    os.makedirs(trace_dir, exist_ok=True)
    meta_path = os.path.join(trace_dir, TRACE_META_NAME)
    if os.path.exists(meta_path):
        return
    from repro.obs.attribution import attribution

    payload = {"format": "repro-trace", "version": TRACE_SCHEMA_VERSION}
    payload.update(attribution())
    tmp_path = f"{meta_path}.tmp-{os.getpid()}"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
    os.replace(tmp_path, meta_path)


def validate_record(record: object) -> List[str]:
    """Schema errors for one trace record (empty list = valid).

    Used by the loader (invalid records are counted and skipped, never
    trusted) and by the CI observability smoke job, which asserts that a
    real campaign trace contains zero invalid records.
    """
    errors: List[str] = []
    if not isinstance(record, dict):
        return ["record is not an object"]
    if record.get("v") != TRACE_SCHEMA_VERSION:
        errors.append(f"unknown schema version {record.get('v')!r}")
    kind = record.get("kind")
    if kind not in _VALID_KINDS:
        errors.append(f"unknown kind {kind!r}")
    if not isinstance(record.get("name"), str) or not record.get("name"):
        errors.append("name must be a non-empty string")
    for field in ("id", "pid", "tid"):
        if not isinstance(record.get(field), int):
            errors.append(f"{field} must be an integer")
    parent = record.get("parent")
    if parent is not None and not isinstance(parent, int):
        errors.append("parent must be an integer or null")
    if not isinstance(record.get("wall"), (int, float)):
        errors.append("wall must be a number")
    if kind == "span" and not isinstance(record.get("dur"), (int, float)):
        errors.append("span dur must be a number")
    attrs = record.get("attrs", {})
    if not isinstance(attrs, dict):
        errors.append("attrs must be an object")
    else:
        for key, value in attrs.items():
            if not isinstance(key, str) or not isinstance(value, _ATTR_TYPES):
                errors.append(f"attr {key!r} is not a JSON primitive")
    return errors


class _SpanHandle:
    """Context manager for one span (returned by :meth:`Tracer.span`)."""

    __slots__ = (
        "tracer", "name", "attrs", "span_id", "parent_id",
        "wall", "started", "duration",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = next(_IDS)
        self.parent_id: Optional[int] = None
        self.wall = 0.0
        self.started = 0.0
        self.duration = 0.0

    def __enter__(self) -> "_SpanHandle":
        stack = self.tracer._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self.wall = time.time()
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.duration = time.perf_counter() - self.started
        stack = self.tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        METRICS.histogram(f"stage.{self.name}.seconds").observe(self.duration)
        if self.tracer._sinks:
            self.tracer._emit(
                {
                    "v": TRACE_SCHEMA_VERSION,
                    "kind": "span",
                    "name": self.name,
                    "id": self.span_id,
                    "parent": self.parent_id,
                    "pid": os.getpid(),
                    "tid": threading.get_ident(),
                    "wall": self.wall,
                    "dur": self.duration,
                    "attrs": self.attrs,
                }
            )


class Tracer:
    """Nestable spans and structured events over pluggable sinks.

    Span nesting is tracked per thread (the thread backend runs many units
    concurrently; each thread's spans nest independently).  Sinks are a
    snapshot-on-emit list, so attaching/detaching around a campaign run is
    safe while other threads trace.
    """

    def __init__(self) -> None:
        self._sinks: List[object] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def add_sink(self, sink: object) -> None:
        with self._lock:
            self._sinks = self._sinks + [sink]

    def remove_sink(self, sink: object) -> None:
        with self._lock:
            self._sinks = [s for s in self._sinks if s is not sink]

    def clear_sinks(self) -> None:
        """Detach every sink without closing them.

        For fork-started pool workers, which inherit the parent's sink
        list — including JSONL sinks whose already-open handles point at
        the *parent's* files.  The worker initializer clears the
        inherited list (the parent still owns those handles) before
        attaching its own per-process sinks.
        """
        with self._lock:
            self._sinks = []

    @property
    def active(self) -> bool:
        """Whether any sink is attached (spans always feed stage timers)."""
        return bool(self._sinks)

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _SpanHandle:
        """A context manager timing one named stage with ``attrs``."""
        return _SpanHandle(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Emit one point-in-time structured event (sinks only)."""
        if not self._sinks:
            return
        stack = self._stack()
        self._emit(
            {
                "v": TRACE_SCHEMA_VERSION,
                "kind": "event",
                "name": name,
                "id": next(_IDS),
                "parent": stack[-1] if stack else None,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "wall": time.time(),
                "attrs": attrs,
            }
        )

    # ------------------------------------------------------------------
    def _emit(self, record: dict) -> None:
        for sink in self._sinks:
            try:
                sink.emit(record)
            except Exception:
                # Passive contract: a broken sink must never fail analysis.
                self.remove_sink(sink)


#: The process-wide tracer every instrumented layer spans through.
TRACER = Tracer()
