"""The live campaign event stream: unit lifecycle, heartbeats, workers.

:mod:`repro.obs.trace` answers *where the time went* after a run;
this module answers *what is happening right now*.  The process-global
:class:`EventStream` (:data:`EVENTS`) is a versioned, append-only stream
of structured occurrences — a unit queued, started, heartbeating,
finished or failed; a cache hit or miss; a store lock waited on; a pool
worker coming up or going down — over pluggable sinks:

* :class:`RingBufferSink` — a bounded in-memory buffer (tests, live
  summaries);
* :class:`JsonlEventSink` — ``events-<pid>.jsonl`` under the campaign's
  ``--trace-dir``, beside the span files, one flushed JSON record per
  line;
* :class:`QueueSink` — the process backend's side channel: workers
  forward *low-rate streaming* events (lifecycle, heartbeat, worker
  up/down, straggler) onto a multiprocessing queue **while units run**,
  and the campaign parent ingests them live so progress rendering and
  straggler detection see worker units mid-flight, not just at
  end-of-unit delta time.  High-rate events (``cache.*``) stay local to
  the worker — its JSONL file and its counts — and reach the parent as
  an exactly-mergeable wire delta instead.

Counting follows the :mod:`repro.obs.metrics` discipline exactly: every
emitted event increments an integer per-name count, and count snapshots
are JSON-able wire dicts (version :data:`EVENTS_WIRE_VERSION`) whose
``merge``/``diff`` are associative and commutative over arbitrary,
*asymmetric* key sets — the parent of a process-backend campaign folds
one event-count delta per unit in any arrival order and always reaches
the serial totals for schedule-independent workloads.

The two ingestion paths are deliberately disjoint so nothing is counted
twice:

* :meth:`EventStream.ingest` (live queue records from another process)
  dispatches to subscriber sinks only — **no** count increment;
* :meth:`EventStream.merge` (a worker's end-of-unit count delta) adds
  counts only — **no** sink dispatch.

Observability stays passive: the stream never raises into analysis, a
broken sink is detached, and :attr:`EventStream.enabled` is the ablation
switch (``campaign --no-events``) CI holds classification parity
against.

Record schema (``v`` = :data:`EVENT_SCHEMA_VERSION`)::

    {"v": 1, "name": "unit.started", "seq": 7, "pid": 123, "tid": 456,
     "wall": 1754600000.5, "attrs": {"application": "...", "site": "..."}}

Like every persisted artifact in this repository the format is
versioned: readers skip records whose ``v`` they do not understand, and
any schema change bumps :data:`EVENT_SCHEMA_VERSION`.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "CACHE_HIT",
    "CACHE_MISS",
    "EVENTS",
    "EVENTS_WIRE_VERSION",
    "EVENT_SCHEMA_VERSION",
    "EventStream",
    "InFlightTable",
    "INFLIGHT",
    "JsonlEventSink",
    "LIFECYCLE_EVENTS",
    "QueueSink",
    "RingBufferSink",
    "STORE_LOCK_WAIT",
    "STREAMED_EVENTS",
    "UNIT_FAILED",
    "UNIT_FINISHED",
    "UNIT_HEARTBEAT",
    "UNIT_QUEUED",
    "UNIT_STARTED",
    "UNIT_STRAGGLER",
    "WORKER_DOWN",
    "WORKER_UP",
    "diff_event_wires",
    "event_count",
    "merge_event_wires",
    "start_heartbeat",
    "unit_lifecycle",
    "validate_event_record",
]

#: Version stamp of the per-name count wire dicts (snapshot/delta/merge).
EVENTS_WIRE_VERSION = 1

#: Version stamp of the JSONL event records.
EVENT_SCHEMA_VERSION = 1

# ----------------------------------------------------------------------
# The event taxonomy (documented in docs/observability.md)
# ----------------------------------------------------------------------
UNIT_QUEUED = "unit.queued"
UNIT_STARTED = "unit.started"
UNIT_HEARTBEAT = "unit.heartbeat"
UNIT_FINISHED = "unit.finished"
UNIT_FAILED = "unit.failed"
UNIT_STRAGGLER = "unit.straggler"
CACHE_HIT = "cache.hit"
CACHE_MISS = "cache.miss"
STORE_LOCK_WAIT = "store.lock_wait"
WORKER_UP = "worker.up"
WORKER_DOWN = "worker.down"

#: The schedule-independent unit-lifecycle subset: for a workload with no
#: shared cache these counts are identical for every backend and worker
#: count (the serial≡process parity CI gates).  Heartbeats, stragglers
#: and worker events are timing-/topology-dependent by nature and are
#: deliberately not part of the parity set.
LIFECYCLE_EVENTS: Tuple[str, ...] = (
    UNIT_QUEUED,
    UNIT_STARTED,
    UNIT_FINISHED,
    UNIT_FAILED,
)

#: Low-rate event names a process-backend worker forwards live over the
#: side queue.  ``cache.*`` / ``store.*`` events can fire hundreds of
#: times per unit; shipping each as a queue RPC would tax the very path
#: being observed, so they travel as end-of-unit count deltas instead.
STREAMED_EVENTS: frozenset = frozenset(
    {
        UNIT_QUEUED,
        UNIT_STARTED,
        UNIT_HEARTBEAT,
        UNIT_FINISHED,
        UNIT_FAILED,
        UNIT_STRAGGLER,
        WORKER_UP,
        WORKER_DOWN,
    }
)

#: Sequence numbers, unique within one process (``pid`` disambiguates
#: across processes).  ``itertools.count`` is atomic under the GIL.
_SEQ = itertools.count(1)

_ATTR_TYPES = (str, int, float, bool, type(None))


def validate_event_record(record: object) -> List[str]:
    """Schema errors for one event record (empty list = valid).

    Used by the loader (invalid records are counted and skipped, never
    trusted) and by the CI events-smoke job, which asserts that a real
    campaign's event log contains zero invalid records.
    """
    errors: List[str] = []
    if not isinstance(record, dict):
        return ["record is not an object"]
    if record.get("v") != EVENT_SCHEMA_VERSION:
        errors.append(f"unknown schema version {record.get('v')!r}")
    if not isinstance(record.get("name"), str) or not record.get("name"):
        errors.append("name must be a non-empty string")
    for field in ("seq", "pid", "tid"):
        if not isinstance(record.get(field), int):
            errors.append(f"{field} must be an integer")
    if not isinstance(record.get("wall"), (int, float)):
        errors.append("wall must be a number")
    attrs = record.get("attrs", {})
    if not isinstance(attrs, dict):
        errors.append("attrs must be an object")
    else:
        for key, value in attrs.items():
            if not isinstance(key, str) or not isinstance(value, _ATTR_TYPES):
                errors.append(f"attr {key!r} is not a JSON primitive")
    return errors


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class RingBufferSink:
    """A bounded in-memory buffer of the most recent records."""

    #: Remote (queue-ingested) records are dispatched to this sink.
    ingest_remote = True

    def __init__(self, capacity: int = 4096) -> None:
        self._lock = threading.Lock()
        self._records: deque = deque(maxlen=max(1, int(capacity)))

    def emit(self, record: dict) -> None:
        with self._lock:
            self._records.append(record)

    def records(self) -> List[dict]:
        with self._lock:
            return list(self._records)

    def close(self) -> None:  # pragma: no cover - symmetry with JsonlEventSink
        pass


class JsonlEventSink:
    """Appends records to ``<trace_dir>/events-<pid>.jsonl``, one per line.

    Same discipline as the span sink: lazy open on first emit, per-line
    flush (a killed worker must not lose its tail), writes serialized by
    a lock for the thread backend.  Remote records are *not* re-written
    here — the process that produced them already persisted them to its
    own ``events-<pid>.jsonl``.
    """

    ingest_remote = False

    def __init__(self, trace_dir: str) -> None:
        self.trace_dir = str(trace_dir)
        self._lock = threading.Lock()
        self._handle = None

    def path(self) -> str:
        return os.path.join(self.trace_dir, f"events-{os.getpid()}.jsonl")

    def emit(self, record: dict) -> None:
        with self._lock:
            if self._handle is None:
                from repro.obs.trace import ensure_trace_dir

                ensure_trace_dir(self.trace_dir)
                self._handle = open(self.path(), "a", encoding="utf-8")
            self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            handle, self._handle = self._handle, None
            if handle is not None:
                handle.close()


class QueueSink:
    """Forwards streaming-class records onto a multiprocessing queue.

    The worker half of the process backend's live side channel; the
    parent's drainer thread calls :meth:`EventStream.ingest` on every
    record it pulls off.  Only :data:`STREAMED_EVENTS` names are
    forwarded (see the module doc for why).
    """

    ingest_remote = False

    def __init__(self, queue, names: Optional[Iterable[str]] = None) -> None:
        self._queue = queue
        self._names = frozenset(names) if names is not None else STREAMED_EVENTS

    def emit(self, record: dict) -> None:
        if record.get("name") in self._names:
            self._queue.put(record)

    def close(self) -> None:  # pragma: no cover - queue owned by the parent
        pass


# ----------------------------------------------------------------------
# Pure wire-dict combinators (no stream required)
# ----------------------------------------------------------------------
def merge_event_wires(*wires: dict) -> dict:
    """Pure merge of event-count wire dicts: per-name integer addition.

    Commutative and associative by construction, over arbitrary
    (asymmetric) key sets — the property ``tests/obs/test_events.py``
    drives with hypothesis.  Wire carrying an unknown version is skipped
    rather than trusted.
    """
    combined: Dict[str, int] = {}
    for wire in wires:
        if not isinstance(wire, dict) or wire.get("v") != EVENTS_WIRE_VERSION:
            continue
        for name, count in (wire.get("events") or {}).items():
            if not isinstance(name, str):
                continue
            try:
                combined[name] = combined.get(name, 0) + int(count)
            except (TypeError, ValueError):
                continue
    return {
        "v": EVENTS_WIRE_VERSION,
        "events": {name: combined[name] for name in sorted(combined)},
    }


def diff_event_wires(mark: dict, current: dict) -> dict:
    """``current - mark`` per name, over the **union** of both key sets.

    Names present only in ``current`` count from zero; names present
    only in ``mark`` are reported (at their negation, normally zero) —
    a delta must never silently drop a key it was marked against, the
    same invariant :func:`repro.obs.metrics.diff_snapshots` keeps.
    """
    mark_events = (mark or {}).get("events") or {}
    current_events = (current or {}).get("events") or {}
    names = sorted(set(mark_events) | set(current_events))
    return {
        "v": EVENTS_WIRE_VERSION,
        "events": {
            name: int(current_events.get(name, 0)) - int(mark_events.get(name, 0))
            for name in names
        },
    }


def event_count(wire: dict, name: str) -> int:
    """Convenience: one name's count out of a wire dict (0 when absent)."""
    try:
        return int(((wire or {}).get("events") or {}).get(name, 0))
    except (TypeError, ValueError):
        return 0


# ----------------------------------------------------------------------
# The stream
# ----------------------------------------------------------------------
class EventStream:
    """Append-only structured events over pluggable sinks, with counts.

    Thread-safe; sinks are a snapshot-on-emit list so attaching or
    detaching around a campaign run is safe while other threads emit.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sinks: List[object] = []
        self._counts: Dict[str, int] = {}
        #: The ablation switch (``campaign --no-events``): when false,
        #: :meth:`emit` is a no-op — no counts, no records, no sinks.
        self.enabled = True

    # ------------------------------------------------------------------
    def add_sink(self, sink: object) -> None:
        with self._lock:
            self._sinks = self._sinks + [sink]

    def remove_sink(self, sink: object) -> None:
        with self._lock:
            self._sinks = [s for s in self._sinks if s is not sink]

    def clear_sinks(self) -> None:
        """Detach every sink without closing them.

        For fork-started pool workers: the child inherits the parent's
        sink list, including a :class:`JsonlEventSink` whose open handle
        points at the *parent's* ``events-<pid>.jsonl`` — emitting
        through it would double every worker record into the parent's
        file.  The worker initializer clears the inherited list before
        attaching its own sinks; the parent still owns those handles.
        """
        with self._lock:
            self._sinks = []

    @property
    def active(self) -> bool:
        """Whether any sink is attached (counts accrue regardless)."""
        return bool(self._sinks)

    # ------------------------------------------------------------------
    def emit(self, name: str, **attrs) -> None:
        """Record one event: count it and dispatch to every sink."""
        if not self.enabled:
            return
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + 1
        if not self._sinks:
            return
        self._dispatch(
            {
                "v": EVENT_SCHEMA_VERSION,
                "name": name,
                "seq": next(_SEQ),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "wall": time.time(),
                "attrs": attrs,
            },
            remote=False,
        )

    def ingest(self, record: dict) -> None:
        """Dispatch a record produced by *another process* to subscribers.

        Deliberately does **not** count: the producing process already
        counted the event, and its counts reach this process through
        :meth:`merge` — counting here too would double every streamed
        event.  Sinks that persist locally (``ingest_remote = False``)
        are skipped; the producer's own JSONL file is the durable copy.
        """
        if not self.enabled or not isinstance(record, dict):
            return
        if validate_event_record(record):
            return
        self._dispatch(record, remote=True)

    def _dispatch(self, record: dict, remote: bool) -> None:
        for sink in self._sinks:
            if remote and not getattr(sink, "ingest_remote", True):
                continue
            try:
                sink.emit(record)
            except Exception:
                # Passive contract: a broken sink must never fail analysis.
                self.remove_sink(sink)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The per-name counts as a wire dict (see module doc)."""
        with self._lock:
            return {
                "v": EVENTS_WIRE_VERSION,
                "events": {name: self._counts[name] for name in sorted(self._counts)},
            }

    def delta(self, mark: dict) -> dict:
        """The wire-form count change since ``mark`` (an earlier snapshot)."""
        return diff_event_wires(mark, self.snapshot())

    def merge(self, wire: dict) -> int:
        """Fold another process's count delta in; returns names merged."""
        if not isinstance(wire, dict) or wire.get("v") != EVENTS_WIRE_VERSION:
            return 0
        entries = wire.get("events")
        if not isinstance(entries, dict):
            return 0
        merged = 0
        with self._lock:
            for name, count in entries.items():
                if not isinstance(name, str):
                    continue
                try:
                    self._counts[name] = self._counts.get(name, 0) + int(count)
                except (TypeError, ValueError):
                    continue
                merged += 1
        return merged


# ----------------------------------------------------------------------
# In-flight units and heartbeats
# ----------------------------------------------------------------------
class InFlightTable:
    """The units currently being analyzed *in this process*.

    :func:`unit_lifecycle` registers every unit for its duration; the
    heartbeat thread walks the table to emit ``unit.heartbeat`` events
    for long-running units while they run.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, Tuple[float, Dict[str, object]]] = {}

    def begin(self, key: str, attrs: Dict[str, object]) -> None:
        with self._lock:
            self._entries[key] = (time.time(), dict(attrs))

    def end(self, key: str) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def snapshot(self) -> List[Tuple[str, float, Dict[str, object]]]:
        with self._lock:
            return [
                (key, started, dict(attrs))
                for key, (started, attrs) in self._entries.items()
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The process-wide in-flight table (one per campaign parent or worker).
INFLIGHT = InFlightTable()


def start_heartbeat(
    interval: float,
    stream: Optional[EventStream] = None,
    table: Optional[InFlightTable] = None,
):
    """Start the daemon heartbeat thread; returns a ``stop()`` callable.

    Every ``interval`` seconds the thread emits one ``unit.heartbeat``
    per in-flight unit, carrying the unit's identity and its elapsed
    seconds so far — the liveness signal the watchdog, the progress line
    and (eventually) a fleet coordinator's re-dispatch consume.
    """
    stream = EVENTS if stream is None else stream
    table = INFLIGHT if table is None else table
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(interval):
            now = time.time()
            for _key, started, attrs in table.snapshot():
                stream.emit(
                    UNIT_HEARTBEAT, elapsed=round(now - started, 6), **attrs
                )

    thread = threading.Thread(target=beat, name="repro-heartbeat", daemon=True)
    thread.start()

    def stopper() -> None:
        stop.set()
        thread.join(timeout=max(1.0, 4 * interval))

    return stopper


@contextmanager
def unit_lifecycle(application: str, site: str, backend: str):
    """Emit the started/failed/finished lifecycle around one unit run.

    Registers the unit in :data:`INFLIGHT` for its duration (feeding the
    heartbeat thread), and yields a mutable attrs dict the caller may
    extend (e.g. with the resulting classification) before the finished
    event is emitted.
    """
    attrs = {"application": application, "site": site, "backend": backend}
    key = f"{application}::{site}"
    EVENTS.emit(UNIT_STARTED, **attrs)
    INFLIGHT.begin(key, attrs)
    started = time.perf_counter()
    extra: Dict[str, object] = {}
    try:
        yield extra
    except BaseException as exc:
        INFLIGHT.end(key)
        EVENTS.emit(
            UNIT_FAILED,
            seconds=round(time.perf_counter() - started, 6),
            error=type(exc).__name__,
            **attrs,
        )
        raise
    INFLIGHT.end(key)
    EVENTS.emit(
        UNIT_FINISHED,
        seconds=round(time.perf_counter() - started, 6),
        **attrs,
        **extra,
    )


#: The process-wide stream every instrumented layer emits into.
EVENTS = EventStream()
