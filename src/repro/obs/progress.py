"""The live ``campaign --progress`` line, driven by the event stream.

A campaign with progress enabled renders one continuously updated stderr
line::

    campaign 17/40 done · 4 in-flight · 1 straggler · 12.3s · ETA ~16s

The renderer is an event-stream sink: ``unit.queued`` fixes the total,
``unit.started``/``finished``/``failed`` move units between in-flight
and done (worker records ingested live through the process backend's
side queue included), and ``unit.straggler`` bumps the straggler count.
ETA is the naive remaining × mean-completed-duration estimate — honest
enough for a progress line, and deliberately simple because unit
runtimes are too irregular for anything fancier to earn its keep.

On a TTY the line redraws in place (``\\r``, throttled); on a plain pipe
it prints one full line per completed unit so CI logs stay readable.
Rendering is passive: it writes to stderr only, never touches stdout
(where ``--json`` output lives), and a rendering error detaches the sink
rather than failing the campaign.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Optional

from repro.obs import events as ev

__all__ = ["ProgressRenderer"]

_MIN_REDRAW_SECONDS = 0.1


class ProgressRenderer:
    """Renders the live progress line from lifecycle events."""

    ingest_remote = True

    def __init__(self, out=None, is_tty: Optional[bool] = None) -> None:
        self._out = sys.stderr if out is None else out
        self._is_tty = (
            bool(getattr(self._out, "isatty", lambda: False)())
            if is_tty is None
            else is_tty
        )
        self._lock = threading.Lock()
        self._started_at = time.time()
        self._queued = 0
        self._inflight = 0
        self._done = 0
        self._failed = 0
        self._stragglers = 0
        self._done_seconds = 0.0
        self._last_draw = 0.0
        self._line_open = False

    # ------------------------------------------------------------------
    def emit(self, record: dict) -> None:
        name = record.get("name")
        attrs = record.get("attrs") or {}
        redraw = False
        with self._lock:
            if name == ev.UNIT_QUEUED:
                self._queued += 1
            elif name == ev.UNIT_STARTED:
                self._inflight += 1
                redraw = True
            elif name == ev.UNIT_FINISHED:
                self._inflight = max(0, self._inflight - 1)
                self._done += 1
                try:
                    self._done_seconds += float(attrs.get("seconds", 0.0))
                except (TypeError, ValueError):
                    pass
                redraw = True
            elif name == ev.UNIT_FAILED:
                self._inflight = max(0, self._inflight - 1)
                self._done += 1
                self._failed += 1
                redraw = True
            elif name == ev.UNIT_STRAGGLER:
                self._stragglers += 1
                redraw = True
        if redraw:
            self._render(final=False, completion=name != ev.UNIT_STARTED)

    # ------------------------------------------------------------------
    def _format(self) -> str:
        elapsed = time.time() - self._started_at
        total = max(self._queued, self._done + self._inflight)
        parts = [
            f"campaign {self._done}/{total} done",
            f"{self._inflight} in-flight",
        ]
        if self._failed:
            parts.append(f"{self._failed} failed")
        if self._stragglers:
            noun = "straggler" if self._stragglers == 1 else "stragglers"
            parts.append(f"{self._stragglers} {noun}")
        parts.append(f"{elapsed:.1f}s")
        remaining = total - self._done
        if self._done and remaining > 0:
            eta = remaining * (self._done_seconds / self._done)
            parts.append(f"ETA ~{eta:.0f}s")
        return " · ".join(parts)

    def _render(self, final: bool, completion: bool = True) -> None:
        now = time.time()
        with self._lock:
            if not final:
                if self._is_tty:
                    if now - self._last_draw < _MIN_REDRAW_SECONDS:
                        return
                elif not completion:
                    # Non-TTY: one line per completion only, or the log
                    # would fill with start notices.
                    return
            self._last_draw = now
            line = self._format()
            try:
                if self._is_tty:
                    self._out.write("\r\x1b[2K" + line)
                    if final:
                        self._out.write("\n")
                    self._line_open = not final
                else:
                    self._out.write(line + "\n")
                self._out.flush()
            except Exception:
                pass

    def close(self) -> None:
        """Print the final state and terminate an in-place line."""
        self._render(final=True)
