"""The campaign-wide metrics registry: counters, gauges, duration histograms.

Every layer of the pipeline records into one process-global
:class:`MetricsRegistry` (:data:`METRICS`): the solver's complete-backend
effort (behind the :class:`~repro.smt.solver.SolverTelemetry` shim), the
store layer's load/save/lock activity, the scheduler's per-unit dispatch
and the stage timers the tracer derives from spans.  The registry is the
*aggregation* half of the observability subsystem; the event half (spans,
structured events, JSONL sinks) lives in :mod:`repro.obs.trace`.

Design constraints, in decreasing order of importance:

* **Observability is passive.**  Nothing in this module influences
  analysis decisions; recording is cheap (one lock acquire + dict update)
  and never raises into the instrumented code path.
* **Snapshots merge losslessly and deterministically.**  A snapshot (and
  a snapshot *delta*) is a JSON-able wire dict.  Merging is commutative
  and associative — counters and histogram buckets are integers and add,
  gauges combine by ``max`` — so the parent of a process-backend campaign
  can fold worker deltas in *any* arrival order and always reach the same
  totals (the property :mod:`tests.obs.test_metrics` checks with
  hypothesis).  Durations are quantized to integer **nanoseconds** before
  they enter the registry precisely so that merging stays exact: float
  addition is not associative, integer addition is.
* **Histograms have fixed log-scale buckets** (powers of two from ~1µs to
  ~2min, :data:`BUCKET_BOUNDS`), identical for every histogram and every
  process, so bucket counts from different workers add index-by-index.

Wire format (``version`` :data:`METRICS_WIRE_VERSION`)::

    {"v": 1, "metrics": {
        "solver.queries":        {"k": "c", "value": 42},
        "store.entries":         {"k": "g", "value": 17},
        "stage.solve.seconds":   {"k": "h", "count": 9, "sum": 12345,
                                  "buckets": {"3": 2, "11": 7}},
    }}

Histogram ``sum`` and bucket keys are integer nanoseconds / bucket
indices; ``buckets`` is sparse (absent index = zero).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS",
    "METRICS_WIRE_VERSION",
    "MetricsRegistry",
    "merge_snapshots",
    "seconds_to_nanos",
]

#: Version stamp carried by every metrics wire dict; bump on any change to
#: the snapshot schema (mismatched wire is dropped, never misread).
METRICS_WIRE_VERSION = 1

#: Fixed log-scale histogram bucket upper bounds, in nanoseconds: powers of
#: two from 2^10 ns (~1µs) to 2^37 ns (~137s).  A value lands in the first
#: bucket whose bound it does not exceed; larger values land in the final
#: overflow bucket (index ``len(BUCKET_BOUNDS)``).
BUCKET_BOUNDS: Tuple[int, ...] = tuple(1 << exp for exp in range(10, 38))


def seconds_to_nanos(seconds: float) -> int:
    """Quantize a duration to the integer nanoseconds the registry stores."""
    return max(0, int(seconds * 1e9))


def bucket_index(nanos: int) -> int:
    """Index of the fixed bucket a nanosecond duration falls into."""
    lo, hi = 0, len(BUCKET_BOUNDS)
    while lo < hi:
        mid = (lo + hi) // 2
        if nanos <= BUCKET_BOUNDS[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


class Counter:
    """A monotonically increasing integer counter."""

    kind = "c"
    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += int(amount)

    def wire(self) -> dict:
        return {"k": "c", "value": self.value}


class Gauge:
    """A last-set integer level; merges across processes by ``max``."""

    kind = "g"
    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0

    def set(self, value: int) -> None:
        with self._lock:
            self.value = int(value)

    def wire(self) -> dict:
        return {"k": "g", "value": self.value}


class Histogram:
    """A duration histogram over the fixed log-scale :data:`BUCKET_BOUNDS`.

    Stores integer nanoseconds (count, sum, sparse bucket counts) so that
    snapshots delta and merge exactly.
    """

    kind = "h"
    __slots__ = ("_lock", "count", "sum_nanos", "buckets")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.count = 0
        self.sum_nanos = 0
        self.buckets: Dict[int, int] = {}

    def observe(self, seconds: float) -> None:
        nanos = seconds_to_nanos(seconds)
        index = bucket_index(nanos)
        with self._lock:
            self.count += 1
            self.sum_nanos += nanos
            self.buckets[index] = self.buckets.get(index, 0) + 1

    def sum_seconds(self) -> float:
        return self.sum_nanos / 1e9

    def quantile_nanos(self, q: float) -> Optional[int]:
        """An upper bound on the ``q``-quantile duration, in nanoseconds.

        Resolves to the fixed upper bound of the bucket containing the
        quantile rank — conservative (never under-reports), which is the
        right bias for deadline computation: the watchdog must not flag a
        unit the distribution says is still plausible.  ``None`` when the
        histogram is empty.
        """
        with self._lock:
            if self.count <= 0:
                return None
            rank = max(1, int(q * self.count + 0.5))
            seen = 0
            for index in sorted(self.buckets):
                seen += self.buckets[index]
                if seen >= rank:
                    if index < len(BUCKET_BOUNDS):
                        return BUCKET_BOUNDS[index]
                    # Overflow bucket: no fixed bound; fall back to the sum
                    # (an upper bound on any single observation).
                    return self.sum_nanos
            return BUCKET_BOUNDS[-1]

    def wire(self) -> dict:
        return {
            "k": "h",
            "count": self.count,
            "sum": self.sum_nanos,
            "buckets": {str(index): n for index, n in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Thread-safe named-metric registry with snapshot/delta/merge.

    Metric instruments are created on first use and never removed; a name
    keeps its kind for the registry's lifetime (asking for an existing
    name with a different kind raises — mixed-kind names would make wire
    merges ambiguous).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def _get(self, name: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(self._lock)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The registry's current state as a wire dict (see module doc)."""
        with self._lock:
            return {
                "v": METRICS_WIRE_VERSION,
                "metrics": {
                    name: metric.wire()
                    for name, metric in sorted(self._metrics.items())
                },
            }

    def delta(self, mark: dict) -> dict:
        """The wire-form change since ``mark`` (an earlier :meth:`snapshot`).

        Counters and histograms subtract; gauges are levels, not flows, so
        a delta carries the current value.  Metrics absent from the mark
        appear whole; metrics absent from the current state but present in
        the mark are reported at zero (a knob disabling a counter mid-way
        must skew nothing — the invariant the campaign's telemetry delta
        shares).
        """
        return diff_snapshots(mark, self.snapshot())

    def merge(self, wire: dict) -> int:
        """Fold a wire dict (another process's delta) into this registry.

        Counters and histograms add; gauges take ``max``.  Returns the
        number of metrics merged; wire carrying an unknown version or a
        malformed entry is skipped rather than trusted.
        """
        if not isinstance(wire, dict) or wire.get("v") != METRICS_WIRE_VERSION:
            return 0
        entries = wire.get("metrics")
        if not isinstance(entries, dict):
            return 0
        merged = 0
        for name, entry in entries.items():
            if not isinstance(name, str) or not isinstance(entry, dict):
                continue
            kind = entry.get("k")
            try:
                if kind == "c":
                    self.counter(name).inc(int(entry.get("value", 0)))
                elif kind == "g":
                    gauge = self.gauge(name)
                    with self._lock:
                        gauge.value = max(gauge.value, int(entry.get("value", 0)))
                elif kind == "h":
                    histogram = self.histogram(name)
                    buckets = entry.get("buckets") or {}
                    with self._lock:
                        histogram.count += int(entry.get("count", 0))
                        histogram.sum_nanos += int(entry.get("sum", 0))
                        for index, count in buckets.items():
                            index = int(index)
                            histogram.buckets[index] = (
                                histogram.buckets.get(index, 0) + int(count)
                            )
                else:
                    continue
            except (TypeError, ValueError):
                continue
            merged += 1
        return merged


# ----------------------------------------------------------------------
# Pure wire-dict combinators (no registry required)
# ----------------------------------------------------------------------
def _empty_like(entry: dict) -> dict:
    if entry.get("k") == "h":
        return {"k": "h", "count": 0, "sum": 0, "buckets": {}}
    return {"k": entry.get("k"), "value": 0}


def _combine(kind: str, a: dict, b: dict, sign: int = 1) -> dict:
    if kind == "c":
        return {"k": "c", "value": int(a.get("value", 0)) + sign * int(b.get("value", 0))}
    if kind == "g":
        if sign < 0:
            # Gauges are levels: a "delta" is simply the newer level.
            return {"k": "g", "value": int(a.get("value", 0))}
        return {"k": "g", "value": max(int(a.get("value", 0)), int(b.get("value", 0)))}
    buckets: Dict[str, int] = {
        str(k): int(v) for k, v in (a.get("buckets") or {}).items()
    }
    for key, value in (b.get("buckets") or {}).items():
        key = str(key)
        buckets[key] = buckets.get(key, 0) + sign * int(value)
    return {
        "k": "h",
        "count": int(a.get("count", 0)) + sign * int(b.get("count", 0)),
        "sum": int(a.get("sum", 0)) + sign * int(b.get("sum", 0)),
        "buckets": {k: v for k, v in sorted(buckets.items()) if v},
    }


def merge_snapshots(*wires: dict) -> dict:
    """Pure merge of wire dicts: counters/histograms add, gauges ``max``.

    Commutative and associative by construction (all stored quantities are
    integers), so any merge order over any partition of the same deltas
    yields an identical result.
    """
    combined: Dict[str, dict] = {}
    for wire in wires:
        if not isinstance(wire, dict) or wire.get("v") != METRICS_WIRE_VERSION:
            continue
        for name, entry in (wire.get("metrics") or {}).items():
            existing = combined.get(name)
            if existing is None:
                combined[name] = _combine(entry.get("k"), _empty_like(entry), entry)
            elif existing.get("k") == entry.get("k"):
                combined[name] = _combine(entry.get("k"), existing, entry)
    return {
        "v": METRICS_WIRE_VERSION,
        "metrics": {name: combined[name] for name in sorted(combined)},
    }


def diff_snapshots(mark: dict, current: dict) -> dict:
    """``current - mark`` as a wire dict, tolerant of asymmetric key sets.

    Keys present only in ``current`` appear whole; keys present only in
    ``mark`` appear zeroed (never silently dropped); gauges carry the
    current level.
    """
    mark_metrics = (mark or {}).get("metrics") or {}
    current_metrics = (current or {}).get("metrics") or {}
    names = sorted(set(mark_metrics) | set(current_metrics))
    out: Dict[str, dict] = {}
    for name in names:
        now = current_metrics.get(name)
        before = mark_metrics.get(name)
        if now is None:
            out[name] = _empty_like(before)
        elif before is None or before.get("k") != now.get("k"):
            out[name] = _combine(now.get("k"), now, _empty_like(now), sign=1)
        else:
            out[name] = _combine(now.get("k"), now, before, sign=-1)
    return {"v": METRICS_WIRE_VERSION, "metrics": out}


def counter_value(wire: dict, name: str) -> int:
    """Convenience: a counter's value out of a wire dict (0 when absent)."""
    entry = ((wire or {}).get("metrics") or {}).get(name) or {}
    try:
        return int(entry.get("value", 0))
    except (TypeError, ValueError):
        return 0


def histogram_stats(wire: dict, name: str) -> Tuple[int, float]:
    """Convenience: a histogram's ``(count, sum_seconds)`` out of a wire dict."""
    entry = ((wire or {}).get("metrics") or {}).get(name) or {}
    try:
        return int(entry.get("count", 0)), int(entry.get("sum", 0)) / 1e9
    except (TypeError, ValueError):
        return 0, 0.0


#: The process-wide registry every instrumented layer records into.
METRICS = MetricsRegistry()
