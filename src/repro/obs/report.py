"""Trace-directory loading and reporting — the ``repro trace`` engine.

Follows the repo's generate-data → render-report idiom: a campaign run
with ``--trace-dir`` is the data-generation step, and this module is the
separately re-runnable report step.  It loads every ``spans-*.jsonl``
file under a trace directory (validating the schema version of the
directory and of every record), and renders:

* a **per-stage summary** — count, total/mean/max seconds per span name;
* a **per-unit rollup with a straggler top-N** — ``unit`` spans sorted by
  duration, each with its per-stage child breakdown (the scheduling-
  visibility view: unit runtimes are highly irregular, and the stragglers
  are what a fleet scheduler will need to re-dispatch);
* a **Chrome trace-event export** — the ``chrome://tracing`` /
  Perfetto-compatible JSON array, wall-clock aligned across processes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.events import validate_event_record
from repro.obs.trace import TRACE_META_NAME, TRACE_SCHEMA_VERSION, validate_record

__all__ = [
    "EventData",
    "EventSummary",
    "StageSummary",
    "TraceData",
    "UnitSummary",
    "chrome_trace_events",
    "event_summaries",
    "load_events_dir",
    "load_trace_dir",
    "stage_summaries",
    "unit_summaries",
]


@dataclass
class TraceData:
    """Everything loaded from one trace directory."""

    trace_dir: str
    records: List[dict] = field(default_factory=list)
    files: int = 0
    #: Records (or whole lines) that failed schema validation, skipped.
    invalid_records: int = 0
    error: Optional[str] = None

    @property
    def spans(self) -> List[dict]:
        return [r for r in self.records if r.get("kind") == "span"]

    @property
    def events(self) -> List[dict]:
        return [r for r in self.records if r.get("kind") == "event"]


@dataclass
class StageSummary:
    """Aggregate timing of one span name across the trace."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0
    #: Summed ``propagations`` span attribute — SAT-core work attributed
    #: to this stage, so a report can rank stages by solver effort, not
    #: just wall time (solve spans carry it; other stages stay at 0).
    propagations: int = 0

    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "total_seconds": round(self.total_seconds, 6),
            "mean_seconds": round(self.mean_seconds(), 6),
            "max_seconds": round(self.max_seconds, 6),
            "propagations": self.propagations,
        }


@dataclass
class UnitSummary:
    """One ``unit`` span (⟨application, site⟩ analysis) with its stages."""

    application: str
    site: str
    backend: str
    duration_seconds: float
    #: Direct child span totals by name (concolic, enforce, ...).
    stages: Dict[str, float] = field(default_factory=dict)

    def stage_seconds(self) -> float:
        return sum(self.stages.values())

    def coverage(self) -> float:
        """Fraction of the unit's wall time its direct stage spans explain."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.stage_seconds() / self.duration_seconds

    def as_dict(self) -> dict:
        return {
            "application": self.application,
            "site": self.site,
            "backend": self.backend,
            "duration_seconds": round(self.duration_seconds, 6),
            "stage_seconds": round(self.stage_seconds(), 6),
            "coverage": round(self.coverage(), 4),
            "stages": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.stages.items())
            },
        }


@dataclass
class EventData:
    """Everything loaded from a trace directory's event logs."""

    trace_dir: str
    records: List[dict] = field(default_factory=list)
    files: int = 0
    invalid_records: int = 0
    error: Optional[str] = None


@dataclass
class EventSummary:
    """Aggregate of one event name across the log."""

    name: str
    count: int = 0
    first_wall: float = 0.0
    last_wall: float = 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "span_seconds": round(max(0.0, self.last_wall - self.first_wall), 6),
        }


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def _check_meta(trace_dir: str) -> Optional[str]:
    """The meta.json validation shared by the span and event loaders."""
    meta_path = os.path.join(trace_dir, TRACE_META_NAME)
    try:
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return f"no readable {TRACE_META_NAME} under {trace_dir!r}"
    if not isinstance(meta, dict) or meta.get("version") != TRACE_SCHEMA_VERSION:
        return (
            f"unsupported trace format version "
            f"{meta.get('version') if isinstance(meta, dict) else meta!r} "
            f"(this reader understands {TRACE_SCHEMA_VERSION})"
        )
    return None


def load_trace_dir(trace_dir: str) -> TraceData:
    """Load and validate every trace record under ``trace_dir``.

    A missing directory, unreadable/mismatched ``meta.json`` or unknown
    format version yields an empty :class:`TraceData` with ``error`` set;
    individually malformed lines/records are counted in
    ``invalid_records`` and skipped — one bad line loses itself, never
    the trace.
    """
    data = TraceData(trace_dir=str(trace_dir))
    data.error = _check_meta(trace_dir)
    if data.error:
        return data

    try:
        names = sorted(os.listdir(trace_dir))
    except OSError:
        data.error = f"cannot list {trace_dir!r}"
        return data
    for name in names:
        if not (name.startswith("spans-") and name.endswith(".jsonl")):
            continue
        data.files += 1
        try:
            with open(
                os.path.join(trace_dir, name), "r", encoding="utf-8"
            ) as handle:
                lines = handle.readlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                data.invalid_records += 1
                continue
            if validate_record(record):
                data.invalid_records += 1
                continue
            data.records.append(record)
    # One deterministic order whatever file each process wrote to.
    data.records.sort(key=lambda r: (r.get("wall", 0.0), r.get("pid", 0), r.get("id", 0)))
    return data


def load_events_dir(trace_dir: str) -> EventData:
    """Load and validate every event record under ``trace_dir``.

    The event half of :func:`load_trace_dir`, over the ``events-*.jsonl``
    files a campaign's event stream writes beside the spans.  Same error
    discipline: directory-level problems set ``error``; individually
    malformed lines are counted and skipped.
    """
    data = EventData(trace_dir=str(trace_dir))
    data.error = _check_meta(trace_dir)
    if data.error:
        return data

    try:
        names = sorted(os.listdir(trace_dir))
    except OSError:
        data.error = f"cannot list {trace_dir!r}"
        return data
    for name in names:
        if not (name.startswith("events-") and name.endswith(".jsonl")):
            continue
        data.files += 1
        try:
            with open(
                os.path.join(trace_dir, name), "r", encoding="utf-8"
            ) as handle:
                lines = handle.readlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                data.invalid_records += 1
                continue
            if validate_event_record(record):
                data.invalid_records += 1
                continue
            data.records.append(record)
    data.records.sort(
        key=lambda r: (r.get("wall", 0.0), r.get("pid", 0), r.get("seq", 0))
    )
    return data


def event_summaries(data: EventData) -> List[EventSummary]:
    """Per-event-name aggregates, sorted by descending count."""
    by_name: Dict[str, EventSummary] = {}
    for record in data.records:
        name = record["name"]
        wall = float(record.get("wall", 0.0))
        summary = by_name.get(name)
        if summary is None:
            summary = by_name[name] = EventSummary(
                name=name, first_wall=wall, last_wall=wall
            )
        summary.count += 1
        summary.first_wall = min(summary.first_wall, wall)
        summary.last_wall = max(summary.last_wall, wall)
    return sorted(by_name.values(), key=lambda s: (-s.count, s.name))


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def stage_summaries(data: TraceData) -> List[StageSummary]:
    """Per-span-name aggregates, sorted by descending total time."""
    by_name: Dict[str, StageSummary] = {}
    for span in data.spans:
        summary = by_name.get(span["name"])
        if summary is None:
            summary = by_name[span["name"]] = StageSummary(name=span["name"])
        duration = float(span.get("dur", 0.0))
        summary.count += 1
        summary.total_seconds += duration
        summary.max_seconds = max(summary.max_seconds, duration)
        propagations = span.get("attrs", {}).get("propagations")
        if isinstance(propagations, int):
            summary.propagations += propagations
    return sorted(
        by_name.values(), key=lambda s: (-s.total_seconds, s.name)
    )


def unit_summaries(data: TraceData) -> List[UnitSummary]:
    """Per-unit rollups, slowest first (the straggler ordering).

    A unit's stage breakdown sums the durations of its *direct* child
    spans (children of children — a solve inside an enforce — are already
    inside their parent's time and must not be double-counted).
    """
    spans = data.spans
    units: Dict[Tuple[int, int], UnitSummary] = {}
    for span in spans:
        if span["name"] != "unit":
            continue
        attrs = span.get("attrs", {})
        units[(span["pid"], span["id"])] = UnitSummary(
            application=str(attrs.get("application", "?")),
            site=str(attrs.get("site", "?")),
            backend=str(attrs.get("backend", "?")),
            duration_seconds=float(span.get("dur", 0.0)),
        )
    for span in spans:
        parent = span.get("parent")
        if parent is None:
            continue
        unit = units.get((span["pid"], parent))
        if unit is None:
            continue
        name = span["name"]
        unit.stages[name] = unit.stages.get(name, 0.0) + float(span.get("dur", 0.0))
    return sorted(
        units.values(),
        key=lambda u: (-u.duration_seconds, u.application, u.site),
    )


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def chrome_trace_events(data: TraceData) -> List[dict]:
    """The trace as ``chrome://tracing`` complete events (``"ph": "X"``).

    Timestamps are microseconds relative to the earliest record's wall
    clock, so spans from the campaign parent and its pool workers line up
    on one timeline; events become instant (``"ph": "i"``) records.
    """
    if not data.records:
        return []
    base = min(float(r.get("wall", 0.0)) for r in data.records)
    out: List[dict] = []
    for record in data.records:
        common = {
            "name": record["name"],
            "pid": record["pid"],
            "tid": record["tid"],
            "ts": round((float(record["wall"]) - base) * 1e6, 3),
            "cat": "repro",
            "args": record.get("attrs", {}),
        }
        if record["kind"] == "span":
            out.append(
                {**common, "ph": "X", "dur": round(float(record["dur"]) * 1e6, 3)}
            )
        else:
            out.append({**common, "ph": "i", "s": "t"})
    return out
