"""The campaign-side straggler watchdog.

Unit runtimes in an overflow-discovery campaign are highly irregular —
a cache-hit unit finishes in ~1ms while a hard CDCL unit runs for
seconds — so a fleet scheduler cannot use a fixed timeout.  The
:class:`StragglerWatchdog` instead builds its deadline from the run's
*own* distribution: the ``stage.unit.seconds`` histogram already
maintained by the tracer gives a conservative quantile bound, and any
in-flight unit exceeding ``multiplier ×`` that bound (but never less
than ``min_seconds``) is flagged **once** as a straggler:

* a ``unit.straggler`` event on the stream (with elapsed and deadline);
* the ``campaign.stragglers`` counter;
* one warning line on stderr.

This is the *detection* half of the ROADMAP's coordinator/worker fleet
item — re-dispatch will consume the same events.  Detection is passive:
the flagged unit keeps running and its result is untouched (the
acceptance test injects a deliberately slow unit and checks both that it
is flagged and that its classification is identical to an unwatched
run).  Until ``min_samples`` units have completed the watchdog has no
distribution to trust and flags nothing.

The watchdog tracks in-flight units as an event-stream sink (consuming
``unit.started`` / ``unit.finished`` / ``unit.failed``, including
records ingested live from process-backend workers), and a daemon ticker
thread evaluates deadlines between events.  Every collaborator —
metrics, stream, clock, warn writer — is injectable so the deterministic
test drives :meth:`check` directly with a fake clock and synthetic
histogram.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.obs import events as ev
from repro.obs.metrics import METRICS

__all__ = ["StragglerWatchdog"]


class StragglerWatchdog:
    """Flags in-flight units that exceed a quantile-derived deadline."""

    def __init__(
        self,
        quantile: float = 0.95,
        multiplier: float = 4.0,
        min_seconds: float = 1.0,
        min_samples: int = 5,
        interval: float = 0.25,
        metrics=None,
        stream=None,
        clock: Optional[Callable[[], float]] = None,
        warn: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.quantile = quantile
        self.multiplier = multiplier
        self.min_seconds = min_seconds
        self.min_samples = min_samples
        self.interval = interval
        self._metrics = METRICS if metrics is None else metrics
        self._stream = ev.EVENTS if stream is None else stream
        self._clock = time.time if clock is None else clock
        self._warn = warn if warn is not None else (
            lambda line: print(line, file=sys.stderr)
        )
        self._lock = threading.Lock()
        #: (pid, application, site) → start wall time, from event records.
        self._inflight: Dict[Tuple[int, str, str], float] = {}
        self._flagged: set = set()
        self._stop: Optional[threading.Event] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Event-sink half: track in-flight units (local and worker records).
    # ------------------------------------------------------------------
    ingest_remote = True

    @staticmethod
    def _key(record: dict) -> Optional[Tuple[int, str, str]]:
        attrs = record.get("attrs") or {}
        application = attrs.get("application")
        site = attrs.get("site")
        if not isinstance(application, str) or not isinstance(site, str):
            return None
        return (int(record.get("pid", 0)), application, site)

    def emit(self, record: dict) -> None:
        name = record.get("name")
        if name not in (ev.UNIT_STARTED, ev.UNIT_FINISHED, ev.UNIT_FAILED):
            return
        key = self._key(record)
        if key is None:
            return
        with self._lock:
            if name == ev.UNIT_STARTED:
                # Record wall time, not local clock: worker records arrive
                # with the worker's wall stamp and both clocks are epoch.
                self._inflight[key] = float(record.get("wall", 0.0))
            else:
                self._inflight.pop(key, None)
                self._flagged.discard(key)

    # ------------------------------------------------------------------
    def deadline_seconds(self) -> Optional[float]:
        """The current straggler deadline, or ``None`` without data.

        ``multiplier × quantile(stage.unit.seconds)`` with a
        ``min_seconds`` floor; ``None`` until ``min_samples`` completed
        units exist (no distribution, no judgement).
        """
        histogram = self._metrics.histogram("stage.unit.seconds")
        if histogram.count < self.min_samples:
            return None
        bound = histogram.quantile_nanos(self.quantile)
        if bound is None:
            return None
        return max(self.min_seconds, self.multiplier * bound / 1e9)

    def check(self, now: Optional[float] = None) -> int:
        """One evaluation pass; returns how many new stragglers were flagged."""
        deadline = self.deadline_seconds()
        if deadline is None:
            return 0
        now = self._clock() if now is None else now
        with self._lock:
            overdue = [
                (key, now - started)
                for key, started in self._inflight.items()
                if key not in self._flagged and now - started > deadline
            ]
            self._flagged.update(key for key, _ in overdue)
        for (pid, application, site), elapsed in overdue:
            self._metrics.counter("campaign.stragglers").inc()
            self._stream.emit(
                ev.UNIT_STRAGGLER,
                application=application,
                site=site,
                pid=pid,
                elapsed=round(elapsed, 6),
                deadline=round(deadline, 6),
            )
            self._warn(
                f"repro: straggler {application}::{site} "
                f"({elapsed:.1f}s in flight, deadline {deadline:.1f}s)"
            )
        return len(overdue)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Attach to the stream and start the ticker thread."""
        self._stream.add_sink(self)
        self._stop = threading.Event()

        def tick() -> None:
            while not self._stop.wait(self.interval):
                try:
                    self.check()
                except Exception:
                    # Passive contract: the watchdog must never take a
                    # campaign down with it.
                    return

        self._thread = threading.Thread(
            target=tick, name="repro-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Detach and stop; runs one final check for units still overdue."""
        self._stream.remove_sink(self)
        if self._stop is not None:
            self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=max(1.0, 4 * self.interval))
            self._thread = None
        try:
            self.check()
        except Exception:
            pass
