"""Bench-run history and regression comparison (``repro bench-diff``).

The ROADMAP mandates a perf *trajectory* — ``BENCH_*.json`` artifacts
gated in CI — but an artifact alone is a point, not a trajectory.  This
module adds the two missing halves:

* **History** — every standalone bench run appends one record to a
  versioned ``BENCH_history.jsonl`` (in ``BENCH_ARTIFACT_DIR``, like the
  artifacts themselves).  Each record carries the full artifact payload
  plus attribution (``repro_version``, git describe) so any point in the
  trajectory is traceable to the code that produced it.
* **Comparison** — :func:`compare_runs` diffs a current payload against
  a committed baseline with per-metric thresholds and reports
  regressions; ``repro bench-diff`` exits non-zero on any, which is the
  CI gate.

Thresholds are declarative: each watched metric (a dotted path into the
payload, e.g. ``store.warm_speedup``) has a direction (``higher`` =
bigger is better, ``lower`` = smaller is better) and a tolerance, as a
ratio of the baseline value and/or an absolute slack — whichever is more
permissive wins, so near-zero baselines are not held to a ratio of
nothing.  Only machine-independent metrics (ratios, rates, counts) have
default thresholds; raw wall seconds are recorded in history but never
gated, because a baseline committed on one machine says nothing about
another machine's clock.

Record schema (``v`` = :data:`HISTORY_VERSION`)::

    {"v": 1, "benchmark": "observability", "artifact": "BENCH_observability.json",
     "unix_time": 1754600000, "repro_version": "1.7.0", "git": "8967274",
     "payload": {...the artifact JSON...}}

Readers skip records with an unknown ``v`` or malformed JSON — one bad
line loses itself, never the history.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.attribution import attribution

__all__ = [
    "DEFAULT_THRESHOLDS",
    "HISTORY_NAME",
    "HISTORY_VERSION",
    "Regression",
    "Threshold",
    "append_history",
    "compare_runs",
    "history_path",
    "load_history",
    "metric_value",
]

#: Version stamp of bench-history records; bump on any schema change.
HISTORY_VERSION = 1

#: The append-only history file, beside the ``BENCH_*.json`` artifacts.
HISTORY_NAME = "BENCH_history.jsonl"


@dataclass(frozen=True)
class Threshold:
    """Tolerance for one watched metric.

    ``direction`` is which way *better* points: ``"higher"`` metrics
    (speedup, hit rate, coverage) regress by falling, ``"lower"`` metrics
    (overhead, invalid records) regress by rising.  ``ratio`` scales the
    baseline into the worst acceptable value; ``absolute`` is flat slack
    added on top.  The more permissive of the two bounds wins.
    """

    direction: str = "higher"
    ratio: float = 1.0
    absolute: float = 0.0

    def worst_acceptable(self, baseline: float) -> float:
        if self.direction == "lower":
            return max(baseline * self.ratio, baseline) + self.absolute
        return min(baseline * self.ratio, baseline) - self.absolute

    def is_regression(self, baseline: float, current: float) -> bool:
        if self.direction == "lower":
            return current > self.worst_acceptable(baseline)
        return current < self.worst_acceptable(baseline)


#: Per-benchmark watched metrics.  Machine-independent quantities only —
#: see the module doc for why wall seconds are deliberately absent.
DEFAULT_THRESHOLDS: Dict[str, Dict[str, Threshold]] = {
    "observability": {
        # Instrumented/uninstrumented wall ratio: gate the hard <5% claim
        # with flat noise slack (two short wall measurements divide here).
        "overhead": Threshold(direction="lower", ratio=1.0, absolute=0.30),
        "weighted_stage_coverage": Threshold(direction="higher", ratio=0.85),
        "worst_unit_coverage": Threshold(direction="lower", ratio=1.0, absolute=0.05),
        "invalid_records": Threshold(direction="lower", ratio=1.0, absolute=0.0),
        "invalid_event_records": Threshold(
            direction="lower", ratio=1.0, absolute=0.0
        ),
    },
    "campaign": {
        "speedup": Threshold(direction="higher", ratio=0.75),
        "hit_rate": Threshold(direction="higher", ratio=0.75),
        "store.warm_speedup": Threshold(direction="higher", ratio=0.75),
        "store.warm_hit_rate": Threshold(direction="higher", ratio=0.85),
    },
}


@dataclass(frozen=True)
class Regression:
    """One threshold violation from :func:`compare_runs`."""

    metric: str
    baseline: float
    current: float
    threshold: Threshold

    def describe(self) -> str:
        arrow = "rose" if self.threshold.direction == "lower" else "fell"
        return (
            f"{self.metric} {arrow} {self.baseline:.4g} -> {self.current:.4g} "
            f"(worst acceptable "
            f"{self.threshold.worst_acceptable(self.baseline):.4g})"
        )


# ----------------------------------------------------------------------
# History file
# ----------------------------------------------------------------------
def history_path(directory: Optional[str] = None) -> str:
    """Where the history lives: ``BENCH_ARTIFACT_DIR`` like the artifacts."""
    if directory is None:
        directory = os.environ.get("BENCH_ARTIFACT_DIR", ".")
    return os.path.join(directory, HISTORY_NAME)


def append_history(
    payload: dict, artifact_name: str, directory: Optional[str] = None
) -> str:
    """Append one attributed history record; returns the path written."""
    path = history_path(directory)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    record = {
        "v": HISTORY_VERSION,
        "benchmark": payload.get("benchmark"),
        "artifact": artifact_name,
        "unix_time": int(time.time()),
        "payload": payload,
    }
    record.update(attribution())
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_history(
    path: str, benchmark: Optional[str] = None
) -> List[dict]:
    """All readable records from a history file, oldest first.

    Malformed lines and unknown record versions are skipped; ``benchmark``
    filters to one benchmark's trajectory.
    """
    records: List[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(record, dict):
                    continue
                if record.get("v") != HISTORY_VERSION:
                    continue
                if benchmark and record.get("benchmark") != benchmark:
                    continue
                records.append(record)
    except OSError:
        return []
    return records


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def metric_value(payload: dict, dotted: str) -> Optional[float]:
    """Resolve a dotted path (``store.warm_speedup``) to a float, or None."""
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def compare_runs(
    baseline: dict,
    current: dict,
    thresholds: Optional[Dict[str, Threshold]] = None,
) -> List[Regression]:
    """Threshold violations of ``current`` against ``baseline``.

    ``thresholds`` defaults to the benchmark's entry in
    :data:`DEFAULT_THRESHOLDS` (keyed by the payload's ``benchmark``
    field).  A metric absent from either payload is skipped — a baseline
    committed before a metric existed must not fail every future run.
    """
    if thresholds is None:
        thresholds = DEFAULT_THRESHOLDS.get(str(baseline.get("benchmark")), {})
    regressions: List[Regression] = []
    for metric, threshold in sorted(thresholds.items()):
        base = metric_value(baseline, metric)
        cur = metric_value(current, metric)
        if base is None or cur is None:
            continue
        if threshold.is_regression(base, cur):
            regressions.append(
                Regression(
                    metric=metric, baseline=base, current=cur, threshold=threshold
                )
            )
    return regressions
