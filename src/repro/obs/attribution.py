"""Code-version attribution for persisted observability artifacts.

Trace directories and bench-history records outlive the run that wrote
them; without a code-version stamp a perf trajectory cannot say *which*
code produced each point.  This module resolves the two attribution
fields every such artifact carries:

* ``repro_version`` — :data:`repro.__version__`;
* ``git`` — ``git describe --always --dirty --tags`` when the working
  tree is a git checkout with git available, else ``None``.

Attribution is best-effort and passive: a missing git binary, a
non-checkout working tree, or a partially initialized ``repro`` package
degrades to ``None`` fields, never an exception.
"""

from __future__ import annotations

import os
import subprocess
from typing import Optional

__all__ = ["attribution", "git_describe", "repro_version"]


def repro_version() -> Optional[str]:
    """The installed :data:`repro.__version__`, or ``None`` mid-init."""
    try:
        # Lazy import: obs modules must not import repro at module load
        # (layering — obs imports nothing from the rest of the package),
        # and this also tolerates being called during partial init.
        import repro

        return getattr(repro, "__version__", None)
    except Exception:
        return None


def git_describe(cwd: Optional[str] = None) -> Optional[str]:
    """``git describe --always --dirty --tags`` for ``cwd``, else ``None``."""
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except Exception:
        return None
    if result.returncode != 0:
        return None
    described = result.stdout.strip()
    return described or None


def attribution() -> dict:
    """Both attribution fields as a dict ready to merge into a record."""
    return {"repro_version": repro_version(), "git": git_describe()}
