"""An incremental CDCL SAT solver over flat integer arrays.

This is the complete decision procedure backing the portfolio solver: when
the cheap layers (simplification, interval propagation, sampling) cannot
decide a bitvector constraint, the constraint is bit-blasted to CNF and
handed to this solver.

The implementation follows the standard conflict-driven clause learning
recipe: two-watched-literal propagation, first-UIP conflict analysis, VSIDS
branching with phase saving, Luby restarts and learned-clause deletion.

Unlike the original object-graph implementation (preserved as
:mod:`repro.smt.sat_reference`), the hot state lives in flat integer
arrays so propagation and conflict analysis are index arithmetic instead
of attribute chasing:

* literals are encoded as **literal indices**: variable ``v`` maps to
  ``2*v`` (positive) and ``2*v + 1`` (negative), so negation is ``idx ^ 1``
  and the variable is ``idx >> 1``;
* clauses live in one shared **arena** (a flat ``int`` list): a clause
  reference ``cref`` is an offset where ``arena[cref]`` holds the size and
  ``arena[cref + 1 : cref + 1 + size]`` the literal indices, with the two
  watched literals always at the first two slots;
* **watch lists** are per-literal-index flat arrays of interleaved
  ``[cref, blocker]`` pairs.  The blocker is some literal of the clause
  (initially the other watch); if it is already true the clause is
  satisfied and the visit skips the arena entirely;
* assignment (``values`` indexed by literal index), ``reason`` (a cref or
  ``-1``) and ``level`` are indexed arrays, and VSIDS branching uses an
  indexed max-heap ordered by ``(activity, lowest variable index)`` — the
  same variable the original linear argmax scan picked.

The solver is *incremental* in the MiniSat sense:

* it stays attached to the :class:`~repro.smt.cnf.CNF` it was built from
  and picks up clauses appended since the previous call at the start of
  every :meth:`CDCLSolver.solve` (growing the variable arrays as needed),
  so a persistent bit-blaster can keep translating delta conjuncts into the
  same formula;
* :meth:`solve` takes *assumption* literals that hold for one call only —
  they are enqueued as pseudo-decisions below the real decision levels, so
  an enforcement session can flip or append branch constraints between
  calls without rebuilding the solver;
* learned clauses, variable activity and saved phases persist across calls.
  First-UIP learned clauses resolve only real clauses from the database
  (assumption literals are decisions and are never resolved away), so every
  retained clause is implied by the formula itself and stays sound for
  later calls with different assumptions;
* an UNSAT answer under assumptions carries a final-conflict **UNSAT
  core** (:attr:`SatResult.core`): the subset of assumption literals the
  failure actually depended on, so callers can learn *which* pushed
  constraints are jointly infeasible rather than just that the whole
  conjunction is.

The per-call conflict budget (``max_conflicts``) bounds the conflicts of
each :meth:`solve` call separately, matching the per-query budget of the
non-incremental path; the counters reported on a :class:`SatResult` are
likewise per-call deltas.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt.cnf import CNF


class SatStatus:
    """Status constants returned by :meth:`CDCLSolver.solve`."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SatResult:
    """Outcome of one SAT query (statistics are per-call deltas)."""

    status: str
    assignment: Optional[Dict[int, bool]] = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    #: Final-conflict UNSAT core: a subset of this call's assumption
    #: literals that is jointly unsatisfiable with the formula.  ``None``
    #: unless the status is UNSAT; an *empty* tuple means the formula is
    #: unsatisfiable on its own, with no assumption involved.  The core is
    #: sound but not guaranteed minimal (it is whatever the final-conflict
    #: reason graph reached, MiniSat's ``analyzeFinal``).
    core: Optional[Tuple[int, ...]] = None

    @property
    def is_sat(self) -> bool:
        return self.status == SatStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == SatStatus.UNSAT


def _lit_index(literal: int) -> int:
    """Signed DIMACS-style literal -> literal index (2v / 2v+1)."""
    return (literal << 1) if literal > 0 else (((-literal) << 1) | 1)


def _lit_signed(index: int) -> int:
    """Literal index -> signed DIMACS-style literal."""
    var = index >> 1
    return -var if index & 1 else var


class CDCLSolver:
    """Conflict-driven clause learning SAT solver over a :class:`CNF`.

    The solver keeps a reference to ``cnf`` and loads newly appended
    clauses on every :meth:`solve` call, so one instance can serve a
    growing formula (the persistent bit-blaster of a solver session).
    """

    def __init__(
        self,
        cnf: CNF,
        max_conflicts: Optional[int] = None,
        var_decay: float = 0.95,
        clause_decay: float = 0.999,
    ) -> None:
        self.num_vars = 0
        self.max_conflicts = max_conflicts
        self.var_decay = var_decay
        self.clause_decay = clause_decay

        # Assignment state.  ``values`` is indexed by *literal index* and
        # double-written on every assignment (values[lit] = 1 implies
        # values[lit ^ 1] = 0); -1 means unassigned.  The remaining arrays
        # are indexed by variable (1-based).
        self.values: List[int] = [-1, -1]
        self.level: List[int] = [0]
        self.reason: List[int] = [-1]
        self.saved_phase: List[int] = [0]
        self.activity: List[float] = [0.0]
        self.var_inc = 1.0
        self.clause_inc = 1.0

        # VSIDS order heap: max-heap over variables keyed by
        # (activity, -variable index); _heap_pos[var] is the slot or -1.
        self._heap: List[int] = []
        self._heap_pos: List[int] = [-1]

        self.trail: List[int] = []  # literal indices, in assignment order
        self.trail_lim: List[int] = []
        self.propagation_head = 0

        # Clause arena: arena[cref] = size, then `size` literal indices.
        self._arena: List[int] = []
        self.clauses: List[int] = []  # crefs of original clauses
        self.learned: List[int] = []  # crefs of learned clauses
        self._clause_act: Dict[int, float] = {}  # learned-clause activity
        # watches[lit_index] is a flat [cref, blocker, cref, blocker, ...]
        self.watches: List[List[int]] = [[], []]

        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0

        self._cnf = cnf
        self._loaded_clauses = 0
        self._contradiction = False
        self._sync_with_cnf()

    # ------------------------------------------------------------------
    # Incremental clause loading
    # ------------------------------------------------------------------
    def _grow_to(self, num_vars: int) -> None:
        if num_vars <= self.num_vars:
            return
        extra = num_vars - self.num_vars
        self.values.extend([-1] * (2 * extra))
        self.level.extend([0] * extra)
        self.reason.extend([-1] * extra)
        self.saved_phase.extend([0] * extra)
        self.activity.extend([0.0] * extra)
        self._heap_pos.extend([-1] * extra)
        for _ in range(2 * extra):
            self.watches.append([])
        for var in range(self.num_vars + 1, num_vars + 1):
            self._heap_insert(var)
        self.num_vars = num_vars

    def _sync_with_cnf(self) -> None:
        """Load clauses appended to the attached CNF since the last call.

        Must run at decision level 0: new clauses are simplified against the
        root-level assignment (satisfied clauses dropped, permanently false
        literals removed), which keeps the two-watched-literal invariant
        intact for assignments whose propagation events have already been
        consumed.
        """
        if self._cnf.has_contradiction:
            self._contradiction = True
        self._grow_to(self._cnf.num_vars)
        while self._loaded_clauses < len(self._cnf.clauses):
            clause = self._cnf.clauses[self._loaded_clauses]
            self._loaded_clauses += 1
            if not self._add_clause(clause):
                self._contradiction = True
                break

    # ------------------------------------------------------------------
    # Clause database
    # ------------------------------------------------------------------
    def _alloc(self, lit_indices: List[int]) -> int:
        arena = self._arena
        cref = len(arena)
        arena.append(len(lit_indices))
        arena.extend(lit_indices)
        return cref

    def _add_clause(self, literals: Sequence[int]) -> bool:
        """Add an original clause at level 0; ``False`` on a contradiction.

        (Learned clauses take the separate :meth:`_learn` path, which
        asserts at the backjump level instead of simplifying at the root.)
        """
        indices = []
        seen = set()
        for lit in literals:
            idx = _lit_index(int(lit))
            if idx not in seen:
                seen.add(idx)
                indices.append(idx)
        for idx in indices:
            if idx ^ 1 in seen:
                return True  # tautology
        # Root-level simplification: a literal true at level 0 satisfies the
        # clause forever; one false at level 0 can never help it.
        values = self.values
        kept: List[int] = []
        for idx in indices:
            value = values[idx]
            if value < 0:
                kept.append(idx)
            elif value == 1:
                return True
            # value == 0 at level 0: drop the literal.
        if not kept:
            return False
        if len(kept) == 1:
            self._assign(kept[0], -1)
            return True
        cref = self._alloc(kept)
        self.clauses.append(cref)
        self.watches[kept[0]].append(cref)
        self.watches[kept[0]].append(kept[1])
        self.watches[kept[1]].append(cref)
        self.watches[kept[1]].append(kept[0])
        return True

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------
    def _assign(self, lit_index: int, reason_cref: int) -> None:
        var = lit_index >> 1
        self.values[lit_index] = 1
        self.values[lit_index ^ 1] = 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason_cref
        self.saved_phase[var] = (lit_index & 1) ^ 1
        self.trail.append(lit_index)

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _backtrack(self, target_level: int) -> None:
        if len(self.trail_lim) <= target_level:
            return
        cut = self.trail_lim[target_level]
        values = self.values
        reason = self.reason
        heap_pos = self._heap_pos
        for lit_index in self.trail[cut:]:
            values[lit_index] = -1
            values[lit_index ^ 1] = -1
            var = lit_index >> 1
            reason[var] = -1
            if heap_pos[var] < 0:
                self._heap_insert(var)
        del self.trail[cut:]
        del self.trail_lim[target_level:]
        self.propagation_head = min(self.propagation_head, len(self.trail))

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> int:
        """Unit-propagate; returns a conflicting cref or ``-1``.

        This is the hottest loop in the solver: it walks flat watch arrays
        of ``[cref, blocker]`` pairs and only touches the clause arena when
        the blocker literal is not already satisfied.
        """
        values = self.values
        arena = self._arena
        watches = self.watches
        trail = self.trail
        trail_lim = self.trail_lim
        level = self.level
        reason = self.reason
        saved_phase = self.saved_phase
        head = self.propagation_head
        props = 0
        conflict = -1
        while head < len(trail):
            falsified = trail[head] ^ 1
            head += 1
            props += 1
            ws = watches[falsified]
            i = j = 0
            n = len(ws)
            while i < n:
                cref = ws[i]
                blocker = ws[i + 1]
                if values[blocker] == 1:
                    ws[j] = cref
                    ws[j + 1] = blocker
                    j += 2
                    i += 2
                    continue
                base = cref + 1
                # Normalise so arena[base] is the other watched literal.
                first = arena[base]
                if first == falsified:
                    first = arena[base + 1]
                    arena[base] = first
                    arena[base + 1] = falsified
                if values[first] == 1:
                    ws[j] = cref
                    ws[j + 1] = first
                    j += 2
                    i += 2
                    continue
                # Look for a new literal to watch.
                found = False
                for alt in range(base + 2, base + arena[cref]):
                    lit = arena[alt]
                    if values[lit] != 0:
                        arena[base + 1] = lit
                        arena[alt] = falsified
                        other = watches[lit]
                        other.append(cref)
                        other.append(first)
                        found = True
                        break
                if found:
                    i += 2
                    continue
                # Clause is unit or conflicting.
                ws[j] = cref
                ws[j + 1] = first
                j += 2
                i += 2
                if values[first] == 0:
                    # Conflict: keep remaining watchers and report.
                    while i < n:
                        ws[j] = ws[i]
                        ws[j + 1] = ws[i + 1]
                        j += 2
                        i += 2
                    conflict = cref
                    break
                var = first >> 1
                values[first] = 1
                values[first ^ 1] = 0
                level[var] = len(trail_lim)
                reason[var] = cref
                saved_phase[var] = (first & 1) ^ 1
                trail.append(first)
            del ws[j:]
            if conflict >= 0:
                break
        self.propagation_head = head
        self.propagations += props
        return conflict

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: int) -> Tuple[List[int], int]:
        arena = self._arena
        level = self.level
        trail = self.trail
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = bytearray(self.num_vars + 1)
        counter = 0
        current_level = len(self.trail_lim)
        uip_var = -1
        cref = conflict
        trail_index = len(trail) - 1

        while True:
            self._bump_clause(cref)
            for pos in range(cref + 1, cref + 1 + arena[cref]):
                lit = arena[pos]
                var = lit >> 1
                # Skip the literal this clause propagated (the reason clause
                # of a variable contains the variable itself).
                if var == uip_var:
                    continue
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(lit)
            # Select the next literal to expand from the trail.
            while not seen[trail[trail_index] >> 1]:
                trail_index -= 1
            uip_lit = trail[trail_index]
            trail_index -= 1
            uip_var = uip_lit >> 1
            seen[uip_var] = 0
            counter -= 1
            cref = self.reason[uip_var]
            if counter == 0:
                break
        learned[0] = uip_lit ^ 1

        # Compute the backjump level (second-highest level in the clause).
        if len(learned) == 1:
            backjump = 0
        else:
            backjump = max(level[lit >> 1] for lit in learned[1:])
        return learned, backjump

    # ------------------------------------------------------------------
    # VSIDS (indexed max-heap keyed by activity, ties to lowest variable)
    # ------------------------------------------------------------------
    def _heap_insert(self, var: int) -> None:
        heap = self._heap
        self._heap_pos[var] = len(heap)
        heap.append(var)
        self._heap_sift_up(len(heap) - 1)

    def _heap_sift_up(self, slot: int) -> None:
        heap = self._heap
        pos = self._heap_pos
        activity = self.activity
        var = heap[slot]
        act = activity[var]
        while slot > 0:
            parent = (slot - 1) >> 1
            pvar = heap[parent]
            pact = activity[pvar]
            if pact > act or (pact == act and pvar < var):
                break
            heap[slot] = pvar
            pos[pvar] = slot
            slot = parent
        heap[slot] = var
        pos[var] = slot

    def _heap_pop(self) -> int:
        heap = self._heap
        pos = self._heap_pos
        activity = self.activity
        top = heap[0]
        pos[top] = -1
        last = heap.pop()
        if heap:
            # Sift the displaced last element down from the root.
            slot = 0
            size = len(heap)
            act = activity[last]
            while True:
                child = 2 * slot + 1
                if child >= size:
                    break
                cvar = heap[child]
                cact = activity[cvar]
                right = child + 1
                if right < size:
                    rvar = heap[right]
                    ract = activity[rvar]
                    if ract > cact or (ract == cact and rvar < cvar):
                        child = right
                        cvar = rvar
                        cact = ract
                if act > cact or (act == cact and last < cvar):
                    break
                heap[slot] = cvar
                pos[cvar] = slot
                slot = child
            heap[slot] = last
            pos[last] = slot
        return top

    def _bump_var(self, var: int) -> None:
        activity = self.activity
        activity[var] += self.var_inc
        if activity[var] > 1e100:
            # Rescaling preserves relative order, so the heap stays valid.
            for index in range(1, self.num_vars + 1):
                activity[index] *= 1e-100
            self.var_inc *= 1e-100
        if self._heap_pos[var] >= 0:
            self._heap_sift_up(self._heap_pos[var])

    def _decay_var_activity(self) -> None:
        self.var_inc /= self.var_decay

    def _bump_clause(self, cref: int) -> None:
        act = self._clause_act
        if cref in act:
            act[cref] += self.clause_inc
            if act[cref] > 1e20:
                for learned_cref in act:
                    act[learned_cref] *= 1e-20
                self.clause_inc *= 1e-20

    def _decay_clause_activity(self) -> None:
        self.clause_inc /= self.clause_decay

    def _pick_branch_variable(self) -> Optional[int]:
        heap = self._heap
        values = self.values
        while heap:
            var = self._heap_pop()
            if values[var << 1] < 0:
                return var
        return None

    # ------------------------------------------------------------------
    # Learned clause management
    # ------------------------------------------------------------------
    def _reduce_learned(self) -> None:
        if len(self.learned) < 2000:
            return
        arena = self._arena
        act = self._clause_act
        self.learned.sort(key=act.__getitem__)
        keep_from = len(self.learned) // 2
        removed = set(c for c in self.learned[:keep_from] if arena[c] > 2)
        if not removed:
            return
        self.learned = [c for c in self.learned if c not in removed]
        for cref in removed:
            del act[cref]
        for ws in self.watches:
            if not ws:
                continue
            j = 0
            for i in range(0, len(ws), 2):
                if ws[i] not in removed:
                    ws[j] = ws[i]
                    ws[j + 1] = ws[i + 1]
                    j += 2
            del ws[j:]

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        """Solve the formula under optional assumption literals.

        Assumptions hold for this call only: they are enqueued as
        pseudo-decisions below the real decision levels, so neither they nor
        anything propagated from them survives into the next call.  An
        assumption literal that is (or becomes) false at a lower level makes
        the call return UNSAT without poisoning the clause database — and
        carries the final-conflict core over assumption literals (see
        :attr:`SatResult.core`; an UNSAT with an empty core means the
        formula itself is unsatisfiable).
        """
        self._backtrack(0)
        self._sync_with_cnf()
        marks = (self.conflicts, self.decisions, self.propagations, self.restarts)
        if self._contradiction:
            return self._result(SatStatus.UNSAT, marks=marks, core=())

        if self._propagate() >= 0:
            self._contradiction = True
            return self._result(SatStatus.UNSAT, marks=marks, core=())

        assumptions = [int(lit) for lit in assumptions]
        restart_threshold = 100
        luby = _luby_sequence()
        next_restart = self.conflicts + restart_threshold * next(luby)
        values = self.values

        while True:
            conflict = self._propagate()
            if conflict >= 0:
                self.conflicts += 1
                if not self.trail_lim:
                    self._contradiction = True
                    return self._result(SatStatus.UNSAT, marks=marks, core=())
                learned, backjump_level = self._analyze(conflict)
                self._backtrack(backjump_level)
                self._learn(learned)
                self._decay_var_activity()
                self._decay_clause_activity()
                if (
                    self.max_conflicts is not None
                    and self.conflicts - marks[0] >= self.max_conflicts
                ):
                    return self._result(SatStatus.UNKNOWN, marks=marks)
                if self.conflicts >= next_restart:
                    self.restarts += 1
                    next_restart = self.conflicts + restart_threshold * next(luby)
                    self._backtrack(0)
                    self._reduce_learned()
                continue

            if len(self.trail_lim) < len(assumptions):
                # Establish the next assumption as a pseudo-decision.  A
                # level is opened even when the literal already holds, so
                # the level index always tells how many assumptions are in
                # force (and backjumps re-establish the rest on the way
                # back down).
                literal = assumptions[len(self.trail_lim)]
                lit_index = _lit_index(literal)
                value = values[lit_index]
                if value == 0:
                    return self._result(
                        SatStatus.UNSAT,
                        marks=marks,
                        core=self._analyze_final(literal),
                    )
                self.trail_lim.append(len(self.trail))
                if value < 0:
                    self._assign(lit_index, -1)
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                assignment = {
                    var: values[var << 1] == 1 for var in range(1, self.num_vars + 1)
                }
                return self._result(SatStatus.SAT, assignment, marks=marks)
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            lit_index = (variable << 1) | (self.saved_phase[variable] ^ 1)
            self._assign(lit_index, -1)

    def _analyze_final(self, failed: int) -> Tuple[int, ...]:
        """Explain a falsified assumption as a core over assumption literals.

        Called when establishing assumption ``failed`` found it already
        false.  Walks the trail backwards from ``-failed`` through reason
        clauses (MiniSat's ``analyzeFinal``): every reached literal assigned
        with no reason above level 0 is an assumption pseudo-decision (real
        decisions cannot exist yet — assumptions are established before any
        branching), and the collected assumptions plus ``failed`` itself are
        jointly unsatisfiable with the formula.  Level-0 assignments are
        implied by the formula alone and contribute nothing.
        """
        arena = self._arena
        level = self.level
        core = {failed}
        failed_var = abs(failed)
        if level[failed_var] == 0:
            return tuple(sorted(core))
        pending = {failed_var}
        for lit_index in reversed(self.trail):
            var = lit_index >> 1
            if var not in pending:
                continue
            pending.discard(var)
            reason_cref = self.reason[var]
            if reason_cref < 0:
                core.add(_lit_signed(lit_index))
                continue
            for pos in range(reason_cref + 1, reason_cref + 1 + arena[reason_cref]):
                other = arena[pos] >> 1
                if other != var and level[other] > 0:
                    pending.add(other)
        return tuple(sorted(core))

    def _learn(self, learned: List[int]) -> None:
        if len(learned) == 1:
            self._assign(learned[0], -1)
            return
        level = self.level
        # Watch the asserting literal (position 0) and, to keep the watch
        # invariant intact across later backtracking, the literal assigned at
        # the highest remaining decision level (position 1).
        best = max(range(1, len(learned)), key=lambda i: level[learned[i] >> 1])
        learned[1], learned[best] = learned[best], learned[1]
        cref = self._alloc(learned)
        self.learned.append(cref)
        self._clause_act[cref] = 0.0
        self.watches[learned[0]].append(cref)
        self.watches[learned[0]].append(learned[1])
        self.watches[learned[1]].append(cref)
        self.watches[learned[1]].append(learned[0])
        self._assign(learned[0], cref)

    def _result(
        self,
        status: str,
        assignment: Optional[Dict[int, bool]] = None,
        marks: Tuple[int, int, int, int] = (0, 0, 0, 0),
        core: Optional[Tuple[int, ...]] = None,
    ) -> SatResult:
        return SatResult(
            status=status,
            assignment=assignment,
            conflicts=self.conflicts - marks[0],
            decisions=self.decisions - marks[1],
            propagations=self.propagations - marks[2],
            restarts=self.restarts - marks[3],
            core=core,
        )


def _luby_sequence():
    """Generate the Luby restart sequence 1, 1, 2, 1, 1, 2, 4, ..."""
    for index in itertools.count(1):
        yield _luby(index)


def _luby(index: int) -> int:
    """The index-th element (1-based) of the Luby sequence."""
    while True:
        k = index.bit_length()
        if index == (1 << k) - 1:
            return 1 << (k - 1)
        index -= (1 << (k - 1)) - 1


def solve_cnf(cnf: CNF, max_conflicts: Optional[int] = None) -> SatResult:
    """Convenience wrapper: solve a CNF formula from scratch."""
    return CDCLSolver(cnf, max_conflicts=max_conflicts).solve()
