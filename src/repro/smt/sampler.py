"""Constraint-guided random model sampling.

The paper's Sections 5.5 and 5.6 sample 200 inputs that satisfy the target
constraint (alone, or together with the enforced branch constraints) and
report how many of those inputs actually trigger the overflow.  This module
provides the sampling primitive: draw diverse models of a boolean constraint
over bitvector variables.

Strategy (cheapest first):

1. Propagate intervals over the constraint conjunction to shrink the search
   box for each variable.
2. Draw random points from the box, biased towards interval end points and
   power-of-two boundaries (overflow constraints are almost always satisfied
   near the extremes).
3. Hill-climb points that are close: flip one variable at a time towards the
   direction suggested by the first falsified conjunct.
4. If nothing is found, fall back to the complete solver for a single model
   and then perturb unconstrained low-order bits of that model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.smt import builder as b
from repro.smt.evalmodel import Model, satisfies
from repro.smt.interval import Interval, propagate_intervals
from repro.smt.simplify import simplify
from repro.smt.terms import Term, TermKind, mask


@dataclass
class SamplerConfig:
    """Tuning knobs for :class:`ModelSampler`."""

    random_attempts_per_sample: int = 400
    hill_climb_steps: int = 60
    seed: Optional[int] = None
    boundary_bias: float = 0.4
    perturbation_attempts: int = 40


def split_conjuncts(constraint: Term) -> List[Term]:
    """Split nested boolean conjunctions into a flat list."""
    out: List[Term] = []
    stack = [constraint]
    while stack:
        term = stack.pop()
        if term.kind is TermKind.BAND:
            stack.extend(term.args)
        else:
            out.append(term)
    out.reverse()
    return out


class ModelSampler:
    """Sample diverse models of a boolean constraint."""

    def __init__(
        self,
        constraint: Term,
        variables: Sequence[Term],
        config: Optional[SamplerConfig] = None,
        fallback_solve: Optional[Callable[[Term], Optional[Model]]] = None,
    ) -> None:
        if not constraint.is_bool:
            raise ValueError("sampler constraint must be boolean")
        self.constraint = simplify(constraint)
        self.variables = list(variables)
        self.config = config or SamplerConfig()
        self.random = random.Random(self.config.seed)
        self.fallback_solve = fallback_solve
        self._widths = {str(v.name): v.width for v in self.variables}
        self._conjuncts = split_conjuncts(self.constraint)
        feasible, bounds = propagate_intervals(self._conjuncts, self._widths)
        self.feasible_hint = feasible
        self.bounds: Dict[str, Interval] = bounds
        self._anchor: Optional[Model] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def sample(self, count: int) -> List[Model]:
        """Return up to ``count`` models satisfying the constraint.

        Models are not guaranteed distinct (the paper samples with
        replacement: the same field values can be generated twice), but the
        sampler biases towards diversity.
        """
        models: List[Model] = []
        for _ in range(count):
            model = self.sample_one()
            if model is None:
                break
            models.append(model)
        return models

    def sample_one(self) -> Optional[Model]:
        """Return a single model of the constraint, or ``None`` on failure."""
        if self.constraint.kind is TermKind.BOOL_CONST:
            if self.constraint.value:
                return self._random_point()
            return None
        if not self.feasible_hint:
            return None
        for _ in range(self.config.random_attempts_per_sample):
            candidate = self._random_point()
            if satisfies(self.constraint, candidate):
                return candidate
            improved = self._hill_climb(candidate)
            if improved is not None:
                return improved
        return self._fallback_sample()

    # ------------------------------------------------------------------
    # Random point generation
    # ------------------------------------------------------------------
    def _random_point(self) -> Model:
        model = Model()
        for variable in self.variables:
            name = str(variable.name)
            model[name] = self._random_value(name, variable.width)
        return model

    def _random_value(self, name: str, width: int) -> int:
        interval = self.bounds.get(name, Interval.full(width))
        if interval.is_empty:
            interval = Interval.full(width)
        if interval.is_point:
            return interval.lo
        roll = self.random.random()
        if roll < self.config.boundary_bias:
            # Boundary-biased draws: interval ends and near-power-of-two
            # points are where overflow constraints flip.
            candidates = [interval.lo, interval.hi, max(interval.lo, interval.hi - 1)]
            for shift in (8, 16, 24, 31):
                point = 1 << shift
                if interval.lo <= point <= interval.hi:
                    candidates.append(point)
                    candidates.append(point - 1)
            return self.random.choice(candidates)
        if roll < self.config.boundary_bias + 0.3:
            # Log-uniform draw: choose a bit-length first so small and large
            # magnitudes are equally likely.
            low_bits = max(interval.lo.bit_length(), 1)
            high_bits = max(interval.hi.bit_length(), 1)
            bits = self.random.randint(low_bits, high_bits)
            lo = max(interval.lo, 1 << (bits - 1))
            hi = min(interval.hi, (1 << bits) - 1)
            if lo > hi:
                return self.random.randint(interval.lo, interval.hi)
            return self.random.randint(lo, hi)
        return self.random.randint(interval.lo, interval.hi)

    # ------------------------------------------------------------------
    # Local search
    # ------------------------------------------------------------------
    def _hill_climb(self, model: Model) -> Optional[Model]:
        current = model.copy()
        for _ in range(self.config.hill_climb_steps):
            failing = self._first_failing_conjunct(current)
            if failing is None:
                return current
            moved = self._move_towards(current, failing)
            if moved is None:
                return None
            current = moved
        if satisfies(self.constraint, current):
            return current
        return None

    def _first_failing_conjunct(self, model: Model) -> Optional[Term]:
        for conjunct in self._conjuncts:
            if not satisfies(conjunct, model):
                return conjunct
        return None

    def _move_towards(self, model: Model, conjunct: Term) -> Optional[Model]:
        """Randomly adjust one variable appearing in the failing conjunct."""
        variables = [v for v in conjunct.variables() if str(v.name) in self._widths]
        if not variables:
            return None
        variable = self.random.choice(variables)
        name = str(variable.name)
        width = variable.width
        interval = self.bounds.get(name, Interval.full(width))
        moved = model.copy()
        strategy = self.random.random()
        current_value = model.get(name, 0) or 0
        if strategy < 0.3:
            moved[name] = interval.hi if not interval.is_empty else mask(width)
        elif strategy < 0.6:
            moved[name] = interval.lo if not interval.is_empty else 0
        elif strategy < 0.8:
            delta = 1 << self.random.randint(0, max(width - 1, 1) - 1)
            moved[name] = (current_value + delta) & mask(width)
        else:
            moved[name] = self._random_value(name, width)
        return moved

    # ------------------------------------------------------------------
    # Complete-solver fallback
    # ------------------------------------------------------------------
    def _fallback_sample(self) -> Optional[Model]:
        if self._anchor is None and self.fallback_solve is not None:
            self._anchor = self.fallback_solve(self.constraint)
        if self._anchor is None:
            return None
        anchor = self._anchor
        for _ in range(self.config.perturbation_attempts):
            perturbed = anchor.copy()
            for variable in self.variables:
                name = str(variable.name)
                if self.random.random() < 0.5:
                    continue
                flip = 1 << self.random.randint(0, variable.width - 1)
                perturbed[name] = (perturbed.get(name, 0) ^ flip) & mask(variable.width)
            if satisfies(self.constraint, perturbed):
                return perturbed
        return anchor.copy()
