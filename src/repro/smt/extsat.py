"""Optional external SAT backend over ``python-sat`` (PySAT).

The portfolio's complete backend is the pure-Python :class:`CDCLSolver`.
When the ``python-sat`` package is importable *and* the fingerprinted
``SolverConfig.enable_external_sat`` knob is on, one-shot complete solves
can instead run on a native PySAT solver fed the same CNF — typically
orders of magnitude faster on hard instances.

Design rules (see ``docs/solver.md``):

* the dependency is **optional**: nothing in this module imports PySAT at
  module load time, :func:`pysat_available` gates every use, and the
  default configuration never routes here — CI's default matrix runs
  without the package installed;
* the external backend is a drop-in :class:`CDCLSolver` substitute: it
  consumes the same :class:`~repro.smt.cnf.CNF` (via DIMACS-convention
  integer clauses), honours ``max_conflicts`` as a conflict budget
  (exhaustion reports UNKNOWN exactly like the pure core), and returns
  :class:`~repro.smt.sat.SatResult` with models keyed by CNF variable and
  assumption cores as sorted signed literals — so
  ``BitBlaster.extract_model`` and the assumption-literal core maps work
  unchanged;
* verdicts can be **shadow-checked**: ``SolverConfig.external_sat_shadow``
  re-solves every external query on the pure core and raises on a
  SAT/UNSAT disagreement (UNKNOWN on either side is compatible — budget
  artifacts are not comparable), which is how CI asserts status parity
  without trusting the external solver.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.smt.cnf import CNF
from repro.smt.sat import SatResult, SatStatus

_PYSAT_SOLVER_NAME = "minisat22"


def pysat_available() -> bool:
    """Whether the optional ``python-sat`` package is importable."""
    try:
        import pysat.solvers  # noqa: F401
    except Exception:
        return False
    return True


class PySATBackend:
    """Drop-in complete backend running a native PySAT solver.

    Mirrors the :class:`~repro.smt.sat.CDCLSolver` call surface used by the
    one-shot complete path: construct over a :class:`CNF`, call
    :meth:`solve` with optional assumption literals, read a
    :class:`SatResult` back.  Statistics are per-call deltas like the pure
    core's.
    """

    def __init__(
        self,
        cnf: CNF,
        max_conflicts: Optional[int] = None,
        solver_name: str = _PYSAT_SOLVER_NAME,
    ) -> None:
        from pysat.solvers import Solver

        self._cnf = cnf
        self.max_conflicts = max_conflicts
        self._solver = Solver(name=solver_name)
        self._loaded_clauses = 0
        self._contradiction = False
        self._sync_with_cnf()

    def _sync_with_cnf(self) -> None:
        if self._cnf.has_contradiction:
            self._contradiction = True
        while self._loaded_clauses < len(self._cnf.clauses):
            clause = self._cnf.clauses[self._loaded_clauses]
            self._loaded_clauses += 1
            if clause:
                self._solver.add_clause(list(clause))

    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        """Solve the formula under optional assumption literals."""
        self._sync_with_cnf()
        if self._contradiction:
            return SatResult(status=SatStatus.UNSAT, core=())
        before = dict(self._solver.accum_stats() or {})
        assumptions = [int(lit) for lit in assumptions]
        if self.max_conflicts is not None:
            self._solver.conf_budget(self.max_conflicts)
            verdict = self._solver.solve_limited(assumptions=assumptions)
        else:
            verdict = self._solver.solve(assumptions=assumptions)
        after = dict(self._solver.accum_stats() or {})

        def delta(key: str) -> int:
            return int(after.get(key, 0)) - int(before.get(key, 0))

        stats = dict(
            conflicts=delta("conflicts"),
            decisions=delta("decisions"),
            propagations=delta("propagations"),
            restarts=delta("restarts"),
        )
        if verdict is None:
            return SatResult(status=SatStatus.UNKNOWN, **stats)
        if verdict:
            model = self._solver.get_model() or []
            assignment = {var: False for var in range(1, self._cnf.num_vars + 1)}
            for literal in model:
                assignment[abs(literal)] = literal > 0
            return SatResult(status=SatStatus.SAT, assignment=assignment, **stats)
        core_literals = self._solver.get_core() if assumptions else None
        core = tuple(sorted(core_literals)) if core_literals else ()
        return SatResult(status=SatStatus.UNSAT, core=core, **stats)

    def delete(self) -> None:
        """Release the native solver (PySAT objects hold C-side state)."""
        self._solver.delete()


def external_backend(
    cnf: CNF, max_conflicts: Optional[int] = None
) -> Optional[PySATBackend]:
    """Construct a :class:`PySATBackend` if PySAT is importable, else ``None``."""
    if not pysat_available():
        return None
    return PySATBackend(cnf, max_conflicts=max_conflicts)
