"""The portfolio solver front end.

This is the component the rest of the system treats as "the SMT solver" (the
role played by Z3 in the paper).  A query is a conjunction of boolean terms
over bitvector variables; the answer is SAT with a model, UNSAT, or UNKNOWN.

The portfolio runs, in order:

1. **Simplification** — constant folding may already decide the query.
2. **Interval propagation** — an HC4-style contractor over the conjunction;
   an empty box is a proof of unsatisfiability, and the contracted box feeds
   the later layers.
3. **Algebraic heuristics** — extreme-point candidates tuned to the shape of
   overflow constraints.
4. **Guided random sampling** — boundary-biased sampling plus hill climbing.
5. **Bit-blasting + CDCL** — the complete fallback.

Layers 3 and 4 can only return SAT (with a checked model); layer 2 can only
return UNSAT; layer 5 is complete but is budgeted by a conflict limit so the
front end degrades to UNKNOWN rather than hanging on adversarial queries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.smt import builder as b
from repro.smt.bitblast import BitBlaster, BitBlastError
from repro.smt.cache import CachedVerdict, SolverCache
from repro.smt.evalmodel import Model, satisfies
from repro.smt.heuristics import try_algebraic_solution
from repro.smt.interval import Interval, propagate_intervals
from repro.smt.sampler import ModelSampler, SamplerConfig, split_conjuncts
from repro.smt.sat import CDCLSolver, SatStatus
from repro.smt.simplify import simplify
from repro.smt.terms import Term, TermKind


class SolverStatus:
    """Status constants for :class:`SolverResult`."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverResult:
    """Outcome of a portfolio query."""

    status: str
    model: Optional[Model] = None
    reason: str = ""
    elapsed_seconds: float = 0.0
    stages_tried: Tuple[str, ...] = ()

    @property
    def is_sat(self) -> bool:
        return self.status == SolverStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == SolverStatus.UNSAT

    @property
    def is_unknown(self) -> bool:
        return self.status == SolverStatus.UNKNOWN


@dataclass
class SolverConfig:
    """Tuning knobs for :class:`PortfolioSolver`."""

    sampler: SamplerConfig = field(default_factory=SamplerConfig)
    enable_bitblast: bool = True
    bitblast_max_conflicts: int = 200_000
    bitblast_max_width: int = 64
    heuristic_max_checks: int = 768
    seed: Optional[int] = 0

    def fingerprint(self) -> Tuple:
        """The knobs a cached verdict depends on.

        Part of every solver-cache key, and the validity stamp of a
        persistent :class:`~repro.smt.cachestore.CacheStore` — results
        computed under different budgets must never be conflated, within a
        run or across runs.  Primitives only, so it survives a JSON round
        trip unchanged.
        """
        sampler = self.sampler
        return (
            self.enable_bitblast,
            self.bitblast_max_conflicts,
            self.bitblast_max_width,
            self.heuristic_max_checks,
            self.seed,
            sampler.random_attempts_per_sample,
            sampler.hill_climb_steps,
            sampler.seed,
            sampler.boundary_bias,
            sampler.perturbation_attempts,
        )


class PortfolioSolver:
    """Layered QF_BV solver: simplify → intervals → heuristics → sampling → CDCL.

    When a :class:`~repro.smt.cache.SolverCache` is supplied, queries are
    canonicalized (alpha-renamed over the hash-consed DAG) and the portfolio
    decides the canonical representative, so alpha-equivalent queries from
    sibling sites and repeated enforcement iterations share one verdict.
    """

    def __init__(
        self,
        config: Optional[SolverConfig] = None,
        cache: Optional[SolverCache] = None,
    ) -> None:
        self.config = config or SolverConfig()
        self.cache = cache
        self.query_count = 0
        self.stage_hits: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def check(self, constraints: Iterable[Term]) -> SolverResult:
        """Decide the conjunction of ``constraints``."""
        started = time.perf_counter()
        self.query_count += 1
        constraint_list = [simplify(c) for c in constraints]
        stages: List[str] = []

        # Layer 1: simplification may already decide the query.
        stages.append("simplify")
        decided = self._decide_by_simplification(constraint_list)
        if decided is not None:
            return self._finish(decided, started, stages)

        conjuncts: List[Term] = []
        for constraint in constraint_list:
            conjuncts.extend(split_conjuncts(constraint))

        if self.cache is not None:
            return self._check_cached(conjuncts, started, stages)
        return self._finish(self._run_portfolio(conjuncts, stages), started, stages)

    def _check_cached(
        self, conjuncts: List[Term], started: float, stages: List[str]
    ) -> SolverResult:
        """Answer the query through the shared cache.

        Hit or miss, the verdict is derived from the *canonical
        representative* of the query, so the answer is a pure function of
        the canonical system — independent of worker scheduling and of
        which alpha-variant of the system was solved first.
        """
        stages.append("cache")
        system = self.cache.canonicalize(conjuncts, self._config_fingerprint())
        cached = self.cache.lookup(system)
        if cached is not None:
            if cached.status != SolverStatus.SAT:
                return self._finish(
                    SolverResult(cached.status, reason="cache"), started, stages
                )
            model = system.translate_model(cached.canonical_model)
            if all(satisfies(c, model) for c in conjuncts):
                return self._finish(
                    SolverResult(SolverStatus.SAT, model=model, reason="cache"),
                    started,
                    stages,
                )
            # A stored model that does not survive translation means the
            # canonicalization missed a distinction; fall through and
            # re-derive (and overwrite) the entry.
            self.cache.note_invalid_hit()

        canonical_result = self._run_portfolio(list(system.conjuncts), stages)
        self.cache.store(
            system,
            CachedVerdict(
                status=canonical_result.status,
                canonical_model=canonical_result.model,
                reason=canonical_result.reason,
            ),
        )
        result = SolverResult(
            canonical_result.status, reason=canonical_result.reason
        )
        if canonical_result.is_sat:
            result.model = system.translate_model(canonical_result.model)
        return self._finish(result, started, stages)

    def _config_fingerprint(self) -> Tuple:
        """The configuration knobs a cached verdict depends on."""
        return self.config.fingerprint()

    def _run_portfolio(self, conjuncts: List[Term], stages: List[str]) -> SolverResult:
        """Layers 2-5 over an already simplified, split conjunction."""
        variables = self._collect_variables(conjuncts)
        widths = {str(v.name): v.width for v in variables}

        # Layer 2: interval propagation (UNSAT proofs + bounds for later layers).
        stages.append("intervals")
        feasible, bounds = propagate_intervals(conjuncts, widths)
        if not feasible:
            return SolverResult(SolverStatus.UNSAT, reason="interval propagation")
        point_model = self._point_model_if_determined(variables, bounds)
        if point_model is not None and all(
            satisfies(c, point_model) for c in conjuncts
        ):
            return SolverResult(
                SolverStatus.SAT, model=point_model, reason="interval point"
            )

        whole = b.band(*conjuncts) if conjuncts else b.TRUE

        # Layer 3: algebraic extreme-point heuristics.
        stages.append("heuristics")
        model = try_algebraic_solution(
            whole, variables, max_checks=self.config.heuristic_max_checks
        )
        if model is not None:
            return SolverResult(SolverStatus.SAT, model=model, reason="heuristics")

        # Layer 4: guided sampling.
        stages.append("sampling")
        sampler = ModelSampler(
            whole,
            variables,
            config=self.config.sampler,
            fallback_solve=None,
        )
        model = sampler.sample_one()
        if model is not None:
            return SolverResult(SolverStatus.SAT, model=model, reason="sampling")

        # Layer 5: complete bit-blasting backend.
        if self.config.enable_bitblast and self._blastable(conjuncts):
            stages.append("bitblast")
            status, model = self._bitblast(conjuncts)
            if status == SatStatus.SAT and model is not None:
                restricted = model.restricted_to(widths)
                return SolverResult(
                    SolverStatus.SAT, model=restricted, reason="bitblast"
                )
            if status == SatStatus.UNSAT:
                return SolverResult(SolverStatus.UNSAT, reason="bitblast")

        return SolverResult(SolverStatus.UNKNOWN, reason="portfolio exhausted")

    def solve_for_model(self, constraints: Iterable[Term]) -> Optional[Model]:
        """Return a model of the conjunction, or ``None`` if UNSAT/UNKNOWN."""
        result = self.check(constraints)
        return result.model if result.is_sat else None

    def sample_models(
        self,
        constraints: Iterable[Term],
        count: int,
        seed: Optional[int] = None,
    ) -> List[Model]:
        """Sample up to ``count`` models of the conjunction (with replacement)."""
        constraint_list = [simplify(c) for c in constraints]
        conjuncts: List[Term] = []
        for constraint in constraint_list:
            conjuncts.extend(split_conjuncts(constraint))
        variables = self._collect_variables(conjuncts)
        whole = b.band(*conjuncts) if conjuncts else b.TRUE
        config = SamplerConfig(
            random_attempts_per_sample=self.config.sampler.random_attempts_per_sample,
            hill_climb_steps=self.config.sampler.hill_climb_steps,
            seed=seed if seed is not None else self.config.sampler.seed,
            boundary_bias=self.config.sampler.boundary_bias,
            perturbation_attempts=self.config.sampler.perturbation_attempts,
        )
        sampler = ModelSampler(
            whole,
            variables,
            config=config,
            fallback_solve=lambda c: self.solve_for_model([c]),
        )
        return sampler.sample(count)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _finish(
        self, result: SolverResult, started: float, stages: List[str]
    ) -> SolverResult:
        result.elapsed_seconds = time.perf_counter() - started
        result.stages_tried = tuple(stages)
        self.stage_hits[result.reason] = self.stage_hits.get(result.reason, 0) + 1
        if result.is_sat and result.model is None:
            raise AssertionError("SAT result without a model")
        return result

    @staticmethod
    def _decide_by_simplification(constraints: Sequence[Term]) -> Optional[SolverResult]:
        all_true = True
        for constraint in constraints:
            if constraint.kind is TermKind.BOOL_CONST:
                if not constraint.value:
                    return SolverResult(SolverStatus.UNSAT, reason="simplify")
            else:
                all_true = False
        if all_true:
            return SolverResult(SolverStatus.SAT, model=Model(), reason="simplify")
        return None

    @staticmethod
    def _collect_variables(conjuncts: Sequence[Term]) -> List[Term]:
        seen: Dict[str, Term] = {}
        for conjunct in conjuncts:
            for variable in conjunct.variables():
                if variable.is_bv:
                    seen.setdefault(str(variable.name), variable)
        return [seen[name] for name in sorted(seen)]

    @staticmethod
    def _point_model_if_determined(
        variables: Sequence[Term], bounds: Dict[str, Interval]
    ) -> Optional[Model]:
        model = Model()
        for variable in variables:
            interval = bounds.get(str(variable.name))
            if interval is None or not interval.is_point:
                return None
            model[str(variable.name)] = interval.lo
        return model if len(model) == len(variables) else None

    def _blastable(self, conjuncts: Sequence[Term]) -> bool:
        node_budget = 4000
        wide_multiplications = 0
        nodes = 0
        for conjunct in conjuncts:
            for term in conjunct.subterms():
                nodes += 1
                if nodes > node_budget:
                    return False
                if term.is_bv and term.width > self.config.bitblast_max_width:
                    return False
                if (
                    term.kind is TermKind.MUL
                    and term.width is not None
                    and term.width > 32
                    and not any(a.is_const for a in term.args)
                ):
                    wide_multiplications += 1
        # Each wide variable×variable multiplier costs thousands of clauses;
        # a pure-Python CDCL run over several of them will not finish in a
        # useful amount of time, so the portfolio degrades to UNKNOWN instead.
        return wide_multiplications <= 2

    def _bitblast(self, conjuncts: Sequence[Term]) -> Tuple[str, Optional[Model]]:
        try:
            blaster = BitBlaster()
            for conjunct in conjuncts:
                blaster.assert_constraint(conjunct)
            solver = CDCLSolver(
                blaster.cnf, max_conflicts=self.config.bitblast_max_conflicts
            )
            result = solver.solve()
        except (BitBlastError, RecursionError, MemoryError):
            return SatStatus.UNKNOWN, None
        if result.status == SatStatus.SAT:
            return SatStatus.SAT, blaster.extract_model(result)
        return result.status, None
