"""The portfolio solver front end.

This is the component the rest of the system treats as "the SMT solver" (the
role played by Z3 in the paper).  A query is a conjunction of boolean terms
over bitvector variables; the answer is SAT with a model, UNSAT, or UNKNOWN.

The portfolio runs, in order:

1. **Simplification** — constant folding may already decide the query.
2. **Interval propagation** — an HC4-style contractor over the conjunction;
   an empty box is a proof of unsatisfiability, and the contracted box feeds
   the later layers.
3. **Algebraic heuristics** — extreme-point candidates tuned to the shape of
   overflow constraints.
4. **Guided random sampling** — boundary-biased sampling plus hill climbing.
5. **Bit-blasting + CDCL** — the complete fallback.

Layers 3 and 4 can only return SAT (with a checked model); layer 2 can only
return UNSAT; layer 5 is complete but is budgeted by a conflict limit so the
front end degrades to UNKNOWN rather than hanging on adversarial queries.

Two orthogonal mechanisms exploit the structure *within and across*
queries:

* **Decomposition** (``enable_decomposition``): the conjunction is split
  into independent connected components over the variable-sharing graph
  (:mod:`repro.smt.decompose`); each component is decided separately —
  against a component-granularity cache when one is attached — and
  per-component models compose into the whole-query model (UNSAT in any
  component is UNSAT overall).
* **Sessions** (:class:`SolverSession`, via :meth:`PortfolioSolver.open_session`):
  a push/pop constraint stack for callers that issue long chains of
  near-identical queries (the enforcement loop).  A session keeps one
  persistent :class:`~repro.smt.bitblast.BitBlaster` and one incremental
  :class:`~repro.smt.sat.CDCLSolver`, so only delta conjuncts are blasted
  and learned clauses carry over between checks; per-check conjuncts are
  asserted through CDCL assumptions, never permanent units.

UNSAT verdicts additionally carry an **UNSAT core**
(:attr:`SolverResult.unsat_core`, ``enable_unsat_cores``): a subset of
the query's conjuncts that is already jointly infeasible — precise
final-conflict cores from a session's assumption-based CDCL, the UNSAT
component's conjuncts under decomposition, the full conjunction
otherwise.  The enforcement loop accumulates cores per target site and
prunes candidate queries subsumed by one (see ``docs/solver.md``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.trace import TRACER
from repro.smt import builder as b
from repro.smt.bitblast import BitBlaster, BitBlastError
from repro.smt.cache import CachedVerdict, SolverCache
from repro.smt.decompose import compose_models, decompose
from repro.smt.evalmodel import EvaluationError, Model, satisfies
from repro.smt.heuristics import try_algebraic_solution
from repro.smt.interval import Interval, propagate_intervals
from repro.smt.sampler import ModelSampler, SamplerConfig, split_conjuncts
from repro.smt.extsat import external_backend
from repro.smt.sat import CDCLSolver, SatResult, SatStatus
from repro.smt.simplify import simplify
from repro.smt.terms import Term, TermKind


class SolverStatus:
    """Status constants for :class:`SolverResult`."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverResult:
    """Outcome of a portfolio query."""

    status: str
    model: Optional[Model] = None
    reason: str = ""
    elapsed_seconds: float = 0.0
    stages_tried: Tuple[str, ...] = ()
    #: For UNSAT results (with ``enable_unsat_cores``): a subset of the
    #: query's conjuncts whose conjunction is already unsatisfiable, in the
    #: caller's term space.  The core is sound but not necessarily minimal:
    #: a session's assumption-based CDCL yields the final-conflict subset,
    #: an UNSAT connected component yields that component's conjuncts, and
    #: the remaining UNSAT layers fall back to the full conjunct list.
    #: ``None`` when the status is not UNSAT, when cores are disabled, or
    #: when the verdict came from a cache hit (cores are per-derivation and
    #: are never cached).
    unsat_core: Optional[Tuple[Term, ...]] = None

    @property
    def is_sat(self) -> bool:
        return self.status == SolverStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == SolverStatus.UNSAT

    @property
    def is_unknown(self) -> bool:
        return self.status == SolverStatus.UNKNOWN


class ExternalSatParityError(AssertionError):
    """The external SAT backend and the pure core disagreed on a status.

    Raised only when ``SolverConfig.external_sat_shadow`` is on.  A
    SAT/UNSAT split between the two complete backends on the same CNF is a
    soundness bug in one of them; the shadow turns it into a loud failure
    instead of a silently divergent classification.
    """


@dataclass
class SolverConfig:
    """Tuning knobs for :class:`PortfolioSolver`."""

    sampler: SamplerConfig = field(default_factory=SamplerConfig)
    enable_bitblast: bool = True
    bitblast_max_conflicts: int = 200_000
    bitblast_max_width: int = 64
    heuristic_max_checks: int = 768
    seed: Optional[int] = 0
    #: Decide independent connected components separately (and cache them
    #: at component granularity when a cache is attached).
    enable_decomposition: bool = True
    #: Let callers that hold a :class:`SolverSession` drive the incremental
    #: push/pop path (the enforcement loop checks this knob).
    enable_sessions: bool = True
    #: Attach UNSAT cores (:attr:`SolverResult.unsat_core`) to UNSAT
    #: verdicts and let the enforcement loop use them to prune candidate
    #: branch queries whose conjunct set is subsumed by an accumulated core
    #: (``repro campaign --no-core-guidance`` disables this).
    enable_unsat_cores: bool = True
    #: Reuse one :class:`SolverSession` across all of a target site's
    #: observations (the enforcement loop pops back to an empty stack
    #: between observations) instead of opening a fresh session — and
    #: re-blasting the shared constraint prefix — per observation.
    reuse_sessions: bool = True
    #: Persist and replay blasted-CNF skeletons
    #: (:class:`~repro.smt.bitblast.CnfSkeleton`) through the attached
    #: cache: the complete backend looks a canonical conjunct list up
    #: before translating and stores the translation after, so a warm run
    #: (or a sibling query in this one) skips the Tseitin step entirely.
    #: The replayed CNF is the same formula the fresh path would build, so
    #: statuses and models are identical
    #: (``repro campaign --no-cnf-skeletons`` disables it).
    enable_cnf_skeletons: bool = True
    #: Route one-shot complete solves through a native external SAT solver
    #: (PySAT) when the optional ``python-sat`` package is importable.  Off
    #: by default: the default configuration must never depend on an
    #: optional dependency, and cached verdicts are fingerprinted on this
    #: knob so pure and external stores never mix
    #: (``repro campaign --external-sat`` enables it,
    #: ``--no-external-sat`` is the explicit ablation spelling).
    #: Incremental sessions always use the pure core — its
    #: assumption/learned-clause API is what push/pop is built on.
    enable_external_sat: bool = False
    #: Shadow every external verdict with the pure CDCL core on the same
    #: CNF and raise on a SAT/UNSAT disagreement (UNKNOWN on either side is
    #: a budget artifact and compatible with anything).  CI's
    #: external-sat-smoke job runs with the shadow on; it costs a full pure
    #: solve per query, so it is a verification mode, not a speed mode.
    external_sat_shadow: bool = False

    def fingerprint(self) -> Tuple:
        """The knobs a cached verdict depends on.

        Part of every solver-cache key, and the validity stamp of a
        persistent :class:`~repro.smt.cachestore.CacheStore` — results
        computed under different budgets must never be conflated, within a
        run or across runs.  The incremental knobs are included because
        they steer *which* model a heuristic layer lands on (never the
        status), and cached models must stay deterministic per
        configuration.  Primitives only, so it survives a JSON round trip
        unchanged.
        """
        sampler = self.sampler
        return (
            self.enable_bitblast,
            self.bitblast_max_conflicts,
            self.bitblast_max_width,
            self.heuristic_max_checks,
            self.seed,
            sampler.random_attempts_per_sample,
            sampler.hill_climb_steps,
            sampler.seed,
            sampler.boundary_bias,
            sampler.perturbation_attempts,
            self.enable_decomposition,
            self.enable_sessions,
            self.enable_unsat_cores,
            self.reuse_sessions,
            self.enable_cnf_skeletons,
            self.enable_external_sat,
            self.external_sat_shadow,
        )


class SolverTelemetry:
    """Compatibility shim over the campaign-wide metrics registry.

    Historically this class held its own process-wide counters; they now
    live in :data:`repro.obs.metrics.METRICS` under ``solver.*`` names, so
    solver effort aggregates with every other layer's metrics, travels
    through the process-backend wire beside cache deltas, and shows up in
    trace reports.  The shim preserves the original API — ``record_*``
    methods, a flat :meth:`snapshot` dict with the legacy key names, and
    :meth:`reset` — for the benchmarks and tests built on it.

    :meth:`reset` is mark-based: the registry's counters stay monotonic
    (other observers may be mid-delta), and the shim subtracts its mark,
    so the observable semantics — counters monotonic between resets — are
    unchanged.  All methods are thread-safe.
    """

    #: legacy snapshot key -> registry counter name (snapshot order).
    _COUNTERS = {
        "queries": "solver.queries",
        "session_checks": "solver.session_checks",
        "bitblast_calls": "solver.bitblast_calls",
        "cdcl_conflicts": "solver.cdcl_conflicts",
        "cdcl_decisions": "solver.cdcl_decisions",
        "cdcl_propagations": "solver.cdcl_propagations",
        "cores_extracted": "solver.cores_extracted",
        "core_pruned_candidates": "solver.core_pruned_candidates",
        "sessions_reused": "solver.sessions_reused",
        "skeleton_hits": "solver.skeleton_hits",
        "skeleton_stores": "solver.skeleton_stores",
        "propagations": "solver.propagations",
        "sat_decisions": "solver.sat_decisions",
        "external_calls": "solver.external_calls",
    }

    #: Registry histogram behind the legacy ``bitblast_seconds`` float.
    _BITBLAST_HISTOGRAM = "solver.bitblast.seconds"

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = registry if registry is not None else METRICS
        self._mark: Dict[str, int] = {}
        self.reset()

    # ------------------------------------------------------------------
    def _raw(self) -> Dict[str, int]:
        """Registry-level raw values for every legacy key (ns for time)."""
        raw = {
            key: self._registry.counter(name).value
            for key, name in self._COUNTERS.items()
        }
        raw["bitblast_seconds"] = self._registry.histogram(
            self._BITBLAST_HISTOGRAM
        ).sum_nanos
        return raw

    def reset(self) -> None:
        self._mark = self._raw()

    # ------------------------------------------------------------------
    def record_query(self, session: bool) -> None:
        self._registry.counter("solver.queries").inc()
        if session:
            self._registry.counter("solver.session_checks").inc()

    def record_core_extracted(self) -> None:
        """An enforcement loop accumulated a new UNSAT core."""
        self._registry.counter("solver.cores_extracted").inc()

    def record_core_pruned(self) -> None:
        """An enforcement candidate query was answered by core subsumption."""
        self._registry.counter("solver.core_pruned_candidates").inc()

    def record_session_reuse(self) -> None:
        """A per-site session was reused for another observation."""
        self._registry.counter("solver.sessions_reused").inc()

    def record_skeleton_hit(self) -> None:
        """A bit-blast was replayed from a stored CNF skeleton."""
        self._registry.counter("solver.skeleton_hits").inc()

    def record_skeleton_store(self) -> None:
        """A fresh bit-blast's CNF skeleton was stored for reuse."""
        self._registry.counter("solver.skeleton_stores").inc()

    def record_bitblast(self, elapsed: float, result: Optional[SatResult]) -> None:
        self._registry.counter("solver.bitblast_calls").inc()
        self._registry.histogram(self._BITBLAST_HISTOGRAM).observe(elapsed)
        if result is not None:
            self._registry.counter("solver.cdcl_conflicts").inc(result.conflicts)
            self._registry.counter("solver.cdcl_decisions").inc(result.decisions)
            self._registry.counter("solver.cdcl_propagations").inc(
                result.propagations
            )
            # Flattened-loop work counters: wire-merged like every other
            # ``solver.*`` name, so the propagation/decision volume of the
            # SAT core is visible in ``campaign --json`` and trace reports
            # regardless of which complete backend ran.
            self._registry.counter("solver.propagations").inc(result.propagations)
            self._registry.counter("solver.sat_decisions").inc(result.decisions)

    def record_external_solve(self) -> None:
        """A complete solve ran on the external (PySAT) backend."""
        self._registry.counter("solver.external_calls").inc()

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        raw = self._raw()
        out: Dict[str, float] = {}
        for key in (
            "queries",
            "session_checks",
            "bitblast_calls",
            "bitblast_seconds",
            "cdcl_conflicts",
            "cdcl_decisions",
            "cdcl_propagations",
            "cores_extracted",
            "core_pruned_candidates",
            "sessions_reused",
            "skeleton_hits",
            "skeleton_stores",
            "propagations",
            "sat_decisions",
            "external_calls",
        ):
            value = raw[key] - self._mark.get(key, 0)
            if key == "bitblast_seconds":
                out[key] = round(value / 1e9, 6)
            else:
                out[key] = value
        return out


#: The process-wide telemetry instance (see :class:`SolverTelemetry`).
TELEMETRY = SolverTelemetry()


def _translate_core(
    core: Sequence[Term],
    canonical_conjuncts: Sequence[Term],
    conjuncts: Sequence[Term],
) -> Optional[Tuple[Term, ...]]:
    """Map an UNSAT core from canonical space back to the caller's terms.

    Canonicalization preserves positions (conjunct ``i`` rewrites to
    canonical conjunct ``i``), so each canonical core term maps back to the
    first original conjunct that produced it (cores are sets — when two
    conjuncts canonicalize identically, naming either one is sound).
    Returns ``None`` if a core term has no preimage (cannot happen through
    the positional pipeline; guarded so a plumbing regression degrades to
    "no core" instead of an unsound one).
    """
    back: Dict[Term, Term] = {}
    for original, canonical in zip(conjuncts, canonical_conjuncts):
        back.setdefault(canonical, original)
    translated: List[Term] = []
    for term in core:
        original = back.get(term)
        if original is None:
            return None
        translated.append(original)
    return tuple(dict.fromkeys(translated))

#: Signature of the complete-backend hook: conjuncts -> (status, model).
BitblastFn = Callable[[Sequence[Term]], Tuple[str, Optional[Model]]]


class _TrackedBackend:
    """Record whether a complete-backend hook produced a *tainted* verdict.

    Stored cache verdicts must be a pure function of the canonical system —
    that is what makes cached answers schedule- and run-independent.  A
    verdict derived through a *session's* incremental CDCL is not: the
    solver retains learned clauses, activities and phases from earlier
    checks, so the result depends on the session's private (but per-caller
    deterministic) history.  The store sites wrap the hook and skip caching
    any verdict whose derivation flowed through tainted state; verdicts
    decided by the pure layers, answered from the cache, or re-derived by
    the session's *fresh-solve fallbacks* (width clash, resource limits,
    budget exhaustion) are pure and remain storable.

    Taint is reported per call by the wrapped hook through its
    ``last_call_tainted`` attribute (unknown callables are conservatively
    treated as tainted) and propagates through nested wrappers, so a
    component-level tainted call also marks the enclosing whole-query
    wrapper.

    The wrapper also forwards the hook's per-call ``last_call_core`` (the
    UNSAT-core terms of a session's assumption-based CDCL, in the space of
    the conjuncts passed to that call), so core extraction survives the
    cache/decomposition plumbing between the session and the portfolio.
    """

    __slots__ = ("fn", "used", "last_call_tainted", "last_call_core")

    def __init__(self, fn: BitblastFn) -> None:
        self.fn = fn
        self.used = False
        self.last_call_tainted = False
        self.last_call_core: Optional[Tuple[Term, ...]] = None

    def __call__(self, conjuncts: Sequence[Term]) -> Tuple[str, Optional[Model]]:
        result = self.fn(conjuncts)
        self.last_call_tainted = getattr(self.fn, "last_call_tainted", True)
        self.last_call_core = getattr(self.fn, "last_call_core", None)
        self.used = self.used or self.last_call_tainted
        return result

    @classmethod
    def wrap(cls, fn: Optional[BitblastFn]) -> Optional["_TrackedBackend"]:
        return None if fn is None else cls(fn)


class PortfolioSolver:
    """Layered QF_BV solver: simplify → intervals → heuristics → sampling → CDCL.

    When a :class:`~repro.smt.cache.SolverCache` is supplied, queries are
    canonicalized (alpha-renamed over the hash-consed DAG) and the portfolio
    decides the canonical representative, so alpha-equivalent queries from
    sibling sites and repeated enforcement iterations share one verdict —
    at whole-query granularity first, then per connected component.
    """

    def __init__(
        self,
        config: Optional[SolverConfig] = None,
        cache: Optional[SolverCache] = None,
    ) -> None:
        self.config = config or SolverConfig()
        self.cache = cache
        self.query_count = 0
        self.stage_hits: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def check(self, constraints: Iterable[Term]) -> SolverResult:
        """Decide the conjunction of ``constraints``."""
        with TRACER.span("solve", session=False) as span:
            mark = METRICS.counter("solver.propagations").value
            started = time.perf_counter()
            self.query_count += 1
            TELEMETRY.record_query(session=False)
            constraint_list = [simplify(c) for c in constraints]
            stages: List[str] = []

            try:
                # Layer 1: simplification may already decide the query.
                stages.append("simplify")
                decided = self._decide_by_simplification(constraint_list)
                if decided is not None:
                    return self._finish(decided, started, stages)

                conjuncts: List[Term] = []
                for constraint in constraint_list:
                    conjuncts.extend(split_conjuncts(constraint))

                if self.cache is not None:
                    return self._check_cached(conjuncts, started, stages)
                return self._finish(
                    self._solve_conjuncts(conjuncts, stages), started, stages
                )
            finally:
                # Propagation-loop work attributed to this solve, so trace
                # reports can rank queries by SAT-core effort, not just wall.
                span.attrs["propagations"] = (
                    METRICS.counter("solver.propagations").value - mark
                )

    def open_session(self) -> "SolverSession":
        """Create an incremental push/pop session backed by this solver.

        Sessions are classification-transparent (same statuses as
        :meth:`check`, possibly different models) and not thread-safe;
        see :class:`SolverSession` for the full contract.
        """
        return SolverSession(self)

    def _check_session(self, session: "SolverSession") -> SolverResult:
        """Decide a session's conjunction (see :meth:`SolverSession.check`)."""
        with TRACER.span("solve", session=True) as span:
            mark = METRICS.counter("solver.propagations").value
            started = time.perf_counter()
            self.query_count += 1
            TELEMETRY.record_query(session=True)
            stages: List[str] = ["simplify"]
            conjuncts = list(session.conjuncts)

            try:
                decided = self._decide_by_simplification(conjuncts)
                if decided is not None:
                    return self._finish(decided, started, stages)
                if self.cache is not None:
                    return self._check_cached(
                        conjuncts, started, stages, bitblast_fn=session
                    )
                return self._finish(
                    self._solve_conjuncts(conjuncts, stages, session),
                    started,
                    stages,
                )
            finally:
                span.attrs["propagations"] = (
                    METRICS.counter("solver.propagations").value - mark
                )

    def solve_for_model(self, constraints: Iterable[Term]) -> Optional[Model]:
        """Return a model of the conjunction, or ``None`` if UNSAT/UNKNOWN."""
        result = self.check(constraints)
        return result.model if result.is_sat else None

    def sample_models(
        self,
        constraints: Iterable[Term],
        count: int,
        seed: Optional[int] = None,
    ) -> List[Model]:
        """Sample up to ``count`` models of the conjunction (with replacement)."""
        constraint_list = [simplify(c) for c in constraints]
        conjuncts: List[Term] = []
        for constraint in constraint_list:
            conjuncts.extend(split_conjuncts(constraint))
        variables = self._collect_variables(conjuncts)
        whole = b.band(*conjuncts) if conjuncts else b.TRUE
        config = SamplerConfig(
            random_attempts_per_sample=self.config.sampler.random_attempts_per_sample,
            hill_climb_steps=self.config.sampler.hill_climb_steps,
            seed=seed if seed is not None else self.config.sampler.seed,
            boundary_bias=self.config.sampler.boundary_bias,
            perturbation_attempts=self.config.sampler.perturbation_attempts,
        )
        sampler = ModelSampler(
            whole,
            variables,
            config=config,
            fallback_solve=lambda c: self.solve_for_model([c]),
        )
        return sampler.sample(count)

    # ------------------------------------------------------------------
    # Cached path
    # ------------------------------------------------------------------
    def _check_cached(
        self,
        conjuncts: List[Term],
        started: float,
        stages: List[str],
        bitblast_fn: Optional[BitblastFn] = None,
    ) -> SolverResult:
        """Answer the query through the shared cache.

        Hit or miss, the verdict is derived from the *canonical
        representative* of the query, so the answer is a pure function of
        the canonical system — independent of worker scheduling and of
        which alpha-variant of the system was solved first.
        """
        stages.append("cache")
        result = self._solve_through_cache(
            conjuncts,
            stages,
            bitblast_fn,
            lookup=self.cache.lookup,
            store=self.cache.store,
            reason="cache",
            solve=self._solve_conjuncts,
        )
        return self._finish(result, started, stages)

    def _solve_through_cache(
        self,
        conjuncts: List[Term],
        stages: List[str],
        bitblast_fn: Optional[BitblastFn],
        *,
        lookup,
        store,
        reason: str,
        solve,
    ) -> SolverResult:
        """The cache protocol shared by both granularities.

        Canonicalize, look up (verifying any translated SAT model against
        the actual conjuncts — a failure is treated as a miss and
        re-derived), solve the canonical representative on a miss, store
        the verdict unless the (history-dependent) session backend was
        actually invoked, and translate the answer back.  ``lookup`` /
        ``store`` select the whole-query or component table; ``solve``
        decides the canonical conjuncts (the decomposing pipeline for
        whole queries, the monolithic portfolio for one component).
        """
        system = self.cache.canonicalize(conjuncts, self._config_fingerprint())
        cached = lookup(system)
        if cached is not None:
            if cached.status != SolverStatus.SAT:
                stages.extend(cached.stages)
                return SolverResult(cached.status, reason=reason)
            model = system.translate_model(cached.canonical_model)
            if all(satisfies(c, model) for c in conjuncts):
                stages.extend(cached.stages)
                return SolverResult(
                    SolverStatus.SAT, model=model, reason=reason
                )
            # A stored model that does not survive translation means the
            # canonicalization missed a distinction; fall through and
            # re-derive (and overwrite) the entry.
            self.cache.note_invalid_hit()

        if self.config.enable_unsat_cores:
            # A stored canonical core whose conjuncts are a subset of this
            # system's is a proof: asserting a superset of a jointly
            # infeasible set stays infeasible.  Answer UNSAT without
            # solving and store the verdict like any other derivation
            # (it is a pure function of the canonical system).
            core = self.cache.match_core(system)
            if core is not None:
                stages.append("core-subsumed")
                store(
                    system,
                    CachedVerdict(
                        status=SolverStatus.UNSAT,
                        canonical_model=None,
                        reason="core-subsumed",
                        stages=("core-subsumed",),
                    ),
                )
                return SolverResult(
                    SolverStatus.UNSAT,
                    reason="core-subsumed",
                    unsat_core=_translate_core(
                        core, system.conjuncts, conjuncts
                    ),
                )

        mark = len(stages)
        tracked = _TrackedBackend.wrap(bitblast_fn)
        canonical_result = solve(list(system.conjuncts), stages, tracked)
        if (
            canonical_result.is_unsat
            and canonical_result.unsat_core
            and self.config.enable_unsat_cores
        ):
            # Cores are sound whatever derived them (even a session's
            # history-dependent CDCL: the certificate is about the terms,
            # not the search), so record them even for tainted verdicts.
            self.cache.add_core(system.key[0], canonical_result.unsat_core)
        if tracked is None or not tracked.used:
            store(
                system,
                CachedVerdict(
                    status=canonical_result.status,
                    canonical_model=canonical_result.model,
                    reason=canonical_result.reason,
                    stages=tuple(stages[mark:]),
                ),
            )
        result = SolverResult(
            canonical_result.status, reason=canonical_result.reason
        )
        if canonical_result.is_sat:
            result.model = system.translate_model(canonical_result.model)
        elif canonical_result.unsat_core is not None:
            # Canonicalization is positional (conjunct i renames to
            # canonical conjunct i), so a core over canonical terms maps
            # straight back to the caller's conjuncts.
            result.unsat_core = _translate_core(
                canonical_result.unsat_core, system.conjuncts, conjuncts
            )
        return result

    def _config_fingerprint(self) -> Tuple:
        """The configuration knobs a cached verdict depends on."""
        return self.config.fingerprint()

    # ------------------------------------------------------------------
    # Decomposed solving
    # ------------------------------------------------------------------
    def _solve_conjuncts(
        self,
        conjuncts: List[Term],
        stages: List[str],
        bitblast_fn: Optional[BitblastFn] = None,
    ) -> SolverResult:
        """Decide a simplified, split conjunction, decomposing if enabled.

        A single-component conjunction (the common case for enforcement
        queries, whose branch constraints all share variables with the
        target constraint) takes exactly the monolithic pipeline; a
        multi-component one is decided component-by-component and the
        models composed.  UNSAT in any component is UNSAT overall; an
        undecided component degrades the whole query to UNKNOWN unless
        some other component proves UNSAT.
        """
        if not self.config.enable_decomposition:
            return self._run_portfolio(conjuncts, stages, bitblast_fn)
        components = decompose(conjuncts)
        if len(components) <= 1:
            return self._solve_component(conjuncts, stages, bitblast_fn)

        stages.append("decompose")
        models: List[Model] = []
        unknown: Optional[SolverResult] = None
        for component in components:
            component_stages: List[str] = []
            result = self._solve_component(
                list(component.conjuncts), component_stages, bitblast_fn
            )
            for stage in component_stages:
                if stage not in stages:
                    stages.append(stage)
            if result.is_unsat:
                # The UNSAT component's core (or, failing that, its whole
                # conjunct list) is already a core of the whole query.
                return SolverResult(
                    SolverStatus.UNSAT,
                    reason=result.reason,
                    unsat_core=result.unsat_core or tuple(component.conjuncts),
                )
            if not result.is_sat:
                # Keep scanning: an UNSAT in a later component still decides
                # the whole query even when this one timed out.
                unknown = unknown or result
                continue
            models.append(result.model)
        if unknown is not None:
            return SolverResult(SolverStatus.UNKNOWN, reason=unknown.reason)

        composed = compose_models(models)
        try:
            if all(satisfies(c, composed) for c in conjuncts):
                return SolverResult(
                    SolverStatus.SAT, model=composed, reason="decompose"
                )
        except EvaluationError:
            pass
        # Composition can only fail if a component model was partial in a
        # way the component verification missed; fall back to the
        # monolithic pipeline rather than guessing.
        return self._run_portfolio(conjuncts, stages, bitblast_fn)

    def _solve_component(
        self,
        conjuncts: List[Term],
        stages: List[str],
        bitblast_fn: Optional[BitblastFn] = None,
    ) -> SolverResult:
        """Decide one connected component, through the component cache.

        The conjuncts are re-canonicalized even when they arrive already in
        whole-canonical form: first-application canonicalization is *not* a
        normal form (the commutative-operand tiebreak compares variable
        names, which the rename just changed), and the component key
        convention is the re-canonicalized one — the same convention every
        embedding of this component in any whole query computes, which is
        what makes cross-query component sharing line up.
        """
        if self.cache is None:
            return self._run_portfolio(conjuncts, stages, bitblast_fn)
        return self._solve_through_cache(
            conjuncts,
            stages,
            bitblast_fn,
            lookup=self.cache.lookup_component,
            store=self.cache.store_component,
            reason="component-cache",
            solve=self._run_portfolio,
        )

    # ------------------------------------------------------------------
    # The layered portfolio
    # ------------------------------------------------------------------
    def _run_portfolio(
        self,
        conjuncts: List[Term],
        stages: List[str],
        bitblast_fn: Optional[BitblastFn] = None,
    ) -> SolverResult:
        """Layers 2-5 over an already simplified, split conjunction."""
        variables = self._collect_variables(conjuncts)
        widths = {str(v.name): v.width for v in variables}

        # Layer 2: interval propagation (UNSAT proofs + bounds for later layers).
        stages.append("intervals")
        feasible, bounds = propagate_intervals(conjuncts, widths)
        if not feasible:
            # The contractor does not explain which conjuncts emptied the
            # box; the full (component-granularity) conjunct list is still
            # a sound core.
            return SolverResult(
                SolverStatus.UNSAT,
                reason="interval propagation",
                unsat_core=tuple(conjuncts),
            )
        point_model = self._point_model_if_determined(variables, bounds)
        if point_model is not None and all(
            satisfies(c, point_model) for c in conjuncts
        ):
            return SolverResult(
                SolverStatus.SAT, model=point_model, reason="interval point"
            )

        whole = b.band(*conjuncts) if conjuncts else b.TRUE

        # Layer 3: algebraic extreme-point heuristics.
        stages.append("heuristics")
        model = try_algebraic_solution(
            whole, variables, max_checks=self.config.heuristic_max_checks
        )
        if model is not None:
            return SolverResult(SolverStatus.SAT, model=model, reason="heuristics")

        # Layer 4: guided sampling.
        stages.append("sampling")
        sampler = ModelSampler(
            whole,
            variables,
            config=self.config.sampler,
            fallback_solve=None,
        )
        model = sampler.sample_one()
        if model is not None:
            return SolverResult(SolverStatus.SAT, model=model, reason="sampling")

        # Layer 5: complete bit-blasting backend.
        if self.config.enable_bitblast and self._blastable(conjuncts):
            stages.append("bitblast")
            status, model = (bitblast_fn or self._bitblast)(conjuncts)
            if status == SatStatus.SAT and model is not None:
                restricted = model.restricted_to(widths)
                return SolverResult(
                    SolverStatus.SAT, model=restricted, reason="bitblast"
                )
            if status == SatStatus.UNSAT:
                core = (
                    getattr(bitblast_fn, "last_call_core", None)
                    if bitblast_fn is not None
                    else None
                )
                return SolverResult(
                    SolverStatus.UNSAT,
                    reason="bitblast",
                    unsat_core=core or tuple(conjuncts),
                )

        return SolverResult(SolverStatus.UNKNOWN, reason="portfolio exhausted")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _finish(
        self, result: SolverResult, started: float, stages: List[str]
    ) -> SolverResult:
        result.elapsed_seconds = time.perf_counter() - started
        result.stages_tried = tuple(stages)
        self.stage_hits[result.reason] = self.stage_hits.get(result.reason, 0) + 1
        if result.is_sat and result.model is None:
            raise AssertionError("SAT result without a model")
        # Cores are an UNSAT-only, opt-out feature; strip anything a lower
        # layer attached when the knob is off (or on a non-UNSAT status).
        if result.unsat_core is not None and not (
            result.is_unsat and self.config.enable_unsat_cores
        ):
            result.unsat_core = None
        return result

    @staticmethod
    def _decide_by_simplification(constraints: Sequence[Term]) -> Optional[SolverResult]:
        all_true = True
        for constraint in constraints:
            if constraint.kind is TermKind.BOOL_CONST:
                if not constraint.value:
                    return SolverResult(
                        SolverStatus.UNSAT,
                        reason="simplify",
                        unsat_core=(constraint,),
                    )
            else:
                all_true = False
        if all_true:
            return SolverResult(SolverStatus.SAT, model=Model(), reason="simplify")
        return None

    @staticmethod
    def _collect_variables(conjuncts: Sequence[Term]) -> List[Term]:
        seen: Dict[str, Term] = {}
        for conjunct in conjuncts:
            for variable in conjunct.variables():
                if variable.is_bv:
                    seen.setdefault(str(variable.name), variable)
        return [seen[name] for name in sorted(seen)]

    @staticmethod
    def _point_model_if_determined(
        variables: Sequence[Term], bounds: Dict[str, Interval]
    ) -> Optional[Model]:
        model = Model()
        for variable in variables:
            interval = bounds.get(str(variable.name))
            if interval is None or not interval.is_point:
                return None
            model[str(variable.name)] = interval.lo
        return model if len(model) == len(variables) else None

    def _blastable(self, conjuncts: Sequence[Term]) -> bool:
        node_budget = 4000
        wide_multiplications = 0
        nodes = 0
        for conjunct in conjuncts:
            for term in conjunct.subterms():
                nodes += 1
                if nodes > node_budget:
                    return False
                if term.is_bv and term.width > self.config.bitblast_max_width:
                    return False
                if (
                    term.kind is TermKind.MUL
                    and term.width is not None
                    and term.width > 32
                    and not any(a.is_const for a in term.args)
                ):
                    wide_multiplications += 1
        # Each wide variable×variable multiplier costs thousands of clauses;
        # a pure-Python CDCL run over several of them will not finish in a
        # useful amount of time, so the portfolio degrades to UNKNOWN instead.
        return wide_multiplications <= 2

    def _complete_solve(self, cnf) -> SatResult:
        """Run the complete backend on a blasted CNF (one-shot path).

        The pure :class:`CDCLSolver` is the default.  When
        ``enable_external_sat`` is on and ``python-sat`` is importable the
        query runs on the external backend instead — with the optional
        shadow re-solving it on the pure core and refusing to continue on a
        SAT/UNSAT disagreement, so an external run can never classify
        differently without failing loudly.  Incremental sessions never
        route here; they are built on the pure core's assumption API.
        """
        budget = self.config.bitblast_max_conflicts
        if self.config.enable_external_sat:
            backend = external_backend(cnf, max_conflicts=budget)
            if backend is not None:
                result = backend.solve()
                TELEMETRY.record_external_solve()
                if self.config.external_sat_shadow:
                    pure = CDCLSolver(cnf, max_conflicts=budget).solve()
                    statuses = {result.status, pure.status}
                    if SatStatus.UNKNOWN not in statuses and len(statuses) > 1:
                        raise ExternalSatParityError(
                            f"external backend said {result.status}, "
                            f"pure CDCL said {pure.status}"
                        )
                return result
        return CDCLSolver(cnf, max_conflicts=budget).solve()

    def _bitblast(self, conjuncts: Sequence[Term]) -> Tuple[str, Optional[Model]]:
        if self.cache is not None and self.config.enable_cnf_skeletons:
            via_skeleton = self._bitblast_via_skeleton(conjuncts)
            if via_skeleton is not None:
                return via_skeleton
        started = time.perf_counter()
        try:
            blaster = BitBlaster()
            blaster.assert_all(conjuncts)
            result = self._complete_solve(blaster.cnf)
        except (BitBlastError, RecursionError, MemoryError):
            TELEMETRY.record_bitblast(time.perf_counter() - started, None)
            return SatStatus.UNKNOWN, None
        TELEMETRY.record_bitblast(time.perf_counter() - started, result)
        if result.status == SatStatus.SAT:
            return SatStatus.SAT, blaster.extract_model(result)
        return result.status, None

    def _bitblast_via_skeleton(
        self, conjuncts: Sequence[Term]
    ) -> Optional[Tuple[str, Optional[Model]]]:
        """Complete backend through the cache's CNF-skeleton table.

        Only *already-canonical* conjunct lists are eligible (the cached
        pipeline always hands the backend canonical conjuncts; the check
        is a cheap memoized re-canonicalization).  For those, blasting is
        a pure function of the interned conjunct list, so a stored
        skeleton rebuilds the exact CNF the fresh path would build —
        identical CDCL run, identical status and model, minus the Tseitin
        translation.  Returns ``None`` to defer to the fresh one-shot
        path: a non-canonical conjunct list (a session fallback in caller
        space), or a replayed model that fails verification (a plumbing
        regression must degrade to re-derivation, not a wrong model).
        """
        system = self.cache.canonicalize(
            list(conjuncts), self._config_fingerprint()
        )
        if system.conjuncts != tuple(conjuncts):
            return None
        skeleton = self.cache.lookup_cnf(system.conjuncts)
        started = time.perf_counter()
        if skeleton is None:
            try:
                blaster = BitBlaster()
                blaster.assert_all(system.conjuncts)
            except (BitBlastError, RecursionError, MemoryError):
                TELEMETRY.record_bitblast(time.perf_counter() - started, None)
                return SatStatus.UNKNOWN, None
            skeleton = blaster.skeleton()
            if self.cache.store_cnf(system.conjuncts, skeleton):
                TELEMETRY.record_skeleton_store()
            cnf = blaster.cnf
        else:
            TELEMETRY.record_skeleton_hit()
            cnf = skeleton.build_cnf()
        try:
            result = self._complete_solve(cnf)
        except (RecursionError, MemoryError):
            TELEMETRY.record_bitblast(time.perf_counter() - started, None)
            return SatStatus.UNKNOWN, None
        TELEMETRY.record_bitblast(time.perf_counter() - started, result)
        if result.status != SatStatus.SAT:
            return result.status, None
        model = skeleton.extract_model(result)
        try:
            if all(satisfies(c, model) for c in conjuncts):
                return SatStatus.SAT, model
        except EvaluationError:
            pass
        return None


class SolverSession:
    """An incremental solving session over one :class:`PortfolioSolver`.

    The session holds a stack of conjuncts manipulated with :meth:`push` /
    :meth:`pop` and decided with :meth:`check`; the enforcement loop pushes
    the target constraint once and then one branch-constraint delta per
    iteration instead of rebuilding (and re-simplifying, re-splitting,
    re-blasting) the whole conjunction list every time.

    The cheap portfolio layers and both cache granularities behave exactly
    as in :meth:`PortfolioSolver.check`; what is incremental is the
    complete backend: one persistent :class:`BitBlaster` translates only
    the conjuncts it has not seen before (terms are hash-consed, and
    canonicalized prefixes are stable across growing queries), and one
    persistent :class:`CDCLSolver` keeps its learned clauses, variable
    activity and saved phases across checks, asserting the current
    conjuncts through per-call assumptions.  Classification parity with
    the fresh-query path is the invariant: the incremental backend may
    find a different *model* but must not change the *status*.  SAT and
    UNSAT are semantic, so they can never flip; the one principled gap is
    the conflict-budget boundary, where inherited search state could make
    a timeout land differently — a session CDCL timeout therefore retries
    the pure one-shot backend (never less complete than fresh), and the
    registry-wide parity gates in the tests and ``bench_solver.py`` check
    the equality empirically.

    Sessions are not thread-safe; each worker drives its own.
    """

    def __init__(self, solver: PortfolioSolver) -> None:
        self.solver = solver
        self.check_count = 0
        #: Whether the most recent complete-backend call's verdict depended
        #: on session state (see :class:`_TrackedBackend`): ``True`` when
        #: the incremental CDCL decided it, ``False`` when a cheap layer
        #: or one of the fresh-solve fallbacks did.
        self.last_call_tainted = False
        #: UNSAT core of the most recent complete-backend call, as a subset
        #: of the conjunct terms that call received (``None`` unless the
        #: incremental CDCL returned UNSAT with cores enabled).  Read by
        #: the portfolio right after the call, like ``last_call_tainted``.
        self.last_call_core: Optional[Tuple[Term, ...]] = None
        self._conjuncts: List[Term] = []
        self._frames: List[int] = []
        self._blaster: Optional[BitBlaster] = None
        self._cdcl: Optional[CDCLSolver] = None
        #: name -> width of every bitvector variable the persistent blaster
        #: has seen.  The blaster keys variable bit-vectors by *name*, but
        #: component-canonical names restart at ``v000`` per component, so
        #: two components can reuse one name at different widths; such a
        #: clash must not reach (and corrupt) the shared blaster.
        self._var_widths: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of pushed (still-active) frames."""
        return len(self._frames)

    @property
    def conjuncts(self) -> Tuple[Term, ...]:
        """The currently asserted conjuncts (simplified and split)."""
        return tuple(self._conjuncts)

    def push(self, *constraints: Term) -> None:
        """Open a frame asserting ``constraints`` on top of the stack."""
        self._frames.append(len(self._conjuncts))
        for constraint in constraints:
            self._conjuncts.extend(split_conjuncts(simplify(constraint)))

    def pop(self) -> None:
        """Drop the most recent frame and its conjuncts.

        The persistent bit-blaster keeps the popped conjuncts' Tseitin
        definitions (they are unasserted and satisfiable, so retained
        learned clauses stay sound); re-pushing the same constraint later
        costs no new CNF.
        """
        if not self._frames:
            raise IndexError("pop from an empty solver session")
        del self._conjuncts[self._frames.pop():]

    def check(self) -> SolverResult:
        """Decide the conjunction of every pushed constraint.

        Parity invariant: the status is identical to what
        :meth:`PortfolioSolver.check` would return for the same conjuncts
        — only the model may differ.  An UNSAT result carries
        :attr:`SolverResult.unsat_core` (a subset of
        :attr:`conjuncts`) when cores are enabled; verdicts the
        incremental CDCL derives are answered but never stored in the
        shared cache (they depend on this session's history).
        """
        self.check_count += 1
        return self.solver._check_session(self)

    # ------------------------------------------------------------------
    def __call__(self, conjuncts: Sequence[Term]) -> Tuple[str, Optional[Model]]:
        """The session *is* its complete-backend hook (see ``_bitblast``)."""
        return self._bitblast(conjuncts)

    def _bitblast(self, conjuncts: Sequence[Term]) -> Tuple[str, Optional[Model]]:
        """Complete-backend hook: delta-blast + assumption-based CDCL.

        When a conjunct reuses a variable *name* the persistent blaster has
        already allocated at a different width (component-canonical names
        restart at ``v000`` per component), the call falls back to a fresh
        one-shot blast: the per-name bit-vectors of the shared blaster
        cannot represent both widths, and a collision would wrongly degrade
        a decidable query to UNKNOWN.
        """
        self.last_call_tainted = False
        self.last_call_core = None
        if self._width_clash(conjuncts):
            return self.solver._bitblast(conjuncts)
        started = time.perf_counter()
        config = self.solver.config
        try:
            if self._blaster is None:
                self._blaster = BitBlaster()
            assumptions, by_literal = self._blaster.assumptions_for(conjuncts)
            if self._cdcl is None:
                self._cdcl = CDCLSolver(
                    self._blaster.cnf, max_conflicts=config.bitblast_max_conflicts
                )
            result = self._cdcl.solve(assumptions=assumptions)
        except (BitBlastError, RecursionError, MemoryError):
            # The session's accumulated CNF blew a resource limit the
            # current (smaller) conjunction alone would not; same policy
            # as the budget case below — retry fresh.
            TELEMETRY.record_bitblast(time.perf_counter() - started, None)
            return self.solver._bitblast(conjuncts)
        TELEMETRY.record_bitblast(time.perf_counter() - started, result)
        if result.status == SatStatus.UNKNOWN:
            # The per-call conflict budget ran out under the session's
            # inherited search state (learned clauses, activities, phases).
            # Retry once with the pure one-shot backend: a session must
            # never be *less* complete than the fresh-query path.
            return self.solver._bitblast(conjuncts)
        self.last_call_tainted = True
        if result.status == SatStatus.SAT:
            return SatStatus.SAT, self._blaster.extract_model(result)
        if result.core and config.enable_unsat_cores:
            # Lift the assumption-literal core back to terms.  A literal
            # shared by several (hash-consed-identical after blasting)
            # conjuncts names all of them: asserting a superset of an
            # unsatisfiable set stays unsatisfiable.
            lifted: List[Term] = []
            for literal in result.core:
                lifted.extend(by_literal.get(literal, ()))
            self.last_call_core = tuple(dict.fromkeys(lifted))
        return result.status, None

    def _width_clash(self, conjuncts: Sequence[Term]) -> bool:
        """Whether ``conjuncts`` reuse a seen variable name at a new width.

        On no clash, the conjuncts' variables are recorded as seen.  The
        name keeps its first-seen width for the session's lifetime: the
        blaster's per-name bit-vectors can hold only one width, so later
        queries using the other width take the fresh one-shot backend —
        first width wins the incremental machinery, correctness never
        depends on which.
        """
        variables = [
            variable
            for conjunct in conjuncts
            for variable in conjunct.variables()
            if variable.is_bv
        ]
        for variable in variables:
            known = self._var_widths.get(str(variable.name))
            if known is not None and known != variable.width:
                return True
        for variable in variables:
            self._var_widths[str(variable.name)] = variable.width
        return False
