"""Bitvector SMT substrate used by DIODE in place of the Z3 solver.

The paper uses Z3 to decide quantifier-free bitvector constraints built from
the symbolic target expressions and branch conditions.  This package provides
the same capability from scratch:

* :mod:`repro.smt.terms` — a hash-consed bitvector/boolean term language.
* :mod:`repro.smt.builder` — ergonomic constructors (``bv``, ``add``, ``ult``
  ...).
* :mod:`repro.smt.simplify` — a rewriting simplifier and constant folder.
* :mod:`repro.smt.interval` — unsigned interval analysis with backward
  propagation, used both to prove unsatisfiability cheaply and to guide
  sampling.
* :mod:`repro.smt.bitblast`, :mod:`repro.smt.cnf`, :mod:`repro.smt.sat` — a
  complete decision procedure: Tseitin bit-blasting into CNF and a CDCL SAT
  solver.
* :mod:`repro.smt.sampler` — constraint-guided random model sampling (used to
  reproduce the paper's 200-input success-rate experiments).
* :mod:`repro.smt.solver` — the portfolio front end exposed to the rest of
  the system.
"""

from repro.smt.terms import Term, TermKind, BV, BOOL
from repro.smt.builder import (
    bv_const,
    bv_var,
    bool_const,
    bool_var,
    add,
    sub,
    mul,
    udiv,
    urem,
    neg,
    bvand,
    bvor,
    bvxor,
    bvnot,
    shl,
    lshr,
    ashr,
    zext,
    sext,
    extract,
    concat,
    ite,
    eq,
    ne,
    ult,
    ule,
    ugt,
    uge,
    slt,
    sle,
    sgt,
    sge,
    band,
    bor,
    bnot,
    implies,
)
from repro.smt.cache import SolverCache, SolverCacheStats, simplify_memo
from repro.smt.decompose import Component, compose_models, decompose
from repro.smt.evalmodel import Model, evaluate
from repro.smt.simplify import simplify
from repro.smt.interval import Interval, interval_of, propagate_intervals
from repro.smt.solver import (
    TELEMETRY,
    PortfolioSolver,
    SolverResult,
    SolverSession,
    SolverStatus,
)
from repro.smt.sampler import ModelSampler

__all__ = [
    "Term",
    "TermKind",
    "BV",
    "BOOL",
    "bv_const",
    "bv_var",
    "bool_const",
    "bool_var",
    "add",
    "sub",
    "mul",
    "udiv",
    "urem",
    "neg",
    "bvand",
    "bvor",
    "bvxor",
    "bvnot",
    "shl",
    "lshr",
    "ashr",
    "zext",
    "sext",
    "extract",
    "concat",
    "ite",
    "eq",
    "ne",
    "ult",
    "ule",
    "ugt",
    "uge",
    "slt",
    "sle",
    "sgt",
    "sge",
    "band",
    "bor",
    "bnot",
    "implies",
    "Model",
    "evaluate",
    "simplify",
    "Interval",
    "interval_of",
    "propagate_intervals",
    "PortfolioSolver",
    "SolverResult",
    "SolverSession",
    "SolverStatus",
    "TELEMETRY",
    "ModelSampler",
    "SolverCache",
    "SolverCacheStats",
    "simplify_memo",
    "Component",
    "compose_models",
    "decompose",
]
