"""Ergonomic constructors for the bitvector term language.

These functions perform light sort checking and canonicalisation (constant
wrapping, commutative argument ordering) but no real simplification — that is
the job of :mod:`repro.smt.simplify`.
"""

from __future__ import annotations

from typing import Union

from repro.smt.terms import (
    COMMUTATIVE_KINDS,
    Term,
    TermKind,
    truncate,
)

TermLike = Union[Term, int, bool]


class SortError(TypeError):
    """Raised when an operator is applied to operands of the wrong sort."""


# ----------------------------------------------------------------------
# Leaves
# ----------------------------------------------------------------------
def bv_const(value: int, width: int) -> Term:
    """A bitvector constant, wrapped to ``width`` bits."""
    if width <= 0:
        raise SortError(f"bitvector width must be positive, got {width}")
    return Term.make(TermKind.BV_CONST, width=width, value=truncate(value, width))


def bv_var(name: str, width: int) -> Term:
    """A bitvector variable."""
    if width <= 0:
        raise SortError(f"bitvector width must be positive, got {width}")
    return Term.make(TermKind.BV_VAR, width=width, name=name)


def bool_const(value: bool) -> Term:
    """The boolean constant ``true`` or ``false``."""
    return Term.make(TermKind.BOOL_CONST, value=1 if value else 0)


def bool_var(name: str) -> Term:
    """A boolean variable."""
    return Term.make(TermKind.BOOL_VAR, name=name)


TRUE = bool_const(True)
FALSE = bool_const(False)


# ----------------------------------------------------------------------
# Coercion helpers
# ----------------------------------------------------------------------
def _as_bv(value: TermLike, width: int) -> Term:
    if isinstance(value, Term):
        if not value.is_bv:
            raise SortError(f"expected a bitvector term, got {value.sort()}")
        return value
    if isinstance(value, bool):
        raise SortError("cannot coerce a bool into a bitvector operand")
    return bv_const(int(value), width)


def _as_bool(value: TermLike) -> Term:
    if isinstance(value, Term):
        if not value.is_bool:
            raise SortError(f"expected a boolean term, got {value.sort()}")
        return value
    return bool_const(bool(value))


def _binary_bv(kind: TermKind, a: TermLike, b: TermLike) -> Term:
    if not isinstance(a, Term) and not isinstance(b, Term):
        raise SortError("at least one operand must be a Term to infer the width")
    width = a.width if isinstance(a, Term) else b.width  # type: ignore[union-attr]
    left = _as_bv(a, width)
    right = _as_bv(b, width)
    if left.width != right.width:
        raise SortError(
            f"width mismatch: {left.width} vs {right.width} for {kind.value}"
        )
    if kind in COMMUTATIVE_KINDS and left._id > right._id:
        left, right = right, left
    return Term.make(kind, (left, right), width=left.width)


def _comparison(kind: TermKind, a: TermLike, b: TermLike) -> Term:
    if not isinstance(a, Term) and not isinstance(b, Term):
        raise SortError("at least one operand must be a Term to infer the width")
    width = a.width if isinstance(a, Term) else b.width  # type: ignore[union-attr]
    left = _as_bv(a, width)
    right = _as_bv(b, width)
    if left.width != right.width:
        raise SortError(
            f"width mismatch: {left.width} vs {right.width} for {kind.value}"
        )
    if kind in COMMUTATIVE_KINDS and left._id > right._id:
        left, right = right, left
    return Term.make(kind, (left, right))


# ----------------------------------------------------------------------
# Bitvector arithmetic
# ----------------------------------------------------------------------
def add(a: TermLike, b: TermLike) -> Term:
    """Modular addition."""
    return _binary_bv(TermKind.ADD, a, b)


def sub(a: TermLike, b: TermLike) -> Term:
    """Modular subtraction."""
    return _binary_bv(TermKind.SUB, a, b)


def mul(a: TermLike, b: TermLike) -> Term:
    """Modular multiplication."""
    return _binary_bv(TermKind.MUL, a, b)


def udiv(a: TermLike, b: TermLike) -> Term:
    """Unsigned division (division by zero yields the all-ones value)."""
    return _binary_bv(TermKind.UDIV, a, b)


def urem(a: TermLike, b: TermLike) -> Term:
    """Unsigned remainder (remainder by zero yields the dividend)."""
    return _binary_bv(TermKind.UREM, a, b)


def neg(a: Term) -> Term:
    """Two's-complement negation."""
    if not a.is_bv:
        raise SortError("neg expects a bitvector operand")
    return Term.make(TermKind.NEG, (a,), width=a.width)


# ----------------------------------------------------------------------
# Bitwise
# ----------------------------------------------------------------------
def bvand(a: TermLike, b: TermLike) -> Term:
    """Bitwise and."""
    return _binary_bv(TermKind.AND, a, b)


def bvor(a: TermLike, b: TermLike) -> Term:
    """Bitwise or."""
    return _binary_bv(TermKind.OR, a, b)


def bvxor(a: TermLike, b: TermLike) -> Term:
    """Bitwise exclusive or."""
    return _binary_bv(TermKind.XOR, a, b)


def bvnot(a: Term) -> Term:
    """Bitwise complement."""
    if not a.is_bv:
        raise SortError("bvnot expects a bitvector operand")
    return Term.make(TermKind.NOT, (a,), width=a.width)


def shl(a: TermLike, b: TermLike) -> Term:
    """Logical shift left (shift amounts >= width produce zero)."""
    return _binary_bv(TermKind.SHL, a, b)


def lshr(a: TermLike, b: TermLike) -> Term:
    """Logical shift right."""
    return _binary_bv(TermKind.LSHR, a, b)


def ashr(a: TermLike, b: TermLike) -> Term:
    """Arithmetic shift right."""
    return _binary_bv(TermKind.ASHR, a, b)


# ----------------------------------------------------------------------
# Structural
# ----------------------------------------------------------------------
def zext(a: Term, new_width: int) -> Term:
    """Zero-extend ``a`` to ``new_width`` bits."""
    if not a.is_bv:
        raise SortError("zext expects a bitvector operand")
    if new_width < a.width:
        raise SortError(f"zext target width {new_width} < operand width {a.width}")
    if new_width == a.width:
        return a
    return Term.make(TermKind.ZEXT, (a,), width=new_width, params=(new_width,))


def sext(a: Term, new_width: int) -> Term:
    """Sign-extend ``a`` to ``new_width`` bits."""
    if not a.is_bv:
        raise SortError("sext expects a bitvector operand")
    if new_width < a.width:
        raise SortError(f"sext target width {new_width} < operand width {a.width}")
    if new_width == a.width:
        return a
    return Term.make(TermKind.SEXT, (a,), width=new_width, params=(new_width,))


def extract(a: Term, high: int, low: int) -> Term:
    """Extract bits ``high`` down to ``low`` (inclusive)."""
    if not a.is_bv:
        raise SortError("extract expects a bitvector operand")
    if not (0 <= low <= high < a.width):
        raise SortError(f"extract [{high}:{low}] out of range for width {a.width}")
    return Term.make(
        TermKind.EXTRACT, (a,), width=high - low + 1, params=(high, low)
    )


def concat(high: Term, low: Term) -> Term:
    """Concatenate ``high`` above ``low``."""
    if not (high.is_bv and low.is_bv):
        raise SortError("concat expects bitvector operands")
    return Term.make(TermKind.CONCAT, (high, low), width=high.width + low.width)


def ite(cond: TermLike, then: TermLike, otherwise: TermLike) -> Term:
    """If-then-else over bitvectors (or booleans via :func:`bite`)."""
    cond_term = _as_bool(cond)
    if isinstance(then, Term) and then.is_bool:
        return bite(cond_term, then, otherwise)
    if not isinstance(then, Term) and not isinstance(otherwise, Term):
        raise SortError("ite needs at least one Term branch to infer the width")
    width = then.width if isinstance(then, Term) else otherwise.width  # type: ignore[union-attr]
    then_term = _as_bv(then, width)
    else_term = _as_bv(otherwise, width)
    if then_term.width != else_term.width:
        raise SortError("ite branches must have equal widths")
    return Term.make(TermKind.ITE, (cond_term, then_term, else_term), width=width)


# ----------------------------------------------------------------------
# Comparisons
# ----------------------------------------------------------------------
def eq(a: TermLike, b: TermLike) -> Term:
    """Equality (bitvector operands, boolean result)."""
    if isinstance(a, Term) and a.is_bool:
        return beq(a, _as_bool(b))
    if isinstance(b, Term) and b.is_bool:
        return beq(_as_bool(a), b)
    return _comparison(TermKind.EQ, a, b)


def ne(a: TermLike, b: TermLike) -> Term:
    """Disequality."""
    if isinstance(a, Term) and a.is_bool:
        return bnot(beq(a, _as_bool(b)))
    if isinstance(b, Term) and b.is_bool:
        return bnot(beq(_as_bool(a), b))
    return _comparison(TermKind.NE, a, b)


def ult(a: TermLike, b: TermLike) -> Term:
    """Unsigned less-than."""
    return _comparison(TermKind.ULT, a, b)


def ule(a: TermLike, b: TermLike) -> Term:
    """Unsigned less-or-equal."""
    return _comparison(TermKind.ULE, a, b)


def ugt(a: TermLike, b: TermLike) -> Term:
    """Unsigned greater-than."""
    return _comparison(TermKind.UGT, a, b)


def uge(a: TermLike, b: TermLike) -> Term:
    """Unsigned greater-or-equal."""
    return _comparison(TermKind.UGE, a, b)


def slt(a: TermLike, b: TermLike) -> Term:
    """Signed less-than."""
    return _comparison(TermKind.SLT, a, b)


def sle(a: TermLike, b: TermLike) -> Term:
    """Signed less-or-equal."""
    return _comparison(TermKind.SLE, a, b)


def sgt(a: TermLike, b: TermLike) -> Term:
    """Signed greater-than."""
    return _comparison(TermKind.SGT, a, b)


def sge(a: TermLike, b: TermLike) -> Term:
    """Signed greater-or-equal."""
    return _comparison(TermKind.SGE, a, b)


# ----------------------------------------------------------------------
# Boolean connectives
# ----------------------------------------------------------------------
def band(*operands: TermLike) -> Term:
    """Boolean conjunction of any arity (empty conjunction is ``true``)."""
    terms = [_as_bool(op) for op in operands]
    if not terms:
        return TRUE
    result = terms[0]
    for term in terms[1:]:
        left, right = result, term
        if left._id > right._id:
            left, right = right, left
        result = Term.make(TermKind.BAND, (left, right))
    return result


def bor(*operands: TermLike) -> Term:
    """Boolean disjunction of any arity (empty disjunction is ``false``)."""
    terms = [_as_bool(op) for op in operands]
    if not terms:
        return FALSE
    result = terms[0]
    for term in terms[1:]:
        left, right = result, term
        if left._id > right._id:
            left, right = right, left
        result = Term.make(TermKind.BOR, (left, right))
    return result


def bnot(a: TermLike) -> Term:
    """Boolean negation."""
    return Term.make(TermKind.BNOT, (_as_bool(a),))


def bxor(a: TermLike, b: TermLike) -> Term:
    """Boolean exclusive or."""
    left, right = _as_bool(a), _as_bool(b)
    if left._id > right._id:
        left, right = right, left
    return Term.make(TermKind.BXOR, (left, right))


def beq(a: TermLike, b: TermLike) -> Term:
    """Boolean equivalence (iff)."""
    return bnot(bxor(a, b))


def implies(a: TermLike, b: TermLike) -> Term:
    """Boolean implication."""
    return Term.make(TermKind.IMPLIES, (_as_bool(a), _as_bool(b)))


def bite(cond: TermLike, then: TermLike, otherwise: TermLike) -> Term:
    """If-then-else over booleans."""
    return Term.make(
        TermKind.BITE, (_as_bool(cond), _as_bool(then), _as_bool(otherwise))
    )
