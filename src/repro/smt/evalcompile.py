"""Compile term DAGs to straight-line Python evaluators.

Profiling the CDCL-hard enforcement chains shows the recursive interpreter
in :mod:`repro.smt.evalmodel` — not the SAT core — dominating wall clock:
the sampler's hill climber evaluates the same conjuncts millions of times,
paying dict-cache lookups, ``isinstance`` dispatch and Python call overhead
per DAG node on every evaluation.

This module removes that per-evaluation overhead by compiling a term once
into a generated Python function: a topological walk emits one assignment
statement per *distinct* subterm (so DAG sharing is preserved exactly like
the interpreter's memo cache), with all masks and width constants folded
into integer literals.  Evaluating a term then costs one function call and
a handful of arithmetic bytecodes.

The generated code mirrors :func:`repro.smt.evalmodel._eval_uncached`
expression for expression — same wrap-around semantics, same division and
shift edge cases, same error message for unassigned variables.  A
hypothesis differential test pins the two implementations to each other;
classification parity across the campaign depends on them never diverging.

Compiled functions are cached by the term's intern id (ids are allocated
monotonically and never reused, so entries can never alias a different
term).  Terms whose kind the compiler does not know yield ``None`` and the
caller falls back to the interpreter.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from repro.smt.terms import Term, TermKind, mask

#: Compiled evaluators (or ``None`` for uncompilable terms) by term id.
_COMPILED: Dict[int, Optional[Callable[[Mapping[str, int]], int]]] = {}


def compiled_evaluator(
    term: Term,
) -> Optional[Callable[[Mapping[str, int]], int]]:
    """Return a compiled evaluator for ``term`` (``None`` if uncompilable)."""
    term_id = term._id
    try:
        return _COMPILED[term_id]
    except KeyError:
        pass
    try:
        fn = _compile(term)
    except _CompileError:
        fn = None
    _COMPILED[term_id] = fn
    return fn


def clear_compiled_cache() -> None:
    """Drop all compiled evaluators (used by tests to bound memory)."""
    _COMPILED.clear()


class _CompileError(Exception):
    """Internal: the term uses a kind the compiler does not handle."""


def _signed(expr: str, width: int) -> str:
    """Emit the two's-complement reinterpretation of an unsigned value."""
    half = 1 << (width - 1)
    top = 1 << width
    return f"(({expr} - {top}) if {expr} >= {half} else {expr})"


def _compile(term: Term) -> Callable[[Mapping[str, int]], int]:
    # Iterative topological order over the DAG, children before parents.
    order: List[Term] = []
    state: Dict[int, int] = {}  # id -> 0 visiting, 1 done
    stack: List[Term] = [term]
    while stack:
        node = stack[-1]
        node_state = state.get(node._id)
        if node_state is None:
            state[node._id] = 0
            for arg in reversed(node.args):
                if state.get(arg._id) != 1:
                    stack.append(arg)
        else:
            stack.pop()
            if node_state == 0:
                state[node._id] = 1
                order.append(node)

    names: Dict[int, str] = {}
    lines: List[str] = ["def _compiled(_m):"]

    def ref(node: Term) -> str:
        return names[node._id]

    for index, node in enumerate(order):
        out = f"_t{index}"
        kind = node.kind
        width = node.width
        args = node.args

        if kind is TermKind.BV_CONST or kind is TermKind.BOOL_CONST:
            names[node._id] = repr(int(node.value))
            continue
        if kind is TermKind.BV_VAR:
            key = repr(node.name)
            message = repr(f"unassigned bitvector variable {node.name!r}")
            lines.append(f"    if {key} not in _m:")
            lines.append(f"        raise _EvaluationError({message})")
            lines.append(f"    {out} = int(_m[{key}]) & {mask(width)}")
            names[node._id] = out
            continue
        if kind is TermKind.BOOL_VAR:
            key = repr(node.name)
            message = repr(f"unassigned boolean variable {node.name!r}")
            lines.append(f"    if {key} not in _m:")
            lines.append(f"        raise _EvaluationError({message})")
            lines.append(f"    {out} = 1 if _m[{key}] else 0")
            names[node._id] = out
            continue

        a = ref(args[0]) if args else ""
        b = ref(args[1]) if len(args) > 1 else ""
        c = ref(args[2]) if len(args) > 2 else ""

        # Bitvector arithmetic.
        if kind is TermKind.ADD:
            expr = f"({a} + {b}) & {mask(width)}"
        elif kind is TermKind.SUB:
            expr = f"({a} - {b}) & {mask(width)}"
        elif kind is TermKind.MUL:
            expr = f"({a} * {b}) & {mask(width)}"
        elif kind is TermKind.UDIV:
            expr = f"{mask(width)} if {b} == 0 else ({a} // {b}) & {mask(width)}"
        elif kind is TermKind.UREM:
            expr = f"{a} if {b} == 0 else ({a} % {b}) & {mask(width)}"
        elif kind is TermKind.NEG:
            expr = f"(-{a}) & {mask(width)}"
        # Bitwise.
        elif kind is TermKind.AND:
            expr = f"{a} & {b}"
        elif kind is TermKind.OR:
            expr = f"{a} | {b}"
        elif kind is TermKind.XOR:
            expr = f"{a} ^ {b}"
        elif kind is TermKind.NOT:
            expr = f"(~{a}) & {mask(width)}"
        elif kind is TermKind.SHL:
            expr = f"0 if {b} >= {width} else ({a} << {b}) & {mask(width)}"
        elif kind is TermKind.LSHR:
            expr = f"0 if {b} >= {width} else {a} >> {b}"
        elif kind is TermKind.ASHR:
            shift = f"({b} if {b} < {width} else {width - 1})"
            expr = f"({_signed(a, args[0].width)} >> {shift}) & {mask(width)}"
        # Structural.
        elif kind is TermKind.ZEXT:
            names[node._id] = a  # zero-extension of an unsigned value is a no-op
            continue
        elif kind is TermKind.SEXT:
            expr = f"{_signed(a, args[0].width)} & {mask(width)}"
        elif kind is TermKind.EXTRACT:
            high, low = node.params
            expr = f"({a} >> {low}) & {mask(high - low + 1)}"
        elif kind is TermKind.CONCAT:
            expr = f"({a} << {args[1].width}) | {b}"
        elif kind is TermKind.ITE or kind is TermKind.BITE:
            expr = f"{b} if {a} else {c}"
        # Comparisons.
        elif kind is TermKind.EQ:
            expr = f"1 if {a} == {b} else 0"
        elif kind is TermKind.NE:
            expr = f"1 if {a} != {b} else 0"
        elif kind is TermKind.ULT:
            expr = f"1 if {a} < {b} else 0"
        elif kind is TermKind.ULE:
            expr = f"1 if {a} <= {b} else 0"
        elif kind is TermKind.UGT:
            expr = f"1 if {a} > {b} else 0"
        elif kind is TermKind.UGE:
            expr = f"1 if {a} >= {b} else 0"
        elif kind in (TermKind.SLT, TermKind.SLE, TermKind.SGT, TermKind.SGE):
            opw = args[0].width
            op = {
                TermKind.SLT: "<",
                TermKind.SLE: "<=",
                TermKind.SGT: ">",
                TermKind.SGE: ">=",
            }[kind]
            expr = f"1 if {_signed(a, opw)} {op} {_signed(b, opw)} else 0"
        # Boolean connectives.
        elif kind is TermKind.BAND:
            expr = f"{a} & {b}"
        elif kind is TermKind.BOR:
            expr = f"{a} | {b}"
        elif kind is TermKind.BNOT:
            expr = f"1 - {a}"
        elif kind is TermKind.BXOR:
            expr = f"{a} ^ {b}"
        elif kind is TermKind.IMPLIES:
            expr = f"1 if (not {a}) or {b} else 0"
        else:
            raise _CompileError(f"cannot compile term kind {kind}")

        lines.append(f"    {out} = {expr}")
        names[node._id] = out

    lines.append(f"    return {ref(term)}")
    source = "\n".join(lines)

    from repro.smt.evalmodel import EvaluationError

    namespace: Dict[str, object] = {"_EvaluationError": EvaluationError}
    exec(compile(source, "<term-eval>", "exec"), namespace)
    return namespace["_compiled"]  # type: ignore[return-value]
