"""Connected-component decomposition of constraint conjunctions.

Two conjuncts of a query interact only if they share a variable, so a
conjunction splits into the connected components of its variable-sharing
graph: within a component every conjunct is (transitively) linked to every
other through shared variables; across components the variable sets are
disjoint.  Each component can therefore be decided independently —

* the conjunction is UNSAT iff *some* component is UNSAT,
* a model of the conjunction is exactly a union of per-component models
  (the variable sets are disjoint, so the union is well defined and every
  conjunct sees precisely the assignment its own component produced).

The solving stack uses this in two ways: the portfolio solves components
separately (smaller bit-blasts, tighter interval boxes), and the solver
cache stores verdicts at component granularity, so a component shared by
two *different* whole queries — sibling target sites, successive
enforcement iterations, multi-site screening conjunctions — is decided
once.

Decomposition is deterministic: components are ordered by the position of
their first conjunct in the input, and conjuncts keep their original
relative order inside each component, so the decomposed solve is a pure
function of the conjunct list like everything else in the solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.smt.evalmodel import Model
from repro.smt.terms import Term


@dataclass(frozen=True)
class Component:
    """One connected component of a conjunction's variable-sharing graph."""

    #: The component's conjuncts, in their original relative order.
    conjuncts: Tuple[Term, ...]
    #: Names of every variable (bitvector or boolean) the component touches,
    #: sorted.  Empty for a variable-free conjunct.
    variables: Tuple[str, ...]


def decompose(conjuncts: Sequence[Term]) -> List[Component]:
    """Split ``conjuncts`` into independent connected components.

    Conjuncts are joined through shared variable *names* (union-find over
    the variable-sharing graph); a variable-free conjunct shares nothing and
    forms a singleton component of its own.
    """
    conjuncts = list(conjuncts)
    parent = list(range(len(conjuncts)))

    def find(index: int) -> int:
        root = index
        while parent[root] != root:
            root = parent[root]
        while parent[index] != root:  # path compression
            parent[index], index = root, parent[index]
        return root

    def union(left: int, right: int) -> None:
        left, right = find(left), find(right)
        if left != right:
            parent[max(left, right)] = min(left, right)

    names_of: List[Tuple[str, ...]] = []
    owner: Dict[str, int] = {}
    for index, conjunct in enumerate(conjuncts):
        names = tuple(sorted(str(v.name) for v in conjunct.variables()))
        names_of.append(names)
        for name in names:
            first = owner.setdefault(name, index)
            if first != index:
                union(first, index)

    groups: Dict[int, List[int]] = {}
    for index in range(len(conjuncts)):
        groups.setdefault(find(index), []).append(index)

    components: List[Component] = []
    for _root, members in sorted(groups.items(), key=lambda item: item[1][0]):
        variables = sorted({name for index in members for name in names_of[index]})
        components.append(
            Component(
                conjuncts=tuple(conjuncts[index] for index in members),
                variables=tuple(variables),
            )
        )
    return components


def compose_models(models: Iterable[Model]) -> Model:
    """Union per-component models into one whole-query model.

    Components have pairwise-disjoint variable sets, so the union never
    overwrites an assignment.
    """
    composed = Model()
    for model in models:
        composed.update(model.as_dict())
    return composed
