"""Models and term evaluation.

A :class:`Model` assigns integer values to bitvector variables (and booleans
to boolean variables).  :func:`evaluate` computes the concrete value of any
term under such an assignment, using the same wrap-around machine semantics
as the concrete interpreter in :mod:`repro.exec.values`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Union

from repro.smt import evalcompile
from repro.smt.terms import Term, TermKind, mask, to_signed, truncate


class EvaluationError(ValueError):
    """Raised when a term cannot be evaluated (e.g. an unassigned variable)."""


class Model:
    """An assignment of values to variables.

    Values are stored by variable *name*; widths are validated lazily when a
    term is evaluated.
    """

    def __init__(self, assignment: Optional[Mapping[str, int]] = None) -> None:
        self._assignment: Dict[str, int] = dict(assignment or {})

    # ------------------------------------------------------------------
    # Mapping-like interface
    # ------------------------------------------------------------------
    def __contains__(self, name: Union[str, Term]) -> bool:
        return self._name_of(name) in self._assignment

    def __getitem__(self, name: Union[str, Term]) -> int:
        return self._assignment[self._name_of(name)]

    def __setitem__(self, name: Union[str, Term], value: int) -> None:
        self._assignment[self._name_of(name)] = int(value)

    def __iter__(self):
        return iter(self._assignment)

    def __len__(self) -> int:
        return len(self._assignment)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Model):
            return NotImplemented
        return self._assignment == other._assignment

    def __hash__(self) -> int:
        return hash(frozenset(self._assignment.items()))

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v}" for k, v in sorted(self._assignment.items()))
        return f"Model({items})"

    @staticmethod
    def _name_of(name: Union[str, Term]) -> str:
        if isinstance(name, Term):
            if not name.is_var:
                raise EvaluationError("model keys must be variables or names")
            return str(name.name)
        return name

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def get(self, name: Union[str, Term], default: Optional[int] = None) -> Optional[int]:
        """Return the value assigned to ``name`` or ``default``."""
        return self._assignment.get(self._name_of(name), default)

    def copy(self) -> "Model":
        """Return an independent copy of this model."""
        return Model(self._assignment)

    def as_dict(self) -> Dict[str, int]:
        """Return the assignment as a plain dictionary."""
        return dict(self._assignment)

    def update(self, other: Mapping[str, int]) -> None:
        """Merge ``other`` into this model, overwriting existing keys."""
        for key, value in other.items():
            self._assignment[key] = int(value)

    def restricted_to(self, names: Iterable[str]) -> "Model":
        """Return a model containing only the listed variable names."""
        keep = set(names)
        return Model({k: v for k, v in self._assignment.items() if k in keep})


#: When true (the default), :func:`evaluate` dispatches through the
#: straight-line compiled evaluators of :mod:`repro.smt.evalcompile`.
#: :func:`repro.smt.hotpath.legacy_hot_path` flips this off so benchmarks
#: can measure the recursive interpreter as the "before" arm; the
#: differential tests pin both paths to identical results.
USE_COMPILED = True


def evaluate(term: Term, model: Union[Model, Mapping[str, int]]) -> int:
    """Evaluate ``term`` under ``model``.

    Bitvector terms evaluate to unsigned Python integers in ``[0, 2^w)``;
    boolean terms evaluate to ``0`` or ``1``.
    """
    if USE_COMPILED:
        fn = evalcompile.compiled_evaluator(term)
        if fn is not None:
            # Compiled code only reads the mapping, so the model's own dict
            # can be passed without the defensive copy the interpreter makes.
            lookup = model._assignment if isinstance(model, Model) else model
            return fn(lookup)
    if isinstance(model, Model):
        lookup = model.as_dict()
    else:
        lookup = dict(model)
    cache: Dict[int, int] = {}
    return _eval(term, lookup, cache)


def _eval(term: Term, model: Mapping[str, int], cache: Dict[int, int]) -> int:
    cached = cache.get(id(term))
    if cached is not None:
        return cached
    value = _eval_uncached(term, model, cache)
    cache[id(term)] = value
    return value


def _eval_uncached(term: Term, model: Mapping[str, int], cache: Dict[int, int]) -> int:
    kind = term.kind
    width = term.width

    if kind is TermKind.BV_CONST or kind is TermKind.BOOL_CONST:
        return int(term.value)
    if kind is TermKind.BV_VAR:
        if term.name not in model:
            raise EvaluationError(f"unassigned bitvector variable {term.name!r}")
        return truncate(int(model[term.name]), width)
    if kind is TermKind.BOOL_VAR:
        if term.name not in model:
            raise EvaluationError(f"unassigned boolean variable {term.name!r}")
        return 1 if model[term.name] else 0

    args = [_eval(a, model, cache) for a in term.args]

    # Bitvector arithmetic.
    if kind is TermKind.ADD:
        return truncate(args[0] + args[1], width)
    if kind is TermKind.SUB:
        return truncate(args[0] - args[1], width)
    if kind is TermKind.MUL:
        return truncate(args[0] * args[1], width)
    if kind is TermKind.UDIV:
        return mask(width) if args[1] == 0 else truncate(args[0] // args[1], width)
    if kind is TermKind.UREM:
        return args[0] if args[1] == 0 else truncate(args[0] % args[1], width)
    if kind is TermKind.NEG:
        return truncate(-args[0], width)

    # Bitwise.
    if kind is TermKind.AND:
        return args[0] & args[1]
    if kind is TermKind.OR:
        return args[0] | args[1]
    if kind is TermKind.XOR:
        return args[0] ^ args[1]
    if kind is TermKind.NOT:
        return truncate(~args[0], width)
    if kind is TermKind.SHL:
        shift = args[1]
        return 0 if shift >= width else truncate(args[0] << shift, width)
    if kind is TermKind.LSHR:
        shift = args[1]
        return 0 if shift >= width else args[0] >> shift
    if kind is TermKind.ASHR:
        shift = min(args[1], width - 1) if args[1] >= width else args[1]
        signed = to_signed(args[0], term.args[0].width)
        return truncate(signed >> shift, width)

    # Structural.
    if kind is TermKind.ZEXT:
        return args[0]
    if kind is TermKind.SEXT:
        return truncate(to_signed(args[0], term.args[0].width), width)
    if kind is TermKind.EXTRACT:
        high, low = term.params
        return (args[0] >> low) & mask(high - low + 1)
    if kind is TermKind.CONCAT:
        return (args[0] << term.args[1].width) | args[1]
    if kind is TermKind.ITE:
        return args[1] if args[0] else args[2]

    # Comparisons.
    if kind is TermKind.EQ:
        return 1 if args[0] == args[1] else 0
    if kind is TermKind.NE:
        return 1 if args[0] != args[1] else 0
    if kind is TermKind.ULT:
        return 1 if args[0] < args[1] else 0
    if kind is TermKind.ULE:
        return 1 if args[0] <= args[1] else 0
    if kind is TermKind.UGT:
        return 1 if args[0] > args[1] else 0
    if kind is TermKind.UGE:
        return 1 if args[0] >= args[1] else 0
    opw = term.args[0].width if term.args else None
    if kind is TermKind.SLT:
        return 1 if to_signed(args[0], opw) < to_signed(args[1], opw) else 0
    if kind is TermKind.SLE:
        return 1 if to_signed(args[0], opw) <= to_signed(args[1], opw) else 0
    if kind is TermKind.SGT:
        return 1 if to_signed(args[0], opw) > to_signed(args[1], opw) else 0
    if kind is TermKind.SGE:
        return 1 if to_signed(args[0], opw) >= to_signed(args[1], opw) else 0

    # Boolean connectives.
    if kind is TermKind.BAND:
        return args[0] & args[1]
    if kind is TermKind.BOR:
        return args[0] | args[1]
    if kind is TermKind.BNOT:
        return 1 - args[0]
    if kind is TermKind.BXOR:
        return args[0] ^ args[1]
    if kind is TermKind.IMPLIES:
        return 1 if (not args[0]) or args[1] else 0
    if kind is TermKind.BITE:
        return args[1] if args[0] else args[2]

    raise EvaluationError(f"cannot evaluate term kind {kind}")


def satisfies(constraint: Term, model: Union[Model, Mapping[str, int]]) -> bool:
    """Whether ``model`` makes the boolean ``constraint`` true."""
    if not constraint.is_bool:
        raise EvaluationError("satisfies() expects a boolean constraint")
    return evaluate(constraint, model) == 1
