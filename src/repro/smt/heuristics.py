"""Algebraic heuristics for overflow constraints.

The target constraints DIODE generates have a very regular shape: an
arithmetic expression over a handful of input fields must exceed the range of
its machine width (directly, or in one of its subexpressions).  Before paying
for bit-blasting, the portfolio solver tries a few algebraic moves that solve
the common shapes instantly:

* For ``a * b`` overflowing ``w`` bits with ``a`` and ``b`` bounded by sanity
  checks, pick the largest admissible values and check whether the product
  wraps.
* For sums/shifted sums, push every free field to the top of its admissible
  interval.
* For equalities pinning a field (blocking checks), substitute the pinned
  value and retry.

These heuristics never claim unsatisfiability — they only try to produce a
model quickly; failure simply defers to the next portfolio layer.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

from repro.smt.evalmodel import Model, satisfies
from repro.smt.interval import Interval, propagate_intervals
from repro.smt.sampler import split_conjuncts
from repro.smt.terms import Term, TermKind, mask


def _variables_of(constraints: Sequence[Term]) -> List[Term]:
    seen: Dict[str, Term] = {}
    for constraint in constraints:
        for variable in constraint.variables():
            if variable.is_bv:
                seen.setdefault(str(variable.name), variable)
    return list(seen.values())


def extreme_point_models(
    constraint: Term,
    variables: Optional[Sequence[Term]] = None,
    rng: Optional[random.Random] = None,
) -> Iterable[Model]:
    """Yield candidate models built from interval extreme points.

    The candidates are the Cartesian "corners" of the propagated intervals
    (capped combinatorially), plus a few mixed corner/midpoint combinations.
    """
    rng = rng or random.Random(0)
    conjuncts = split_conjuncts(constraint)
    if variables is None:
        variables = _variables_of(conjuncts)
    widths = {str(v.name): v.width for v in variables}
    feasible, bounds = propagate_intervals(conjuncts, widths)
    if not feasible:
        return
    names = [str(v.name) for v in variables]

    def candidates_for(name: str, width: int) -> List[int]:
        interval = bounds.get(name, Interval.full(width))
        if interval.is_empty:
            interval = Interval.full(width)
        points = {interval.lo, interval.hi}
        if interval.hi > interval.lo:
            points.add(interval.hi - 1)
            points.add((interval.lo + interval.hi) // 2)
        for shift in (7, 8, 15, 16, 23, 24, 31):
            boundary = 1 << shift
            if interval.lo <= boundary <= interval.hi:
                points.add(boundary)
                points.add(boundary - 1)
        # Descending order: overflow constraints are satisfied at the top of
        # the admissible box, so the most informative corner — every variable
        # at its maximum — is tried first (this also mirrors how an SMT
        # solver's first model for "x is huge" tends to look).
        return sorted(points, reverse=True)

    per_variable = {
        name: candidates_for(name, widths[name]) for name in names
    }

    # Enumerate corners breadth-first but cap the total number of candidates.
    max_candidates = 512
    produced = 0
    indices = [0] * len(names)

    def model_from(choice: List[int]) -> Model:
        model = Model()
        for name, index in zip(names, choice):
            options = per_variable[name]
            model[name] = options[index % len(options)]
        return model

    # Deterministic sweep over the first few corners.
    import itertools

    for combo in itertools.product(*(range(len(per_variable[n])) for n in names)):
        yield model_from(list(combo))
        produced += 1
        if produced >= max_candidates:
            break

    # Randomised mixtures for larger spaces.
    for _ in range(128):
        combo = [rng.randrange(len(per_variable[n])) for n in names]
        yield model_from(combo)


def try_algebraic_solution(
    constraint: Term,
    variables: Optional[Sequence[Term]] = None,
    rng: Optional[random.Random] = None,
    max_checks: int = 768,
) -> Optional[Model]:
    """Try to find a model of ``constraint`` using extreme-point candidates."""
    checks = 0
    for candidate in extreme_point_models(constraint, variables, rng):
        if satisfies(constraint, candidate):
            return candidate
        checks += 1
        if checks >= max_checks:
            break
    return None


def overflow_witness_hint(expression: Term, width: int) -> Dict[str, int]:
    """Suggest per-variable values likely to make ``expression`` exceed ``width`` bits.

    Used to seed the sampler: for multiplicative expressions the hint assigns
    each free variable a value around ``2^(width/k)`` where ``k`` is the
    number of multiplicative factors, so their product lands just past the
    wrap-around point.
    """
    variables = [v for v in expression.variables() if v.is_bv]
    if not variables:
        return {}
    factor_count = max(1, _count_multiplicative_factors(expression))
    per_factor_bits = max(1, (width // factor_count) + 1)
    hint: Dict[str, int] = {}
    for variable in variables:
        target = min(mask(variable.width), (1 << per_factor_bits) - 1)
        hint[str(variable.name)] = target
    return hint


def _count_multiplicative_factors(expression: Term) -> int:
    if expression.kind is TermKind.MUL:
        return _count_multiplicative_factors(
            expression.args[0]
        ) + _count_multiplicative_factors(expression.args[1])
    if expression.kind in (TermKind.ZEXT, TermKind.SEXT, TermKind.EXTRACT):
        return _count_multiplicative_factors(expression.args[0])
    return 1
