"""Hash-consed bitvector / boolean term language.

Terms form an immutable DAG.  Structurally identical terms are interned, so
identity comparison (``is`` / ``id``) is equivalent to structural equality,
which keeps the simplifier, interval analysis and bit-blaster fast.

The sort of a term is either :data:`BOOL` or a bitvector of a given width
(``term.width``).  Machine arithmetic is modular: every operator wraps its
result to the operand width, matching the hardware semantics the paper's
target constraints rely on ("the target constraint faithfully represents
integer arithmetic as implemented in the hardware").
"""

from __future__ import annotations

import enum
import threading
from typing import Dict, Iterable, Optional, Tuple

#: Sort marker for boolean terms (``Term.width is None``).
BOOL = "bool"

#: Sort marker prefix for bitvector terms; the concrete sort is the width.
BV = "bv"


class TermKind(enum.Enum):
    """Operator kinds of the term language."""

    # Leaves.
    BV_CONST = "bv_const"
    BV_VAR = "bv_var"
    BOOL_CONST = "bool_const"
    BOOL_VAR = "bool_var"

    # Bitvector arithmetic (modular, unsigned representation).
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    UDIV = "udiv"
    UREM = "urem"
    NEG = "neg"

    # Bitwise.
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"

    # Structural.
    ZEXT = "zext"
    SEXT = "sext"
    EXTRACT = "extract"
    CONCAT = "concat"
    ITE = "ite"

    # Comparisons (bitvector -> bool).
    EQ = "eq"
    NE = "ne"
    ULT = "ult"
    ULE = "ule"
    UGT = "ugt"
    UGE = "uge"
    SLT = "slt"
    SLE = "sle"
    SGT = "sgt"
    SGE = "sge"

    # Boolean connectives.
    BAND = "band"
    BOR = "bor"
    BNOT = "bnot"
    BXOR = "bxor"
    IMPLIES = "implies"
    BITE = "bite"


#: Kinds whose result sort is boolean.
BOOL_KINDS = frozenset(
    {
        TermKind.BOOL_CONST,
        TermKind.BOOL_VAR,
        TermKind.EQ,
        TermKind.NE,
        TermKind.ULT,
        TermKind.ULE,
        TermKind.UGT,
        TermKind.UGE,
        TermKind.SLT,
        TermKind.SLE,
        TermKind.SGT,
        TermKind.SGE,
        TermKind.BAND,
        TermKind.BOR,
        TermKind.BNOT,
        TermKind.BXOR,
        TermKind.IMPLIES,
        TermKind.BITE,
    }
)

#: Comparison kinds (bitvector operands, boolean result).
COMPARISON_KINDS = frozenset(
    {
        TermKind.EQ,
        TermKind.NE,
        TermKind.ULT,
        TermKind.ULE,
        TermKind.UGT,
        TermKind.UGE,
        TermKind.SLT,
        TermKind.SLE,
        TermKind.SGT,
        TermKind.SGE,
    }
)

#: Commutative binary kinds (used for canonical argument ordering).
COMMUTATIVE_KINDS = frozenset(
    {
        TermKind.ADD,
        TermKind.MUL,
        TermKind.AND,
        TermKind.OR,
        TermKind.XOR,
        TermKind.EQ,
        TermKind.NE,
        TermKind.BAND,
        TermKind.BOR,
        TermKind.BXOR,
    }
)


class Term:
    """A node of the hash-consed term DAG.

    Attributes:
        kind: the operator.
        args: child terms.
        width: bitvector width, or ``None`` for boolean terms.
        value: integer value for constants (``BV_CONST`` / ``BOOL_CONST``).
        name: variable name for ``BV_VAR`` / ``BOOL_VAR``.
        params: extra integer parameters (``EXTRACT`` high/low bits, ``ZEXT``
            / ``SEXT`` target widths).
    """

    __slots__ = (
        "kind",
        "args",
        "width",
        "value",
        "name",
        "params",
        "_hash",
        "_id",
        "_vars",
    )

    _intern_lock = threading.Lock()
    _intern: Dict[tuple, "Term"] = {}
    _next_id = 0

    def __init__(
        self,
        kind: TermKind,
        args: Tuple["Term", ...],
        width: Optional[int],
        value: Optional[int],
        name: Optional[str],
        params: Tuple[int, ...],
        _hash: int,
        _id: int,
    ) -> None:
        self.kind = kind
        self.args = args
        self.width = width
        self.value = value
        self.name = name
        self.params = params
        self._hash = _hash
        self._id = _id
        self._vars: Optional[Tuple["Term", ...]] = None

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    @classmethod
    def make(
        cls,
        kind: TermKind,
        args: Iterable["Term"] = (),
        width: Optional[int] = None,
        value: Optional[int] = None,
        name: Optional[str] = None,
        params: Iterable[int] = (),
    ) -> "Term":
        """Create (or return the interned copy of) a term."""
        args = tuple(args)
        params = tuple(params)
        key = (kind, tuple(id(a) for a in args), width, value, name, params)
        with cls._intern_lock:
            existing = cls._intern.get(key)
            if existing is not None:
                return existing
            term = cls(
                kind=kind,
                args=args,
                width=width,
                value=value,
                name=name,
                params=params,
                _hash=hash(key),
                _id=cls._next_id,
            )
            cls._next_id += 1
            cls._intern[key] = term
            return term

    @classmethod
    def clear_intern_cache(cls) -> None:
        """Drop the intern table (used by tests to bound memory)."""
        with cls._intern_lock:
            cls._intern.clear()

    # ------------------------------------------------------------------
    # Sort helpers
    # ------------------------------------------------------------------
    @property
    def is_bool(self) -> bool:
        """Whether this term has boolean sort."""
        return self.width is None

    @property
    def is_bv(self) -> bool:
        """Whether this term has bitvector sort."""
        return self.width is not None

    @property
    def is_const(self) -> bool:
        """Whether this term is a constant leaf."""
        return self.kind in (TermKind.BV_CONST, TermKind.BOOL_CONST)

    @property
    def is_var(self) -> bool:
        """Whether this term is a variable leaf."""
        return self.kind in (TermKind.BV_VAR, TermKind.BOOL_VAR)

    def sort(self) -> str:
        """Human-readable sort name (``bool`` or ``bv<width>``)."""
        if self.is_bool:
            return BOOL
        return f"{BV}{self.width}"

    # ------------------------------------------------------------------
    # Traversal helpers
    # ------------------------------------------------------------------
    def variables(self) -> Tuple["Term", ...]:
        """Return all distinct variable leaves, sorted by name.

        Terms are immutable and hash-consed, so the answer is computed once
        and cached on the term — the sampler's hill climber asks for the
        variables of the same conjuncts millions of times per campaign.
        """
        cached = self._vars
        if cached is not None:
            return cached
        seen = set()
        out = []
        stack = [self]
        while stack:
            term = stack.pop()
            if id(term) in seen:
                continue
            seen.add(id(term))
            if term.is_var:
                out.append(term)
            else:
                stack.extend(reversed(term.args))
        # First-occurrence ordering: the stack walk above is depth-first from
        # the right, so re-sort by creation id to get a deterministic order.
        out.sort(key=lambda t: t.name or "")
        result = tuple(out)
        self._vars = result
        return result

    def subterms(self) -> Tuple["Term", ...]:
        """Return every distinct subterm (including ``self``)."""
        seen = {}
        stack = [self]
        while stack:
            term = stack.pop()
            if id(term) in seen:
                continue
            seen[id(term)] = term
            stack.extend(term.args)
        return tuple(seen.values())

    def size(self) -> int:
        """Number of distinct nodes in the DAG rooted at this term."""
        return len(self.subterms())

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:
        return f"Term({self.pretty()})"

    # ------------------------------------------------------------------
    # Pretty-printing
    # ------------------------------------------------------------------
    def pretty(self, max_depth: int = 12) -> str:
        """Render the term as an s-expression, truncating deep nesting."""
        return _pretty(self, max_depth)


def _pretty(term: Term, depth: int) -> str:
    if term.kind is TermKind.BV_CONST:
        return f"#x{term.value:0{(term.width + 3) // 4}x}[{term.width}]"
    if term.kind is TermKind.BOOL_CONST:
        return "true" if term.value else "false"
    if term.kind in (TermKind.BV_VAR, TermKind.BOOL_VAR):
        return str(term.name)
    if depth <= 0:
        return "..."
    parts = [term.kind.value]
    if term.params:
        parts.append(":".join(str(p) for p in term.params))
    parts.extend(_pretty(a, depth - 1) for a in term.args)
    return "(" + " ".join(parts) + ")"


def mask(width: int) -> int:
    """Return the all-ones mask for ``width`` bits."""
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Wrap ``value`` to an unsigned ``width``-bit quantity."""
    return value & mask(width)


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned ``width``-bit value as two's complement."""
    value = truncate(value, width)
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


def from_signed(value: int, width: int) -> int:
    """Encode a (possibly negative) integer as unsigned ``width``-bit."""
    return truncate(value, width)
