"""Solver-cache codec over the unified :mod:`repro.store` layer.

A campaign's :class:`~repro.smt.cache.SolverCache` holds verdicts keyed by
canonical constraint systems.  Intern ids — the in-memory key material —
are process-creation history and mean nothing outside the process, so the
store serializes the *structure*: each artifact is the canonical conjuncts
in a small wire format plus its payload.  Loading re-interns every term
against the current process's table and recomputes the key, so a warm
start is exact regardless of how either process built its DAG.

Four artifact kinds travel through this codec:

* ``query`` / ``component`` — (conjuncts, verdict) pairs, the two cache
  granularities;
* ``core`` — canonical UNSAT cores; a warm run answers any query whose
  canonical conjuncts are a superset of a stored core without solving;
* ``cnf`` — blasted-CNF (Tseitin) skeletons per canonical conjunct list;
  a warm run re-solves without re-blasting.  Skeletons are persisted
  even when the CDCL verdict was UNKNOWN (the skeleton is a pure
  translation, not a budget artifact).

Persistence itself — versioned + fingerprint-stamped ``meta.json``,
sharded files with atomic replaces, and crucially the exclusive-lock
**merge-on-save** that makes two campaigns sharing one ``--cache-dir``
additive instead of last-writer-wins — lives in
:class:`repro.store.ArtifactStore`; this module only encodes and decodes.

The same wire format doubles as the process backend's delta encoding:
:func:`export_wire_entries` / :func:`merge_wire_entries` move artifacts
between a worker's local cache and the parent campaign cache through a
pickle-friendly list of plain dicts.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence, Tuple

from repro.smt.bitblast import CnfSkeleton
from repro.smt.cache import CachedVerdict, SolverCache
from repro.smt.evalmodel import Model
from repro.smt.terms import Term, TermKind
from repro.store import ArtifactStore, StoreRecord, content_key

#: Bump when the wire format changes; mismatched stores are discarded.
#: v2: entries carry a kind tag (whole-query vs connected-component) and
#: the portfolio-stage provenance of the verdict.
#: v3: unified content-addressed ``repro.store`` envelope; canonical
#: UNSAT cores and blasted-CNF skeletons ride along.
#: v4: the structurally-hashed bit-blaster changed CNF variable numbering,
#: so persisted skeletons from older encoders must cold-start.
FORMAT_VERSION = 4

#: Default number of shard files a store spreads its entries over.
DEFAULT_SHARD_COUNT = 16

#: Verdicts with this status are budget artifacts, never persisted.
_UNKNOWN_STATUS = "unknown"

_KIND_BY_VALUE = {kind.value: kind for kind in TermKind}

#: Errors that mean "this file/entry is unusable", not "crash the run".
_WIRE_ERRORS = (KeyError, ValueError, TypeError, IndexError, AttributeError)

#: Wire "k" tags <-> cache kinds.  The absent tag means a whole-query
#: entry (v2 compatibility of the *format*, not the files — v2 stores are
#: version-mismatched and reload cold).
_TAG_BY_KIND = {
    SolverCache.KIND_COMPONENT: "c",
    SolverCache.KIND_CORE: "u",
    SolverCache.KIND_CNF: "b",
}
_KIND_BY_TAG = {tag: kind for kind, tag in _TAG_BY_KIND.items()}


# ----------------------------------------------------------------------
# Term wire format
# ----------------------------------------------------------------------
def term_to_wire(term: Term) -> list:
    """Serialize a term DAG into nested JSON-able lists."""
    if term.kind is TermKind.BV_CONST:
        return ["c", term.width, term.value]
    if term.kind is TermKind.BOOL_CONST:
        return ["C", 1 if term.value else 0]
    if term.kind is TermKind.BV_VAR:
        return ["v", term.width, str(term.name)]
    if term.kind is TermKind.BOOL_VAR:
        return ["V", str(term.name)]
    return [
        term.kind.value,
        term.width,
        list(term.params),
        [term_to_wire(a) for a in term.args],
    ]


def term_from_wire(obj: Sequence) -> Term:
    """Rebuild (and re-intern) a term from its wire form."""
    tag = obj[0]
    if tag == "c":
        return Term.make(TermKind.BV_CONST, width=int(obj[1]), value=int(obj[2]))
    if tag == "C":
        return Term.make(TermKind.BOOL_CONST, value=bool(obj[1]))
    if tag == "v":
        return Term.make(TermKind.BV_VAR, width=int(obj[1]), name=str(obj[2]))
    if tag == "V":
        return Term.make(TermKind.BOOL_VAR, name=str(obj[1]))
    kind = _KIND_BY_VALUE[tag]
    width = None if obj[1] is None else int(obj[1])
    params = tuple(int(p) for p in obj[2])
    args = tuple(term_from_wire(a) for a in obj[3])
    return Term.make(kind, args, width=width, params=params)


# ----------------------------------------------------------------------
# Fingerprint + entry wire format
# ----------------------------------------------------------------------
def fingerprint_to_wire(fingerprint: Tuple) -> list:
    """JSON-able form of a solver-configuration fingerprint."""
    return [
        fingerprint_to_wire(part) if isinstance(part, tuple) else part
        for part in fingerprint
    ]


def fingerprint_from_wire(obj) -> Tuple:
    """Inverse of :func:`fingerprint_to_wire` (lists become tuples)."""
    if not isinstance(obj, (list, tuple)):
        raise ValueError(f"malformed fingerprint wire object: {obj!r}")
    return tuple(
        fingerprint_from_wire(part) if isinstance(part, (list, tuple)) else part
        for part in obj
    )


def entry_to_wire(
    conjuncts: Sequence[Term], verdict: CachedVerdict, kind: str = SolverCache.KIND_QUERY
) -> dict:
    """Serialize one (canonical conjuncts, verdict) pair."""
    wire = {
        "c": [term_to_wire(c) for c in conjuncts],
        "s": verdict.status,
        "m": (
            None
            if verdict.canonical_model is None
            else verdict.canonical_model.as_dict()
        ),
        "r": verdict.reason,
        "t": list(verdict.stages),
    }
    if kind == SolverCache.KIND_COMPONENT:
        wire["k"] = "c"
    return wire


def entry_kind(obj: dict) -> str:
    """The cache table a wire artifact belongs to."""
    return _KIND_BY_TAG.get(obj.get("k"), SolverCache.KIND_QUERY)


def entry_from_wire(obj: dict) -> Tuple[Tuple[Term, ...], CachedVerdict]:
    """Inverse of :func:`entry_to_wire`."""
    conjuncts = tuple(term_from_wire(c) for c in obj["c"])
    model = None if obj.get("m") is None else Model(obj["m"])
    return conjuncts, CachedVerdict(
        status=str(obj["s"]),
        canonical_model=model,
        reason=str(obj.get("r", "")),
        stages=tuple(str(stage) for stage in obj.get("t", ())),
    )


def core_to_wire(conjuncts: Sequence[Term]) -> dict:
    """Serialize a canonical UNSAT core.

    A core is a *set* of conjuncts; its wire conjuncts are sorted by
    their serialized form so the same core gets the same content key
    regardless of the order the derivation discovered it in.
    """
    wires = sorted(
        (term_to_wire(c) for c in conjuncts),
        key=lambda w: json.dumps(w, separators=(",", ":")),
    )
    return {"k": "u", "c": wires}


def core_from_wire(obj: dict) -> Tuple[Term, ...]:
    """Inverse of :func:`core_to_wire`."""
    return tuple(term_from_wire(c) for c in obj["c"])


def skeleton_to_wire(conjuncts: Sequence[Term], skeleton: CnfSkeleton) -> dict:
    """Serialize a blasted-CNF skeleton with its (ordered) conjunct list."""
    return {
        "k": "b",
        "c": [term_to_wire(c) for c in conjuncts],
        "n": skeleton.num_vars,
        "l": [list(clause) for clause in skeleton.clauses],
        "v": [[name, list(bits)] for name, bits in skeleton.var_bits],
    }


def skeleton_from_wire(obj: dict) -> Tuple[Tuple[Term, ...], CnfSkeleton]:
    """Inverse of :func:`skeleton_to_wire`."""
    conjuncts = tuple(term_from_wire(c) for c in obj["c"])
    skeleton = CnfSkeleton(
        num_vars=int(obj["n"]),
        clauses=tuple(
            tuple(int(lit) for lit in clause) for clause in obj["l"]
        ),
        var_bits=tuple(
            (str(name), tuple(int(lit) for lit in bits))
            for name, bits in obj["v"]
        ),
    )
    return conjuncts, skeleton


# ----------------------------------------------------------------------
# Cache <-> wire-entry lists (shared with the process backend)
# ----------------------------------------------------------------------
def export_wire_entries(
    cache: SolverCache, exclude: Optional[set] = None
) -> Tuple[List[dict], List[Tuple]]:
    """Serialize ``cache``'s artifacts (minus ``exclude`` tagged keys).

    All four kinds travel: whole-query entries, component-granularity
    entries, UNSAT cores and CNF skeletons.  Returns ``(wire_entries,
    keys)`` in matching order, where each key is a ``(kind, cache key)``
    pair — the same tagging ``exclude`` is matched against — so callers
    can record which artifacts have been shipped already.
    """
    wire: List[dict] = []
    keys: List[Tuple] = []
    for kind in (SolverCache.KIND_QUERY, SolverCache.KIND_COMPONENT):
        excluded = (
            {key for tag, key in exclude if tag == kind} if exclude else None
        )
        for key, conjuncts, verdict in cache.entries_snapshot(
            exclude_keys=excluded, kind=kind
        ):
            item = entry_to_wire(conjuncts, verdict, kind=kind)
            item["f"] = fingerprint_to_wire(key[0])
            wire.append(item)
            keys.append((kind, key))

    core_excluded = (
        {key for tag, key in exclude if tag == SolverCache.KIND_CORE}
        if exclude
        else set()
    )
    for fingerprint, conjuncts in cache.cores_snapshot():
        key = (fingerprint, frozenset(term._id for term in conjuncts))
        if key in core_excluded:
            continue
        item = core_to_wire(conjuncts)
        item["f"] = fingerprint_to_wire(fingerprint)
        wire.append(item)
        keys.append((SolverCache.KIND_CORE, key))

    cnf_excluded = (
        {key for tag, key in exclude if tag == SolverCache.KIND_CNF}
        if exclude
        else set()
    )
    for conjuncts, skeleton in cache.cnf_snapshot():
        key = tuple(term._id for term in conjuncts)
        if key in cnf_excluded:
            continue
        wire.append(skeleton_to_wire(conjuncts, skeleton))
        keys.append((SolverCache.KIND_CNF, key))
    return wire, keys


def merge_wire_entries(cache: SolverCache, wire_entries: List[dict]) -> List[Tuple]:
    """Adopt exported artifacts into ``cache``; returns the merged tagged keys.

    Malformed entries are skipped — a bad delta or file costs coverage,
    never correctness.
    """
    merged: List[Tuple] = []
    for item in wire_entries:
        try:
            kind = entry_kind(item)
            if kind == SolverCache.KIND_CORE:
                fingerprint = fingerprint_from_wire(item["f"])
                conjuncts = core_from_wire(item)
                cache.add_core(fingerprint, conjuncts, merged=True)
                merged.append(
                    (kind, (fingerprint, frozenset(t._id for t in conjuncts)))
                )
            elif kind == SolverCache.KIND_CNF:
                conjuncts, skeleton = skeleton_from_wire(item)
                cache.store_cnf(conjuncts, skeleton, merged=True)
                merged.append((kind, tuple(t._id for t in conjuncts)))
            else:
                fingerprint = fingerprint_from_wire(item["f"])
                conjuncts, verdict = entry_from_wire(item)
                merged.append(
                    (
                        kind,
                        cache.merge_canonical(
                            fingerprint, conjuncts, verdict, kind=kind
                        ),
                    )
                )
        except _WIRE_ERRORS:
            continue
    return merged


# ----------------------------------------------------------------------
# The on-disk store
# ----------------------------------------------------------------------
class CacheStore:
    """Solver-cache persistence: a thin codec over :class:`ArtifactStore`.

    The store layer supplies the durability contract (atomic replaces,
    version + fingerprint stamps, exclusive-lock merge-on-save); this
    class maps cache tables to store records and back.
    """

    def __init__(self, cache_dir: str, shard_count: int = DEFAULT_SHARD_COUNT) -> None:
        self.cache_dir = str(cache_dir)
        self.shard_count = max(1, int(shard_count))
        self._store = ArtifactStore(
            self.cache_dir,
            version=FORMAT_VERSION,
            shard_count=self.shard_count,
        )

    # ------------------------------------------------------------------
    def _meta_path(self) -> str:
        return self._store.meta_path()

    # ------------------------------------------------------------------
    def load(self, cache: SolverCache, fingerprint: Tuple) -> int:
        """Merge the store into ``cache``; returns artifacts merged.

        Returns 0 — a cold start — when the store is absent, was written
        by a different format version, or was derived under a different
        solver-configuration fingerprint.
        """
        merged = 0
        for record in self._store.load(fingerprint_to_wire(fingerprint)):
            payload = record.payload
            if not isinstance(payload, dict):
                continue
            try:
                kind = entry_kind(payload)
                if kind == SolverCache.KIND_CORE:
                    if cache.add_core(
                        fingerprint, core_from_wire(payload), merged=True
                    ):
                        merged += 1
                elif kind == SolverCache.KIND_CNF:
                    conjuncts, skeleton = skeleton_from_wire(payload)
                    if cache.store_cnf(conjuncts, skeleton, merged=True):
                        merged += 1
                else:
                    conjuncts, verdict = entry_from_wire(payload)
                    cache.merge_canonical(
                        fingerprint, conjuncts, verdict, kind=kind
                    )
                    merged += 1
            except _WIRE_ERRORS:
                continue
        return merged

    # ------------------------------------------------------------------
    def save(self, cache: SolverCache, fingerprint: Tuple) -> int:
        """Merge ``cache``'s artifacts into the store; returns the total stored.

        All four kinds are written.  UNKNOWN verdicts are *not*: an
        UNKNOWN only records that this run's budget was exhausted, and
        persisting it would pin the failure across runs whose budgets (or
        solver improvements) could decide the query.  CNF skeletons *are*
        written even when their query stayed UNKNOWN — the translation is
        budget-independent, and re-solving without re-blasting is exactly
        the warm-run win for hard queries.

        The save is **merge-on-save** under the store's exclusive lock:
        entries already on disk (written by another campaign sharing this
        directory) survive — the union is what the next load sees.
        """
        records: List[StoreRecord] = []
        for kind in (SolverCache.KIND_QUERY, SolverCache.KIND_COMPONENT):
            for key, conjuncts, verdict in cache.entries_snapshot(kind=kind):
                if key[0] != fingerprint:
                    continue
                if verdict.status == _UNKNOWN_STATUS:
                    continue
                payload = entry_to_wire(conjuncts, verdict, kind=kind)
                records.append(
                    StoreRecord(kind, content_key(kind, payload["c"]), payload)
                )
        for core_fingerprint, conjuncts in cache.cores_snapshot():
            if core_fingerprint != fingerprint:
                continue
            payload = core_to_wire(conjuncts)
            records.append(
                StoreRecord(
                    SolverCache.KIND_CORE,
                    content_key(SolverCache.KIND_CORE, payload["c"]),
                    payload,
                )
            )
        for conjuncts, skeleton in cache.cnf_snapshot():
            payload = skeleton_to_wire(conjuncts, skeleton)
            records.append(
                StoreRecord(
                    SolverCache.KIND_CNF,
                    content_key(SolverCache.KIND_CNF, payload["c"]),
                    payload,
                )
            )
        return self._store.save(fingerprint_to_wire(fingerprint), records)
