"""Persistent, sharded on-disk store for solver-cache entries.

A campaign's :class:`~repro.smt.cache.SolverCache` holds verdicts keyed by
canonical constraint systems.  Intern ids — the in-memory key material —
are process-creation history and mean nothing outside the process, so the
store serializes the *structure*: each entry is the canonical conjuncts in
a small wire format plus the verdict (status, canonical model, reason).
Loading re-interns every term against the current process's table and
recomputes the key, so a warm start is exact regardless of how either
process built its DAG.

Layout under ``cache_dir``::

    meta.json       {"version": ..., "fingerprint": [...], "entries": N}
    shard-00.json   [entry, entry, ...]
    ...
    shard-15.json

Entries are sharded by a stable content hash of their serialized conjuncts
so individual files stay small and a partial corruption loses one shard,
not the store.  ``meta.json`` carries the store format version and the
solver-configuration fingerprint the verdicts were derived under; a
mismatch on either invalidates the whole store (the verdicts may be stale
under the new configuration), and the next save overwrites it.

The same wire format doubles as the process backend's delta encoding:
:func:`export_wire_entries` / :func:`merge_wire_entries` move entries
between a worker's local cache and the parent campaign cache through a
pickle-friendly list of plain dicts.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt.cache import CachedVerdict, SolverCache
from repro.smt.evalmodel import Model
from repro.smt.terms import Term, TermKind

#: Bump when the wire format changes; mismatched stores are discarded.
#: v2: entries carry a kind tag (whole-query vs connected-component) and
#: the portfolio-stage provenance of the verdict.
FORMAT_VERSION = 2

#: Default number of shard files a store spreads its entries over.
DEFAULT_SHARD_COUNT = 16

_META_NAME = "meta.json"

#: Verdicts with this status are budget artifacts, never persisted.
_UNKNOWN_STATUS = "unknown"

_KIND_BY_VALUE: Dict[str, TermKind] = {kind.value: kind for kind in TermKind}

#: Errors that mean "this file/entry is unusable", not "crash the run".
_WIRE_ERRORS = (KeyError, ValueError, TypeError, IndexError, AttributeError)


# ----------------------------------------------------------------------
# Term wire format
# ----------------------------------------------------------------------
def term_to_wire(term: Term) -> list:
    """Serialize a term DAG into nested JSON-able lists."""
    if term.kind is TermKind.BV_CONST:
        return ["c", term.width, term.value]
    if term.kind is TermKind.BOOL_CONST:
        return ["C", 1 if term.value else 0]
    if term.kind is TermKind.BV_VAR:
        return ["v", term.width, str(term.name)]
    if term.kind is TermKind.BOOL_VAR:
        return ["V", str(term.name)]
    return [
        term.kind.value,
        term.width,
        list(term.params),
        [term_to_wire(a) for a in term.args],
    ]


def term_from_wire(obj: Sequence) -> Term:
    """Rebuild (and re-intern) a term from its wire form."""
    tag = obj[0]
    if tag == "c":
        return Term.make(TermKind.BV_CONST, width=int(obj[1]), value=int(obj[2]))
    if tag == "C":
        return Term.make(TermKind.BOOL_CONST, value=bool(obj[1]))
    if tag == "v":
        return Term.make(TermKind.BV_VAR, width=int(obj[1]), name=str(obj[2]))
    if tag == "V":
        return Term.make(TermKind.BOOL_VAR, name=str(obj[1]))
    kind = _KIND_BY_VALUE[tag]
    width = None if obj[1] is None else int(obj[1])
    params = tuple(int(p) for p in obj[2])
    args = tuple(term_from_wire(a) for a in obj[3])
    return Term.make(kind, args, width=width, params=params)


# ----------------------------------------------------------------------
# Fingerprint + entry wire format
# ----------------------------------------------------------------------
def fingerprint_to_wire(fingerprint: Tuple) -> list:
    """JSON-able form of a solver-configuration fingerprint."""
    return [
        fingerprint_to_wire(part) if isinstance(part, tuple) else part
        for part in fingerprint
    ]


def fingerprint_from_wire(obj) -> Tuple:
    """Inverse of :func:`fingerprint_to_wire` (lists become tuples)."""
    if not isinstance(obj, (list, tuple)):
        raise ValueError(f"malformed fingerprint wire object: {obj!r}")
    return tuple(
        fingerprint_from_wire(part) if isinstance(part, (list, tuple)) else part
        for part in obj
    )


def entry_to_wire(
    conjuncts: Sequence[Term], verdict: CachedVerdict, kind: str = SolverCache.KIND_QUERY
) -> dict:
    """Serialize one (canonical conjuncts, verdict) pair."""
    wire = {
        "c": [term_to_wire(c) for c in conjuncts],
        "s": verdict.status,
        "m": (
            None
            if verdict.canonical_model is None
            else verdict.canonical_model.as_dict()
        ),
        "r": verdict.reason,
        "t": list(verdict.stages),
    }
    if kind == SolverCache.KIND_COMPONENT:
        wire["k"] = "c"
    return wire


def entry_kind(obj: dict) -> str:
    """The cache table a wire entry belongs to."""
    return (
        SolverCache.KIND_COMPONENT
        if obj.get("k") == "c"
        else SolverCache.KIND_QUERY
    )


def entry_from_wire(obj: dict) -> Tuple[Tuple[Term, ...], CachedVerdict]:
    """Inverse of :func:`entry_to_wire`."""
    conjuncts = tuple(term_from_wire(c) for c in obj["c"])
    model = None if obj.get("m") is None else Model(obj["m"])
    return conjuncts, CachedVerdict(
        status=str(obj["s"]),
        canonical_model=model,
        reason=str(obj.get("r", "")),
        stages=tuple(str(stage) for stage in obj.get("t", ())),
    )


# ----------------------------------------------------------------------
# Cache <-> wire-entry lists (shared with the process backend)
# ----------------------------------------------------------------------
def export_wire_entries(
    cache: SolverCache, exclude: Optional[set] = None
) -> Tuple[List[dict], List[Tuple]]:
    """Serialize ``cache``'s entries (minus ``exclude`` tagged keys).

    Both tables travel: whole-query entries and component-granularity
    entries (tagged ``"k": "c"``).  Returns ``(wire_entries, keys)`` in
    matching order, where each key is a ``(kind, cache key)`` pair — the
    same tagging ``exclude`` is matched against — so callers can record
    which entries have been shipped already.
    """
    wire: List[dict] = []
    keys: List[Tuple] = []
    for kind in (SolverCache.KIND_QUERY, SolverCache.KIND_COMPONENT):
        excluded = (
            {key for tag, key in exclude if tag == kind} if exclude else None
        )
        for key, conjuncts, verdict in cache.entries_snapshot(
            exclude_keys=excluded, kind=kind
        ):
            item = entry_to_wire(conjuncts, verdict, kind=kind)
            item["f"] = fingerprint_to_wire(key[0])
            wire.append(item)
            keys.append((kind, key))
    return wire, keys


def merge_wire_entries(cache: SolverCache, wire_entries: List[dict]) -> List[Tuple]:
    """Adopt exported entries into ``cache``; returns the merged tagged keys.

    Malformed entries are skipped — a bad delta or file costs coverage,
    never correctness.
    """
    merged: List[Tuple] = []
    for item in wire_entries:
        try:
            fingerprint = fingerprint_from_wire(item["f"])
            kind = entry_kind(item)
            conjuncts, verdict = entry_from_wire(item)
        except _WIRE_ERRORS:
            continue
        merged.append(
            (kind, cache.merge_canonical(fingerprint, conjuncts, verdict, kind=kind))
        )
    return merged


# ----------------------------------------------------------------------
# The on-disk store
# ----------------------------------------------------------------------
class CacheStore:
    """Versioned, fingerprinted, sharded solver-cache persistence."""

    def __init__(self, cache_dir: str, shard_count: int = DEFAULT_SHARD_COUNT) -> None:
        self.cache_dir = str(cache_dir)
        self.shard_count = max(1, int(shard_count))

    # ------------------------------------------------------------------
    def _meta_path(self) -> str:
        return os.path.join(self.cache_dir, _META_NAME)

    def _shard_path(self, index: int) -> str:
        return os.path.join(self.cache_dir, f"shard-{index:02d}.json")

    @staticmethod
    def _shard_of(conjunct_wire: list, shard_count: int) -> int:
        payload = json.dumps(conjunct_wire, separators=(",", ":"), sort_keys=True)
        digest = hashlib.sha1(payload.encode("utf-8")).hexdigest()
        return int(digest, 16) % shard_count

    # ------------------------------------------------------------------
    def load(self, cache: SolverCache, fingerprint: Tuple) -> int:
        """Merge the store into ``cache``; returns entries merged.

        Returns 0 — a cold start — when the store is absent, was written
        by a different format version, or was derived under a different
        solver-configuration fingerprint.
        """
        try:
            with open(self._meta_path(), "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return 0
        try:
            if meta.get("version") != FORMAT_VERSION:
                return 0
            if fingerprint_from_wire(meta.get("fingerprint", [])) != fingerprint:
                return 0
            shard_count = int(meta.get("shards", DEFAULT_SHARD_COUNT))
        except _WIRE_ERRORS:
            return 0

        merged = 0
        for index in range(shard_count):
            try:
                with open(self._shard_path(index), "r", encoding="utf-8") as handle:
                    entries = json.load(handle)
            except FileNotFoundError:
                continue
            except (OSError, json.JSONDecodeError):
                # One corrupt shard loses its entries, not the store.
                continue
            if not isinstance(entries, list):
                continue
            for item in entries:
                try:
                    kind = entry_kind(item)
                    conjuncts, verdict = entry_from_wire(item)
                except _WIRE_ERRORS:
                    continue
                cache.merge_canonical(fingerprint, conjuncts, verdict, kind=kind)
                merged += 1
        return merged

    # ------------------------------------------------------------------
    def save(self, cache: SolverCache, fingerprint: Tuple) -> int:
        """Write ``cache``'s entries for ``fingerprint``; returns the count.

        Both whole-query and component entries are written.  UNKNOWN
        verdicts are *not*: an UNKNOWN only records that this run's budget
        was exhausted, and persisting it would pin the failure across runs
        whose budgets (or solver improvements) could decide the query.

        The whole store is rewritten (entry counts are small — thousands,
        not millions) with per-file atomic replaces, so a reader racing a
        writer sees complete files.
        """
        shards: Dict[int, List[dict]] = {}
        saved = 0
        for kind in (SolverCache.KIND_QUERY, SolverCache.KIND_COMPONENT):
            for key, conjuncts, verdict in cache.entries_snapshot(kind=kind):
                if key[0] != fingerprint:
                    continue
                if verdict.status == _UNKNOWN_STATUS:
                    continue
                wire = entry_to_wire(conjuncts, verdict, kind=kind)
                shards.setdefault(
                    self._shard_of(wire["c"], self.shard_count), []
                ).append(wire)
                saved += 1

        os.makedirs(self.cache_dir, exist_ok=True)
        for index in range(self.shard_count):
            path = self._shard_path(index)
            entries = shards.get(index)
            if not entries:
                try:
                    os.remove(path)
                except FileNotFoundError:
                    pass
                continue
            self._write_atomic(path, entries)
        self._write_atomic(
            self._meta_path(),
            {
                "version": FORMAT_VERSION,
                "fingerprint": fingerprint_to_wire(fingerprint),
                "shards": self.shard_count,
                "entries": saved,
            },
        )
        return saved

    @staticmethod
    def _write_atomic(path: str, payload) -> None:
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(tmp_path, path)
