"""Unsigned interval analysis with backward propagation.

Two roles in the DIODE pipeline:

* **Cheap unsatisfiability proofs.**  Many target constraints in the paper
  are unsatisfiable (17 of the 40 target sites) because sanity checks bound
  the relevant input fields so tightly that the target expression cannot wrap
  (e.g. ``rowbytes <= 1154`` and ``height <= 10^6`` bound the product below
  ``2^32``).  Forward interval evaluation plus backward propagation over the
  conjunction of constraints detects these cases without bit-blasting.

* **Sampler guidance.**  The sampler draws candidate field values from the
  propagated intervals instead of the full 2^32 space, which is what makes
  the 200-input success-rate experiments fast.

The domain is the classic unsigned interval lattice ``[lo, hi]`` (with
``lo > hi`` meaning empty / contradiction).  Operations that can wrap fall
back to the full range of the result width, which keeps the analysis sound
with respect to the modular semantics of :mod:`repro.smt.evalmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.smt.terms import Term, TermKind, mask, to_signed


@dataclass(frozen=True)
class Interval:
    """A closed unsigned interval ``[lo, hi]``; empty when ``lo > hi``."""

    lo: int
    hi: int

    @staticmethod
    def full(width: int) -> "Interval":
        """The complete range of a ``width``-bit unsigned value."""
        return Interval(0, mask(width))

    @staticmethod
    def point(value: int) -> "Interval":
        """The singleton interval ``[value, value]``."""
        return Interval(value, value)

    @staticmethod
    def empty() -> "Interval":
        """The canonical empty interval."""
        return Interval(1, 0)

    @property
    def is_empty(self) -> bool:
        """Whether this interval contains no values."""
        return self.lo > self.hi

    @property
    def is_point(self) -> bool:
        """Whether this interval contains exactly one value."""
        return self.lo == self.hi

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def size(self) -> int:
        """Number of values in the interval."""
        if self.is_empty:
            return 0
        return self.hi - self.lo + 1

    def intersect(self, other: "Interval") -> "Interval":
        """Meet of two intervals."""
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def union(self, other: "Interval") -> "Interval":
        """Join (convex hull) of two intervals."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen_to(self, width: int) -> "Interval":
        """Clamp to the representable range of ``width`` bits."""
        return self.intersect(Interval.full(width))


class IntervalAnalysis:
    """Forward interval evaluation over a term DAG with a variable context.

    ``term_bounds`` carries *learned* bounds for non-variable terms (keyed by
    term identity): when a conjunction contains a constraint such as
    ``rowbytes_expr <= 1120``, the bound is attached to the expression node
    itself so that every other constraint sharing that node (thanks to
    hash-consing) benefits.  This is what lets the analysis prove the paper's
    blocking-check conjunctions unsatisfiable without bit-blasting.
    """

    def __init__(
        self,
        bounds: Optional[Dict[str, Interval]] = None,
        term_bounds: Optional[Dict[int, Interval]] = None,
    ) -> None:
        self.bounds: Dict[str, Interval] = dict(bounds or {})
        self.term_bounds: Dict[int, Interval] = dict(term_bounds or {})
        self._cache: Dict[int, Interval] = {}

    def interval(self, term: Term) -> Interval:
        """Forward-evaluate the interval of a bitvector term."""
        cached = self._cache.get(id(term))
        if cached is not None:
            return cached
        result = self._compute(term)
        learned = self.term_bounds.get(id(term))
        if learned is not None:
            result = result.intersect(learned)
        self._cache[id(term)] = result
        return result

    def invalidate(self) -> None:
        """Drop the forward cache (after variable bounds change)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    def _compute(self, term: Term) -> Interval:
        kind = term.kind
        width = term.width

        if width is None:
            # Boolean terms reached through ITE conditions: 0/1.
            return Interval(0, 1)
        if kind is TermKind.BV_CONST:
            return Interval.point(term.value)
        if kind is TermKind.BV_VAR:
            bound = self.bounds.get(str(term.name))
            if bound is None:
                return Interval.full(width)
            return bound.widen_to(width)
        if kind is TermKind.ITE:
            return self.interval(term.args[1]).union(self.interval(term.args[2]))

        args = [self.interval(a) for a in term.args]
        if any(a.is_empty for a in args):
            return Interval.empty()
        full = Interval.full(width)

        if kind is TermKind.ADD:
            lo = args[0].lo + args[1].lo
            hi = args[0].hi + args[1].hi
            if hi > mask(width):
                return full
            return Interval(lo, hi)
        if kind is TermKind.SUB:
            lo = args[0].lo - args[1].hi
            hi = args[0].hi - args[1].lo
            if lo < 0:
                return full
            return Interval(lo, hi)
        if kind is TermKind.MUL:
            lo = args[0].lo * args[1].lo
            hi = args[0].hi * args[1].hi
            if hi > mask(width):
                return full
            return Interval(lo, hi)
        if kind is TermKind.UDIV:
            divisor = args[1]
            if divisor.lo == 0:
                return full
            return Interval(args[0].lo // divisor.hi, args[0].hi // divisor.lo)
        if kind is TermKind.UREM:
            divisor = args[1]
            if divisor.lo == 0:
                return full
            return Interval(0, min(args[0].hi, divisor.hi - 1))
        if kind is TermKind.NEG:
            if args[0].is_point and args[0].lo == 0:
                return Interval.point(0)
            return full
        if kind is TermKind.AND:
            return Interval(0, min(args[0].hi, args[1].hi))
        if kind is TermKind.OR:
            hi = args[0].hi | args[1].hi
            upper = (1 << max(args[0].hi.bit_length(), args[1].hi.bit_length())) - 1
            return Interval(max(args[0].lo, args[1].lo), min(mask(width), max(hi, upper)))
        if kind is TermKind.XOR:
            upper = (1 << max(args[0].hi.bit_length(), args[1].hi.bit_length())) - 1
            return Interval(0, min(mask(width), upper))
        if kind is TermKind.NOT:
            return Interval(mask(width) - args[0].hi, mask(width) - args[0].lo)
        if kind is TermKind.SHL:
            shift = args[1]
            if shift.is_point:
                amount = shift.lo
                if amount >= width:
                    return Interval.point(0)
                hi = args[0].hi << amount
                if hi > mask(width):
                    return full
                return Interval(args[0].lo << amount, hi)
            return full
        if kind is TermKind.LSHR:
            shift = args[1]
            if shift.is_point:
                amount = shift.lo
                if amount >= width:
                    return Interval.point(0)
                return Interval(args[0].lo >> amount, args[0].hi >> amount)
            return Interval(0, args[0].hi)
        if kind is TermKind.ASHR:
            return full
        if kind is TermKind.ZEXT:
            return args[0]
        if kind is TermKind.SEXT:
            inner = term.args[0]
            if args[0].hi < (1 << (inner.width - 1)):
                return args[0]
            return full
        if kind is TermKind.EXTRACT:
            high, low = term.params
            if low == 0 and args[0].hi <= mask(high + 1):
                return args[0]
            return Interval.full(high - low + 1)
        if kind is TermKind.CONCAT:
            low_width = term.args[1].width
            lo = (args[0].lo << low_width) | args[1].lo
            hi = (args[0].hi << low_width) | args[1].hi
            return Interval(lo, hi)
        if kind is TermKind.ITE:
            return args[1].union(args[2])
        return full

    # ------------------------------------------------------------------
    # Boolean entailment under the current bounds
    # ------------------------------------------------------------------
    def decide(self, constraint: Term) -> Optional[bool]:
        """Return ``True``/``False`` if the bounds decide ``constraint``.

        ``None`` means the constraint is still possible either way.
        """
        kind = constraint.kind
        if kind is TermKind.BOOL_CONST:
            return bool(constraint.value)
        if kind is TermKind.BNOT:
            inner = self.decide(constraint.args[0])
            return None if inner is None else (not inner)
        if kind is TermKind.BAND:
            left = self.decide(constraint.args[0])
            right = self.decide(constraint.args[1])
            if left is False or right is False:
                return False
            if left is True and right is True:
                return True
            return None
        if kind is TermKind.BOR:
            left = self.decide(constraint.args[0])
            right = self.decide(constraint.args[1])
            if left is True or right is True:
                return True
            if left is False and right is False:
                return False
            return None
        if kind is TermKind.IMPLIES:
            left = self.decide(constraint.args[0])
            right = self.decide(constraint.args[1])
            if left is False or right is True:
                return True
            if left is True and right is False:
                return False
            return None
        if kind in _UNSIGNED_COMPARISONS:
            left = self.interval(constraint.args[0])
            right = self.interval(constraint.args[1])
            if left.is_empty or right.is_empty:
                return False
            return _decide_unsigned(kind, left, right)
        return None


_UNSIGNED_COMPARISONS = frozenset(
    {
        TermKind.EQ,
        TermKind.NE,
        TermKind.ULT,
        TermKind.ULE,
        TermKind.UGT,
        TermKind.UGE,
    }
)


def _decide_unsigned(kind: TermKind, left: Interval, right: Interval) -> Optional[bool]:
    if kind is TermKind.EQ:
        if left.is_point and right.is_point and left.lo == right.lo:
            return True
        if left.hi < right.lo or right.hi < left.lo:
            return False
        return None
    if kind is TermKind.NE:
        inner = _decide_unsigned(TermKind.EQ, left, right)
        return None if inner is None else (not inner)
    if kind is TermKind.ULT:
        if left.hi < right.lo:
            return True
        if left.lo >= right.hi:
            return False
        return None
    if kind is TermKind.ULE:
        if left.hi <= right.lo:
            return True
        if left.lo > right.hi:
            return False
        return None
    if kind is TermKind.UGT:
        inner = _decide_unsigned(TermKind.ULE, left, right)
        return None if inner is None else (not inner)
    if kind is TermKind.UGE:
        inner = _decide_unsigned(TermKind.ULT, left, right)
        return None if inner is None else (not inner)
    return None


def interval_of(term: Term, bounds: Optional[Dict[str, Interval]] = None) -> Interval:
    """Forward interval of ``term`` under optional variable bounds."""
    return IntervalAnalysis(bounds).interval(term)


# ----------------------------------------------------------------------
# Backward propagation (an HC4-style contractor)
# ----------------------------------------------------------------------
def propagate_intervals(
    constraints: Iterable[Term],
    widths: Dict[str, int],
    initial: Optional[Dict[str, Interval]] = None,
    max_rounds: int = 16,
) -> Tuple[bool, Dict[str, Interval]]:
    """Contract variable intervals under a conjunction of boolean constraints.

    Returns ``(feasible, bounds)``.  ``feasible=False`` is a *proof* that the
    conjunction is unsatisfiable.  ``feasible=True`` means the analysis could
    not rule the conjunction out (it may still be unsatisfiable).
    """
    bounds: Dict[str, Interval] = {
        name: Interval.full(width) for name, width in widths.items()
    }
    if initial:
        for name, interval in initial.items():
            if name in bounds:
                bounds[name] = bounds[name].intersect(interval)
    term_bounds: Dict[int, Interval] = {}
    constraint_list = list(constraints)

    for _ in range(max_rounds):
        changed = False
        analysis = IntervalAnalysis(bounds, term_bounds)
        for constraint in constraint_list:
            decided = analysis.decide(constraint)
            if decided is False:
                return False, bounds
            learned = _learn_term_bounds(constraint, analysis)
            for term_id, interval in learned.items():
                if interval.is_empty:
                    return False, bounds
                existing = term_bounds.get(term_id)
                refined = interval if existing is None else existing.intersect(interval)
                if refined.is_empty:
                    return False, bounds
                if refined != existing:
                    term_bounds[term_id] = refined
                    changed = True
            new_bounds = _contract(constraint, True, analysis, dict(bounds))
            if new_bounds is None:
                return False, bounds
            for name, interval in new_bounds.items():
                if interval.is_empty:
                    return False, bounds
                if interval != bounds.get(name):
                    bounds[name] = interval
                    changed = True
            if changed:
                analysis = IntervalAnalysis(bounds, term_bounds)
        if not changed:
            break
    if any(interval.is_empty for interval in bounds.values()):
        return False, bounds
    return True, bounds


def _learn_term_bounds(
    constraint: Term, analysis: "IntervalAnalysis"
) -> Dict[int, Interval]:
    """Derive bounds on *expression nodes* from a comparison constraint.

    Only direct comparisons (and conjunctions of them) against other terms
    are mined; the learned bound is attached to the non-constant side's node
    identity so it is shared wherever that node reappears.
    """
    learned: Dict[int, Interval] = {}
    stack = [constraint]
    while stack:
        term = stack.pop()
        if term.kind is TermKind.BAND:
            stack.extend(term.args)
            continue
        if term.kind not in _UNSIGNED_COMPARISONS or term.kind is TermKind.NE:
            continue
        left, right = term.args
        left_iv = analysis.interval(left)
        right_iv = analysis.interval(right)
        if left_iv.is_empty or right_iv.is_empty:
            continue
        if term.kind is TermKind.EQ:
            meet = left_iv.intersect(right_iv)
            _note(learned, left, meet)
            _note(learned, right, meet)
        elif term.kind is TermKind.ULT:
            _note(learned, left, Interval(0, right_iv.hi - 1))
            _note(learned, right, Interval(left_iv.lo + 1, mask(right.width)))
        elif term.kind is TermKind.ULE:
            _note(learned, left, Interval(0, right_iv.hi))
            _note(learned, right, Interval(left_iv.lo, mask(right.width)))
        elif term.kind is TermKind.UGT:
            _note(learned, right, Interval(0, left_iv.hi - 1))
            _note(learned, left, Interval(right_iv.lo + 1, mask(left.width)))
        elif term.kind is TermKind.UGE:
            _note(learned, right, Interval(0, left_iv.hi))
            _note(learned, left, Interval(right_iv.lo, mask(left.width)))
    return learned


def _note(learned: Dict[int, Interval], term: Term, interval: Interval) -> None:
    if term.kind in (TermKind.BV_CONST, TermKind.BV_VAR):
        return
    existing = learned.get(id(term))
    learned[id(term)] = interval if existing is None else existing.intersect(interval)


def _contract(
    constraint: Term,
    polarity: bool,
    analysis: IntervalAnalysis,
    bounds: Dict[str, Interval],
) -> Optional[Dict[str, Interval]]:
    """Refine variable bounds so that ``constraint == polarity`` can hold.

    Returns the refined bounds, or ``None`` when the constraint is
    contradictory under the current bounds.
    """
    kind = constraint.kind
    if kind is TermKind.BOOL_CONST:
        return bounds if bool(constraint.value) == polarity else None
    if kind is TermKind.BNOT:
        return _contract(constraint.args[0], not polarity, analysis, bounds)
    if kind is TermKind.BAND and polarity:
        for arg in constraint.args:
            refined = _contract(arg, True, analysis, bounds)
            if refined is None:
                return None
            bounds = refined
        return bounds
    if kind is TermKind.BOR and not polarity:
        for arg in constraint.args:
            refined = _contract(arg, False, analysis, bounds)
            if refined is None:
                return None
            bounds = refined
        return bounds
    if kind in _UNSIGNED_COMPARISONS:
        effective = kind if polarity else _NEGATED[kind]
        return _contract_comparison(effective, constraint.args[0], constraint.args[1], analysis, bounds)
    # Disjunctions under positive polarity (and other connectives) are not
    # contracted — that would require splitting; the portfolio solver falls
    # back to sampling / bit-blasting for those.
    return bounds


_NEGATED = {
    TermKind.EQ: TermKind.NE,
    TermKind.NE: TermKind.EQ,
    TermKind.ULT: TermKind.UGE,
    TermKind.ULE: TermKind.UGT,
    TermKind.UGT: TermKind.ULE,
    TermKind.UGE: TermKind.ULT,
}


def _contract_comparison(
    kind: TermKind,
    left: Term,
    right: Term,
    analysis: IntervalAnalysis,
    bounds: Dict[str, Interval],
) -> Optional[Dict[str, Interval]]:
    left_iv = analysis.interval(left)
    right_iv = analysis.interval(right)
    if left_iv.is_empty or right_iv.is_empty:
        return None

    if kind is TermKind.EQ:
        meet = left_iv.intersect(right_iv)
        if meet.is_empty:
            return None
        bounds = _push_down(left, meet, bounds, analysis)
        if bounds is None:
            return None
        return _push_down(right, meet, bounds, analysis)
    if kind is TermKind.NE:
        if left_iv.is_point and right_iv.is_point and left_iv.lo == right_iv.lo:
            return None
        return bounds
    if kind is TermKind.ULT:
        new_left = left_iv.intersect(Interval(0, right_iv.hi - 1))
        new_right = right_iv.intersect(Interval(left_iv.lo + 1, mask(right.width)))
        if new_left.is_empty or new_right.is_empty:
            return None
        bounds = _push_down(left, new_left, bounds, analysis)
        if bounds is None:
            return None
        return _push_down(right, new_right, bounds, analysis)
    if kind is TermKind.ULE:
        new_left = left_iv.intersect(Interval(0, right_iv.hi))
        new_right = right_iv.intersect(Interval(left_iv.lo, mask(right.width)))
        if new_left.is_empty or new_right.is_empty:
            return None
        bounds = _push_down(left, new_left, bounds, analysis)
        if bounds is None:
            return None
        return _push_down(right, new_right, bounds, analysis)
    if kind is TermKind.UGT:
        return _contract_comparison(TermKind.ULT, right, left, analysis, bounds)
    if kind is TermKind.UGE:
        return _contract_comparison(TermKind.ULE, right, left, analysis, bounds)
    return bounds


def _invert_scaled(
    target: Interval, factor: int, width: int, base_hi: int
) -> Interval:
    """Sound preimage hull of ``x`` for ``(x * factor) mod 2^width in target``.

    Multiplication is modular: for ``x`` up to ``base_hi`` (a sound upper
    bound on the base operand) the product ``x * factor`` wraps up to
    ``k_max = factor * base_hi // 2^width`` times, and every wrap count ``k``
    contributes the preimage interval ``[ceil((target.lo + k*2^width) /
    factor), (target.hi + k*2^width) // factor]``.  The convex hull of those
    intervals is ``[ceil(target.lo / factor), (target.hi + k_max*2^width) //
    factor]``; when no wrap is possible (``k_max == 0``) this is the exact
    non-modular inversion.
    """
    modulus = 1 << width
    k_max = (factor * base_hi) // modulus
    lo = (target.lo + factor - 1) // factor
    hi = (target.hi + k_max * modulus) // factor
    return Interval(lo, min(hi, mask(width)))


def _push_down(
    term: Term,
    target: Interval,
    bounds: Dict[str, Interval],
    analysis: Optional[IntervalAnalysis] = None,
) -> Optional[Dict[str, Interval]]:
    """Propagate a required output interval backwards into variable bounds.

    Only structurally invertible operators are handled; everything else is a
    no-op (sound: the bounds simply stay wider).  ``analysis`` supplies
    forward intervals so modular operators can bound their wrap count.
    """
    if bounds is None:
        return None
    kind = term.kind
    if kind is TermKind.BV_VAR:
        name = str(term.name)
        current = bounds.get(name, Interval.full(term.width))
        refined = current.intersect(target)
        if refined.is_empty:
            return None
        new_bounds = dict(bounds)
        new_bounds[name] = refined
        return new_bounds
    if kind is TermKind.BV_CONST:
        return bounds if term.value in target else None
    if kind is TermKind.ZEXT:
        return _push_down(
            term.args[0], target.widen_to(term.args[0].width), bounds, analysis
        )
    if kind is TermKind.EXTRACT:
        high, low = term.params
        if low == 0:
            inner = term.args[0]
            # The low bits being in [lo, hi] does not bound the high bits,
            # unless the extract covers the whole operand.
            if high == inner.width - 1:
                return _push_down(inner, target, bounds, analysis)
        return bounds
    if kind is TermKind.ADD:
        left, right = term.args
        if right.kind is TermKind.BV_CONST:
            offset = right.value
            shifted = Interval(target.lo - offset, target.hi - offset)
            if shifted.lo < 0:
                return bounds
            return _push_down(left, shifted, bounds, analysis)
        if left.kind is TermKind.BV_CONST:
            offset = left.value
            shifted = Interval(target.lo - offset, target.hi - offset)
            if shifted.lo < 0:
                return bounds
            return _push_down(right, shifted, bounds, analysis)
        return bounds
    if kind is TermKind.MUL:
        left, right = term.args
        if right.kind is TermKind.BV_CONST and right.value > 0:
            shrunk = _invert_scaled(
                target, right.value, term.width, _forward_hi(left, analysis)
            )
            return _push_down(left, shrunk, bounds, analysis)
        if left.kind is TermKind.BV_CONST and left.value > 0:
            shrunk = _invert_scaled(
                target, left.value, term.width, _forward_hi(right, analysis)
            )
            return _push_down(right, shrunk, bounds, analysis)
        return bounds
    if kind is TermKind.SHL:
        base, amount = term.args
        if amount.kind is TermKind.BV_CONST and amount.value < term.width:
            shrunk = _invert_scaled(
                target, 1 << amount.value, term.width, _forward_hi(base, analysis)
            )
            return _push_down(base, shrunk, bounds, analysis)
        return bounds
    if kind is TermKind.LSHR:
        base, amount = term.args
        if amount.kind is TermKind.BV_CONST and amount.value < term.width:
            shift = amount.value
            grown = Interval(target.lo << shift, ((target.hi + 1) << shift) - 1)
            return _push_down(base, grown.widen_to(base.width), bounds, analysis)
        return bounds
    if kind is TermKind.UDIV:
        base, divisor = term.args
        if divisor.kind is TermKind.BV_CONST and divisor.value > 0:
            d = divisor.value
            grown = Interval(target.lo * d, target.hi * d + d - 1)
            return _push_down(base, grown.widen_to(base.width), bounds, analysis)
        return bounds
    return bounds


def _forward_hi(term: Term, analysis: Optional[IntervalAnalysis]) -> int:
    """A sound upper bound for ``term`` (full range when no analysis given)."""
    if analysis is None:
        return mask(term.width)
    interval = analysis.interval(term)
    if interval.is_empty:
        return mask(term.width)
    return interval.hi
