"""Shared solver-result cache keyed on canonicalized constraint systems.

The campaign engine runs many near-identical solver queries: enforcement
iterations re-check growing prefixes of the same system, and sibling target
sites constrain structurally identical expressions over differently named
field variables.  This module lets all of them share one answer store.

Canonicalization has two steps:

1. every conjunct is simplified (the portfolio front end already does this),
   so syntactic noise collapses into the hash-consed term DAG;
2. variables are renamed to ``v000, v001, ...`` in first-occurrence order
   across the ordered conjunct list, so alpha-equivalent systems rebuild the
   *same* interned canonical terms.

Because terms are hash-consed, the canonical conjuncts of two equivalent
systems are identical objects, and the cache key is simply the tuple of
their intern ids (plus a solver-configuration fingerprint — results under
different budgets must not be conflated).

Determinism is by construction: on a miss the solver decides the *canonical
representative* of the query and the cache stores that canonical result, so
the answer every caller receives is a pure function of the canonical system
— independent of scheduling order, worker count, or which alpha-variant
arrived first.  SAT models are translated back through the renaming and
verified against the caller's actual conjuncts before being returned.

Verdicts are stored at two granularities.  The *whole-query* table keys on
the full canonical conjunct list; underneath it, the *component* table keys
on the canonical form of one connected component of the variable-sharing
graph (see :mod:`repro.smt.decompose`).  A component shared by two
different whole queries — sibling sites, successive enforcement
iterations, multi-site screening conjunctions — hits in the component
table even though the whole-query keys differ.

The module also owns the persistent simplification memo
(:func:`enable_simplify_memo`): simplification is a pure function of an
interned term, so memoizing it across the whole campaign removes the single
largest source of re-derived work in the concolic stage.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt import simplify as _simplify_module
from repro.smt.evalmodel import Model
from repro.smt.terms import Term, TermKind


@dataclass(frozen=True)
class CanonicalSystem:
    """A constraint system rewritten over canonical variable names."""

    #: Hashable cache key: config fingerprint + intern ids of the canonical
    #: conjuncts (order-preserving — conjunct order can influence which model
    #: the portfolio returns, so it is part of the identity).
    key: Tuple
    #: The canonically renamed conjuncts, in the caller's order.
    conjuncts: Tuple[Term, ...]
    #: canonical name -> the caller's variable name.
    from_canonical: Tuple[Tuple[str, str], ...]

    def translate_model(self, canonical_model: Model) -> Model:
        """Map a model over canonical names back to the caller's names."""
        names = dict(self.from_canonical)
        translated = Model()
        for name in canonical_model:
            actual = names.get(name)
            if actual is not None:
                translated[actual] = canonical_model[name]
        return translated


@dataclass(frozen=True)
class CachedVerdict:
    """One stored solver answer, in canonical variable space."""

    status: str
    canonical_model: Optional[Model]
    reason: str
    #: Portfolio stages the original derivation ran, so a cache hit can
    #: report the verdict's full provenance instead of an empty stage list.
    stages: Tuple[str, ...] = ()


@dataclass
class SolverCacheStats:
    """Hit/miss counters for one :class:`SolverCache`.

    ``hits``/``misses``/``stores``/``invalid_hits`` count this cache's own
    whole-query lookups and stores; ``component_*`` count the
    component-granularity layer underneath (consulted only after a
    whole-query miss); ``merged`` counts entries adopted wholesale from
    elsewhere (a persistent on-disk store, a worker process's delta), and
    ``evictions`` counts entries dropped by the ``max_entries`` bound.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid_hits: int = 0
    merged: int = 0
    evictions: int = 0
    component_hits: int = 0
    component_misses: int = 0
    component_stores: int = 0
    component_evictions: int = 0
    #: Queries answered UNSAT because a stored canonical core subsumed them.
    core_hits: int = 0
    core_stores: int = 0
    #: Bit-blasts skipped because a stored CNF skeleton was replayed.
    cnf_hits: int = 0
    cnf_stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of whole-query lookups answered from the cache."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def component_hit_rate(self) -> float:
        """Fraction of component lookups answered from the cache."""
        total = self.component_hits + self.component_misses
        return self.component_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid_hits": self.invalid_hits,
            "merged": self.merged,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate(), 4),
            "component_hits": self.component_hits,
            "component_misses": self.component_misses,
            "component_stores": self.component_stores,
            "component_evictions": self.component_evictions,
            "component_hit_rate": round(self.component_hit_rate(), 4),
            "core_hits": self.core_hits,
            "core_stores": self.core_stores,
            "cnf_hits": self.cnf_hits,
            "cnf_stores": self.cnf_stores,
        }


class SolverCache:
    """Thread-safe store of solver verdicts keyed by canonical systems.

    One instance is shared by every :class:`~repro.smt.solver.PortfolioSolver`
    a campaign creates; entries are idempotent (two workers racing on the
    same canonical system store the same verdict), so no cross-worker
    coordination beyond the internal lock is needed.
    """

    #: Entry kinds: whole-query verdicts, connected-component verdicts,
    #: canonical UNSAT cores and blasted-CNF skeletons.  The kind strings
    #: double as the unified store's record namespaces
    #: (:mod:`repro.store`).
    KIND_QUERY = "query"
    KIND_COMPONENT = "component"
    KIND_CORE = "core"
    KIND_CNF = "cnf"

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self._entries: Dict[Tuple, CachedVerdict] = {}
        # Canonical conjuncts per key, kept so entries can be exported —
        # to a persistent CacheStore or across a process boundary — and
        # rebuilt against a fresh intern table on the other side.
        self._conjuncts: Dict[Tuple, Tuple[Term, ...]] = {}
        # The component-granularity layer: same key scheme, disjoint table.
        # Component keys are always computed by *re*-canonicalizing the
        # whole query's canonical conjuncts (first-application
        # canonicalization is not a normal form — the commutative tiebreak
        # compares the names the rename just changed), so every embedding
        # of a component in any whole query lands on one shared key.
        self._component_entries: Dict[Tuple, CachedVerdict] = {}
        self._component_conjuncts: Dict[Tuple, Tuple[Term, ...]] = {}
        # Canonical UNSAT cores, per fingerprint: frozenset of the core
        # conjuncts' intern ids -> the core conjunct tuple.  A core is a
        # semantic certificate ("these canonical conjuncts are jointly
        # infeasible"), so any canonical query whose conjunct-id set is a
        # superset is UNSAT without solving.  Small (a handful of terms
        # each), so unbounded.
        self._cores: Dict[Tuple, Dict[frozenset, Tuple[Term, ...]]] = {}
        # Blasted-CNF skeletons keyed by the *ordered* canonical conjunct
        # ids: the pure Tseitin translation of one canonical component,
        # persistable even for queries whose verdict (UNKNOWN) never is —
        # a warm run re-solves those but skips the translation.  The
        # stored object is a :class:`repro.smt.bitblast.CnfSkeleton`;
        # kept opaque here so this module stays solver-agnostic.
        self._cnf_skeletons: Dict[Tuple[int, ...], object] = {}
        self._cnf_conjuncts: Dict[Tuple[int, ...], Tuple[Term, ...]] = {}
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.stats = SolverCacheStats()
        # Normalization and structural keys are pure functions of interned
        # terms, and the enforcement loop's queries are supersets of earlier
        # ones — persisting these memos makes repeat canonicalization
        # O(new terms) instead of O(whole system).  Races on the dicts are
        # benign (idempotent values under the GIL).
        self._norm_memo: Dict[Term, Term] = {}
        self._key_memo: Dict[Term, Tuple[str, str]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def component_count(self) -> int:
        """Number of component-granularity entries currently stored."""
        return len(self._component_entries)

    def core_count(self) -> int:
        """Number of stored canonical UNSAT cores (all fingerprints)."""
        return sum(len(table) for table in self._cores.values())

    def cnf_count(self) -> int:
        """Number of stored blasted-CNF skeletons."""
        return len(self._cnf_skeletons)

    # ------------------------------------------------------------------
    def canonicalize(
        self, conjuncts: Sequence[Term], fingerprint: Tuple
    ) -> CanonicalSystem:
        """Build the canonical system (and cache key) for ``conjuncts``.

        Commutative operand order is normalized *before* variables are
        renamed: the simplifier orders commutative operands by intern id
        (process creation history), so without this step two alpha-equivalent
        systems could walk their variables in different orders and end up
        with different canonical names.  The normalization key is structural
        and uses the original variable names, so it is stable across
        processes and across intern-table history.
        """
        normalized = tuple(
            _normalize(c, self._norm_memo, self._key_memo) for c in conjuncts
        )
        rename: Dict[str, str] = {}
        for conjunct in normalized:
            _collect_names(conjunct, rename)
        memo: Dict[Term, Term] = {}
        canonical = tuple(_rename_term(c, rename, memo) for c in normalized)
        key = (fingerprint, tuple(t._id for t in canonical))
        return CanonicalSystem(
            key=key,
            conjuncts=canonical,
            from_canonical=tuple(
                (canonical_name, actual) for actual, canonical_name in rename.items()
            ),
        )

    def lookup(self, system: CanonicalSystem) -> Optional[CachedVerdict]:
        """Return the stored verdict for ``system``, counting hit/miss."""
        from repro.obs.events import CACHE_HIT, CACHE_MISS, EVENTS

        with self._lock:
            entry = self._entries.get(system.key)
            if entry is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        # Whole-query granularity only: component lookups run orders of
        # magnitude hotter and stay out of the event stream by design
        # (their totals live in the stats tuple / metrics registry).
        EVENTS.emit(CACHE_HIT if entry is not None else CACHE_MISS)
        return entry

    def store(self, system: CanonicalSystem, verdict: CachedVerdict) -> None:
        """Store the canonical verdict for ``system`` (idempotent).

        When ``max_entries`` is set the cache evicts in FIFO order: entries
        are idempotent pure functions of their canonical system, so evicting
        one can only cost a future re-derivation, never correctness.
        """
        with self._lock:
            if self._insert(self._entries, self._conjuncts, system.key, system.conjuncts, verdict):
                self.stats.stores += 1

    def lookup_component(self, system: CanonicalSystem) -> Optional[CachedVerdict]:
        """Return the stored verdict for one canonical component."""
        with self._lock:
            entry = self._component_entries.get(system.key)
            if entry is None:
                self.stats.component_misses += 1
            else:
                self.stats.component_hits += 1
            return entry

    def store_component(self, system: CanonicalSystem, verdict: CachedVerdict) -> None:
        """Store the canonical verdict for one component (idempotent)."""
        with self._lock:
            if self._insert(
                self._component_entries,
                self._component_conjuncts,
                system.key,
                system.conjuncts,
                verdict,
            ):
                self.stats.component_stores += 1

    def _table_for(self, kind: str) -> Tuple[Dict, Dict]:
        if kind == self.KIND_COMPONENT:
            return self._component_entries, self._component_conjuncts
        if kind == self.KIND_QUERY:
            return self._entries, self._conjuncts
        raise ValueError(f"unknown cache entry kind {kind!r}")

    def _insert(
        self,
        entries: Dict[Tuple, CachedVerdict],
        conjunct_table: Dict[Tuple, Tuple[Term, ...]],
        key: Tuple,
        conjuncts: Tuple[Term, ...],
        verdict: CachedVerdict,
    ) -> bool:
        """Insert under the held lock, evicting FIFO past ``max_entries``.

        The bound applies to each table (whole-query / component)
        independently.  Returns whether the entry was stored — a
        non-positive ``max_entries`` means "keep nothing", not "evict
        forever".
        """
        if self.max_entries is not None and key not in entries:
            if self.max_entries <= 0:
                return False
            while len(entries) >= self.max_entries:
                oldest = next(iter(entries))
                del entries[oldest]
                conjunct_table.pop(oldest, None)
                if entries is self._entries:
                    self.stats.evictions += 1
                else:
                    self.stats.component_evictions += 1
        entries[key] = verdict
        conjunct_table[key] = tuple(conjuncts)
        return True

    # ------------------------------------------------------------------
    # Canonical UNSAT cores (kind "core")
    # ------------------------------------------------------------------
    def add_core(
        self, fingerprint: Tuple, conjuncts: Sequence[Term], merged: bool = False
    ) -> bool:
        """Record a canonical UNSAT core; returns whether it was new.

        ``conjuncts`` must be canonical terms (a subset of some canonical
        system's conjuncts).  Cores are per fingerprint — like every
        cached verdict, the certificate is only consulted for queries
        canonicalized under the same solver configuration.  ``merged``
        selects which counter the insert books (a local derivation vs an
        adoption from a store or a worker delta).
        """
        conjuncts = tuple(conjuncts)
        ids = frozenset(term._id for term in conjuncts)
        if not ids:
            return False
        with self._lock:
            table = self._cores.setdefault(fingerprint, {})
            if ids in table:
                return False
            table[ids] = conjuncts
            if merged:
                self.stats.merged += 1
            else:
                self.stats.core_stores += 1
            return True

    def match_core(self, system: CanonicalSystem) -> Optional[Tuple[Term, ...]]:
        """A stored core subsumed by ``system``'s conjuncts, or ``None``.

        Subsumption is set inclusion over intern ids: asserting a superset
        of a jointly infeasible conjunct set stays infeasible, so a match
        answers the query UNSAT without solving.
        """
        ids = {term._id for term in system.conjuncts}
        with self._lock:
            table = self._cores.get(system.key[0])
            if table:
                for core_ids, core_conjuncts in table.items():
                    if core_ids <= ids:
                        self.stats.core_hits += 1
                        return core_conjuncts
        return None

    def cores_snapshot(self) -> List[Tuple[Tuple, Tuple[Term, ...]]]:
        """Every stored core as ``(fingerprint, conjuncts)``."""
        with self._lock:
            return [
                (fingerprint, conjuncts)
                for fingerprint, table in self._cores.items()
                for conjuncts in table.values()
            ]

    # ------------------------------------------------------------------
    # Blasted-CNF skeletons (kind "cnf")
    # ------------------------------------------------------------------
    @staticmethod
    def _cnf_key(conjuncts: Sequence[Term]) -> Tuple[int, ...]:
        return tuple(term._id for term in conjuncts)

    def store_cnf(
        self, conjuncts: Sequence[Term], skeleton: object, merged: bool = False
    ) -> bool:
        """Store the Tseitin skeleton of canonical ``conjuncts``; True if new.

        The skeleton is a pure function of the (ordered, interned)
        canonical conjunct list, so there is nothing to reconcile on a
        collision — first writer wins.  Skeletons carry no fingerprint:
        the translation depends only on the terms, never on solver
        budgets.
        """
        key = self._cnf_key(conjuncts)
        if not key:
            return False
        with self._lock:
            if key in self._cnf_skeletons:
                return False
            self._cnf_skeletons[key] = skeleton
            self._cnf_conjuncts[key] = tuple(conjuncts)
            if merged:
                self.stats.merged += 1
            else:
                self.stats.cnf_stores += 1
            return True

    def lookup_cnf(self, conjuncts: Sequence[Term]) -> Optional[object]:
        """The stored skeleton for canonical ``conjuncts``, or ``None``."""
        with self._lock:
            skeleton = self._cnf_skeletons.get(self._cnf_key(conjuncts))
            if skeleton is not None:
                self.stats.cnf_hits += 1
            return skeleton

    def cnf_snapshot(self) -> List[Tuple[Tuple[Term, ...], object]]:
        """Every stored skeleton as ``(canonical conjuncts, skeleton)``."""
        with self._lock:
            return [
                (self._cnf_conjuncts[key], skeleton)
                for key, skeleton in self._cnf_skeletons.items()
                if key in self._cnf_conjuncts
            ]

    def note_invalid_hit(self) -> None:
        """Record a hit whose translated model failed verification."""
        with self._lock:
            self.stats.invalid_hits += 1

    def clear(self) -> None:
        """Drop all entries and memos (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._conjuncts.clear()
            self._component_entries.clear()
            self._component_conjuncts.clear()
            self._cores.clear()
            self._cnf_skeletons.clear()
            self._cnf_conjuncts.clear()
            self._norm_memo.clear()
            self._key_memo.clear()

    # ------------------------------------------------------------------
    # Export / merge: the seam the persistent store and the process
    # backend share.  Entries travel as (fingerprint, canonical conjuncts,
    # verdict) triples tagged with their kind; the key is recomputed from
    # the receiving side's intern table, so intern ids never leak across
    # process or run boundaries.
    # ------------------------------------------------------------------
    def entries_snapshot(
        self, exclude_keys: Optional[set] = None, kind: str = KIND_QUERY
    ) -> List[Tuple[Tuple, Tuple[Term, ...], CachedVerdict]]:
        """Return ``(key, canonical conjuncts, verdict)`` for every entry."""
        entries, conjunct_table = self._table_for(kind)
        with self._lock:
            return [
                (key, conjunct_table[key], verdict)
                for key, verdict in entries.items()
                if key in conjunct_table
                and (exclude_keys is None or key not in exclude_keys)
            ]

    def merge_canonical(
        self,
        fingerprint: Tuple,
        conjuncts: Sequence[Term],
        verdict: CachedVerdict,
        kind: str = KIND_QUERY,
    ) -> Tuple:
        """Adopt one exported entry; returns its key in this cache.

        First writer wins: an entry already present (from this run's own
        solving or an earlier merge) is kept — both derive from the same
        canonical system, so they agree anyway.
        """
        conjuncts = tuple(conjuncts)
        key = (fingerprint, tuple(t._id for t in conjuncts))
        entries, conjunct_table = self._table_for(kind)
        with self._lock:
            if key not in entries and self._insert(
                entries, conjunct_table, key, conjuncts, verdict
            ):
                self.stats.merged += 1
        return key

    #: Width of the :meth:`stats_snapshot` tuple (the process backend's
    #: per-worker counter delta).
    STATS_FIELDS = 11

    def stats_snapshot(self) -> Tuple[int, ...]:
        """Atomic reading of the transferable counters.

        ``(hits, misses, stores, invalid_hits, component_hits,
        component_misses, component_stores, core_hits, core_stores,
        cnf_hits, cnf_stores)`` — the tuple the process backend ships from
        workers and folds back into the campaign cache via
        :meth:`add_external_stats`.
        """
        with self._lock:
            stats = self.stats
            return (
                stats.hits,
                stats.misses,
                stats.stores,
                stats.invalid_hits,
                stats.component_hits,
                stats.component_misses,
                stats.component_stores,
                stats.core_hits,
                stats.core_stores,
                stats.cnf_hits,
                stats.cnf_stores,
            )

    def add_external_stats(
        self,
        hits: int,
        misses: int,
        stores: int,
        invalid_hits: int,
        component_hits: int = 0,
        component_misses: int = 0,
        component_stores: int = 0,
        core_hits: int = 0,
        core_stores: int = 0,
        cnf_hits: int = 0,
        cnf_stores: int = 0,
    ) -> None:
        """Fold counter deltas from a worker-local cache into this one."""
        with self._lock:
            self.stats.hits += hits
            self.stats.misses += misses
            self.stats.stores += stores
            self.stats.invalid_hits += invalid_hits
            self.stats.component_hits += component_hits
            self.stats.component_misses += component_misses
            self.stats.component_stores += component_stores
            self.stats.core_hits += core_hits
            self.stats.core_stores += core_stores
            self.stats.cnf_hits += cnf_hits
            self.stats.cnf_stores += cnf_stores


# ----------------------------------------------------------------------
# Canonical renaming over the interned term DAG
# ----------------------------------------------------------------------
def _collect_names(term: Term, rename: Dict[str, str]) -> None:
    """Assign canonical names in deterministic first-occurrence DFS order."""
    stack: List[Term] = [term]
    while stack:
        node = stack.pop()
        if node.is_var:
            name = str(node.name)
            if name not in rename:
                rename[name] = f"v{len(rename):03d}"
        else:
            stack.extend(reversed(node.args))


#: Operators whose argument order is semantically irrelevant.
_COMMUTATIVE = frozenset(
    {
        TermKind.ADD,
        TermKind.MUL,
        TermKind.AND,
        TermKind.OR,
        TermKind.XOR,
        TermKind.EQ,
        TermKind.NE,
        TermKind.BAND,
        TermKind.BOR,
        TermKind.BXOR,
    }
)

#: Commutative operators that are also associative: whole same-kind chains
#: can be flattened and rebuilt in one canonical shape.  (EQ/NE are
#: commutative but not associative — their result sort differs from their
#: operand sort — so they only get the pairwise operand sort.)
_ASSOCIATIVE = frozenset(
    {
        TermKind.ADD,
        TermKind.MUL,
        TermKind.AND,
        TermKind.OR,
        TermKind.XOR,
        TermKind.BAND,
        TermKind.BOR,
        TermKind.BXOR,
    }
)


def _flatten_chain(term: Term) -> List[Term]:
    """Collect the operand leaves of a same-kind associative chain."""
    operands: List[Term] = []
    stack: List[Term] = [term]
    while stack:
        node = stack.pop()
        for arg in reversed(node.args):
            if arg.kind is term.kind and arg.width == term.width:
                stack.append(arg)
            else:
                operands.append(arg)
    return operands


def _structural_key(
    term: Term, key_memo: Dict[Term, Tuple[str, str]]
) -> Tuple[str, str]:
    """History-independent sort keys used to order commutative operands.

    Returns ``(erased, named)``: the primary key erases variable names (so
    structurally distinct operands order the same way regardless of what the
    variables are called), and the name-dependent key only breaks ties
    between operands that are structurally identical modulo naming.  Two
    systems related by an order-*preserving* renaming therefore normalize
    their operands identically; nothing depends on intern ids or process
    history.
    """
    cached = key_memo.get(term)
    if cached is not None:
        return cached
    if term.is_const:
        result = (f"#{term.value}:{term.width}", "")
    elif term.is_var:
        result = (f"V:{term.width}", str(term.name))
    else:
        children = [_structural_key(a, key_memo) for a in term.args]
        erased = " ".join(c[0] for c in children)
        named = " ".join(c[1] for c in children)
        params = ",".join(str(p) for p in term.params)
        head = f"({term.kind.value}:{params}:{term.width} "
        result = (head + erased + ")", named)
    key_memo[term] = result
    return result


def _normalize(
    term: Term, memo: Dict[Term, Term], key_memo: Dict[Term, Tuple[str, str]]
) -> Term:
    """Rebuild ``term`` in a canonical, history-independent shape.

    Commutative operands are sorted by structural key, and whole
    associative-commutative chains are flattened and re-folded
    left-associatively over the sorted operand list — the simplifier
    orders (and reassociates) such chains by intern id, i.e. by process
    creation history, so two alpha-equivalent systems can arrive with
    different tree *shapes*, not just different operand orders.
    """
    cached = memo.get(term)
    if cached is not None:
        return cached
    if not term.args:
        result = term
    elif term.kind in _ASSOCIATIVE:
        operands = [
            _normalize(operand, memo, key_memo) for operand in _flatten_chain(term)
        ]
        operands.sort(key=lambda t: _structural_key(t, key_memo))
        result = operands[0]
        for operand in operands[1:]:
            result = Term.make(term.kind, (result, operand), width=term.width)
    else:
        args = tuple(_normalize(a, memo, key_memo) for a in term.args)
        if term.kind in _COMMUTATIVE and len(args) == 2:
            args = tuple(sorted(args, key=lambda t: _structural_key(t, key_memo)))
        result = Term.make(
            term.kind,
            args,
            width=term.width,
            value=term.value,
            name=term.name,
            params=term.params,
        )
    memo[term] = result
    return result


def _rename_term(term: Term, rename: Dict[str, str], memo: Dict[Term, Term]) -> Term:
    cached = memo.get(term)
    if cached is not None:
        return cached
    if term.is_var:
        result = Term.make(
            term.kind, (), width=term.width, name=rename[str(term.name)]
        )
    elif not term.args:
        result = term
    else:
        args = tuple(_rename_term(a, rename, memo) for a in term.args)
        result = Term.make(
            term.kind,
            args,
            width=term.width,
            value=term.value,
            name=term.name,
            params=term.params,
        )
    memo[term] = result
    return result


# ----------------------------------------------------------------------
# Persistent simplification memo
# ----------------------------------------------------------------------
class SimplifyMemo:
    """Handle for the process-wide simplification memo.

    Enabling installs a persistent table into :mod:`repro.smt.simplify`;
    disabling restores the default per-call behaviour.  Nested enables share
    the same table (reference-counted), so a campaign can wrap an analysis
    that itself toggles the memo.
    """

    _lock = threading.Lock()
    _refcount = 0
    _table: Dict[Term, Term] = {}

    @classmethod
    def enable(cls) -> None:
        with cls._lock:
            cls._refcount += 1
            if cls._refcount == 1:
                cls._table = {}
                _simplify_module.install_memo(cls._table)

    @classmethod
    def disable(cls) -> None:
        with cls._lock:
            if cls._refcount == 0:
                return
            cls._refcount -= 1
            if cls._refcount == 0:
                _simplify_module.uninstall_memo()
                cls._table = {}

    @classmethod
    def size(cls) -> int:
        return len(cls._table)


class simplify_memo:
    """Context manager: ``with simplify_memo(): ...`` enables the memo."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled

    def __enter__(self) -> "simplify_memo":
        if self.enabled:
            SimplifyMemo.enable()
        return self

    def __exit__(self, *exc_info) -> None:
        if self.enabled:
            SimplifyMemo.disable()
