"""Shared solver-result cache keyed on canonicalized constraint systems.

The campaign engine runs many near-identical solver queries: enforcement
iterations re-check growing prefixes of the same system, and sibling target
sites constrain structurally identical expressions over differently named
field variables.  This module lets all of them share one answer store.

Canonicalization has two steps:

1. every conjunct is simplified (the portfolio front end already does this),
   so syntactic noise collapses into the hash-consed term DAG;
2. variables are renamed to ``v000, v001, ...`` in first-occurrence order
   across the ordered conjunct list, so alpha-equivalent systems rebuild the
   *same* interned canonical terms.

Because terms are hash-consed, the canonical conjuncts of two equivalent
systems are identical objects, and the cache key is simply the tuple of
their intern ids (plus a solver-configuration fingerprint — results under
different budgets must not be conflated).

Determinism is by construction: on a miss the solver decides the *canonical
representative* of the query and the cache stores that canonical result, so
the answer every caller receives is a pure function of the canonical system
— independent of scheduling order, worker count, or which alpha-variant
arrived first.  SAT models are translated back through the renaming and
verified against the caller's actual conjuncts before being returned.

The module also owns the persistent simplification memo
(:func:`enable_simplify_memo`): simplification is a pure function of an
interned term, so memoizing it across the whole campaign removes the single
largest source of re-derived work in the concolic stage.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt import simplify as _simplify_module
from repro.smt.evalmodel import Model
from repro.smt.terms import Term, TermKind


@dataclass(frozen=True)
class CanonicalSystem:
    """A constraint system rewritten over canonical variable names."""

    #: Hashable cache key: config fingerprint + intern ids of the canonical
    #: conjuncts (order-preserving — conjunct order can influence which model
    #: the portfolio returns, so it is part of the identity).
    key: Tuple
    #: The canonically renamed conjuncts, in the caller's order.
    conjuncts: Tuple[Term, ...]
    #: canonical name -> the caller's variable name.
    from_canonical: Tuple[Tuple[str, str], ...]

    def translate_model(self, canonical_model: Model) -> Model:
        """Map a model over canonical names back to the caller's names."""
        names = dict(self.from_canonical)
        translated = Model()
        for name in canonical_model:
            actual = names.get(name)
            if actual is not None:
                translated[actual] = canonical_model[name]
        return translated


@dataclass(frozen=True)
class CachedVerdict:
    """One stored solver answer, in canonical variable space."""

    status: str
    canonical_model: Optional[Model]
    reason: str


@dataclass
class SolverCacheStats:
    """Hit/miss counters for one :class:`SolverCache`.

    ``hits``/``misses``/``stores``/``invalid_hits`` count this cache's own
    lookups and stores; ``merged`` counts entries adopted wholesale from
    elsewhere (a persistent on-disk store, a worker process's delta), and
    ``evictions`` counts entries dropped by the ``max_entries`` bound.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid_hits: int = 0
    merged: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid_hits": self.invalid_hits,
            "merged": self.merged,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate(), 4),
        }


class SolverCache:
    """Thread-safe store of solver verdicts keyed by canonical systems.

    One instance is shared by every :class:`~repro.smt.solver.PortfolioSolver`
    a campaign creates; entries are idempotent (two workers racing on the
    same canonical system store the same verdict), so no cross-worker
    coordination beyond the internal lock is needed.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self._entries: Dict[Tuple, CachedVerdict] = {}
        # Canonical conjuncts per key, kept so entries can be exported —
        # to a persistent CacheStore or across a process boundary — and
        # rebuilt against a fresh intern table on the other side.
        self._conjuncts: Dict[Tuple, Tuple[Term, ...]] = {}
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.stats = SolverCacheStats()
        # Normalization and structural keys are pure functions of interned
        # terms, and the enforcement loop's queries are supersets of earlier
        # ones — persisting these memos makes repeat canonicalization
        # O(new terms) instead of O(whole system).  Races on the dicts are
        # benign (idempotent values under the GIL).
        self._norm_memo: Dict[Term, Term] = {}
        self._key_memo: Dict[Term, Tuple[str, str]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def canonicalize(
        self, conjuncts: Sequence[Term], fingerprint: Tuple
    ) -> CanonicalSystem:
        """Build the canonical system (and cache key) for ``conjuncts``.

        Commutative operand order is normalized *before* variables are
        renamed: the simplifier orders commutative operands by intern id
        (process creation history), so without this step two alpha-equivalent
        systems could walk their variables in different orders and end up
        with different canonical names.  The normalization key is structural
        and uses the original variable names, so it is stable across
        processes and across intern-table history.
        """
        normalized = tuple(
            _normalize(c, self._norm_memo, self._key_memo) for c in conjuncts
        )
        rename: Dict[str, str] = {}
        for conjunct in normalized:
            _collect_names(conjunct, rename)
        memo: Dict[Term, Term] = {}
        canonical = tuple(_rename_term(c, rename, memo) for c in normalized)
        key = (fingerprint, tuple(t._id for t in canonical))
        return CanonicalSystem(
            key=key,
            conjuncts=canonical,
            from_canonical=tuple(
                (canonical_name, actual) for actual, canonical_name in rename.items()
            ),
        )

    def lookup(self, system: CanonicalSystem) -> Optional[CachedVerdict]:
        """Return the stored verdict for ``system``, counting hit/miss."""
        with self._lock:
            entry = self._entries.get(system.key)
            if entry is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return entry

    def store(self, system: CanonicalSystem, verdict: CachedVerdict) -> None:
        """Store the canonical verdict for ``system`` (idempotent).

        When ``max_entries`` is set the cache evicts in FIFO order: entries
        are idempotent pure functions of their canonical system, so evicting
        one can only cost a future re-derivation, never correctness.
        """
        with self._lock:
            if self._insert(system.key, system.conjuncts, verdict):
                self.stats.stores += 1

    def _insert(
        self, key: Tuple, conjuncts: Tuple[Term, ...], verdict: CachedVerdict
    ) -> bool:
        """Insert under the held lock, evicting FIFO past ``max_entries``.

        Returns whether the entry was stored — a non-positive
        ``max_entries`` means "keep nothing", not "evict forever".
        """
        if self.max_entries is not None and key not in self._entries:
            if self.max_entries <= 0:
                return False
            while len(self._entries) >= self.max_entries:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                self._conjuncts.pop(oldest, None)
                self.stats.evictions += 1
        self._entries[key] = verdict
        self._conjuncts[key] = tuple(conjuncts)
        return True

    def note_invalid_hit(self) -> None:
        """Record a hit whose translated model failed verification."""
        with self._lock:
            self.stats.invalid_hits += 1

    def clear(self) -> None:
        """Drop all entries and memos (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._conjuncts.clear()
            self._norm_memo.clear()
            self._key_memo.clear()

    # ------------------------------------------------------------------
    # Export / merge: the seam the persistent store and the process
    # backend share.  Entries travel as (fingerprint, canonical conjuncts,
    # verdict) triples; the key is recomputed from the receiving side's
    # intern table, so intern ids never leak across process or run
    # boundaries.
    # ------------------------------------------------------------------
    def entries_snapshot(
        self, exclude_keys: Optional[set] = None
    ) -> List[Tuple[Tuple, Tuple[Term, ...], CachedVerdict]]:
        """Return ``(key, canonical conjuncts, verdict)`` for every entry."""
        with self._lock:
            return [
                (key, self._conjuncts[key], verdict)
                for key, verdict in self._entries.items()
                if key in self._conjuncts
                and (exclude_keys is None or key not in exclude_keys)
            ]

    def merge_canonical(
        self,
        fingerprint: Tuple,
        conjuncts: Sequence[Term],
        verdict: CachedVerdict,
    ) -> Tuple:
        """Adopt one exported entry; returns its key in this cache.

        First writer wins: an entry already present (from this run's own
        solving or an earlier merge) is kept — both derive from the same
        canonical system, so they agree anyway.
        """
        conjuncts = tuple(conjuncts)
        key = (fingerprint, tuple(t._id for t in conjuncts))
        with self._lock:
            if key not in self._entries and self._insert(key, conjuncts, verdict):
                self.stats.merged += 1
        return key

    def stats_snapshot(self) -> Tuple[int, int, int, int]:
        """Atomic ``(hits, misses, stores, invalid_hits)`` reading."""
        with self._lock:
            stats = self.stats
            return (stats.hits, stats.misses, stats.stores, stats.invalid_hits)

    def add_external_stats(
        self, hits: int, misses: int, stores: int, invalid_hits: int
    ) -> None:
        """Fold counter deltas from a worker-local cache into this one."""
        with self._lock:
            self.stats.hits += hits
            self.stats.misses += misses
            self.stats.stores += stores
            self.stats.invalid_hits += invalid_hits


# ----------------------------------------------------------------------
# Canonical renaming over the interned term DAG
# ----------------------------------------------------------------------
def _collect_names(term: Term, rename: Dict[str, str]) -> None:
    """Assign canonical names in deterministic first-occurrence DFS order."""
    stack: List[Term] = [term]
    while stack:
        node = stack.pop()
        if node.is_var:
            name = str(node.name)
            if name not in rename:
                rename[name] = f"v{len(rename):03d}"
        else:
            stack.extend(reversed(node.args))


#: Operators whose argument order is semantically irrelevant.
_COMMUTATIVE = frozenset(
    {
        TermKind.ADD,
        TermKind.MUL,
        TermKind.AND,
        TermKind.OR,
        TermKind.XOR,
        TermKind.EQ,
        TermKind.NE,
        TermKind.BAND,
        TermKind.BOR,
        TermKind.BXOR,
    }
)


def _structural_key(
    term: Term, key_memo: Dict[Term, Tuple[str, str]]
) -> Tuple[str, str]:
    """History-independent sort keys used to order commutative operands.

    Returns ``(erased, named)``: the primary key erases variable names (so
    structurally distinct operands order the same way regardless of what the
    variables are called), and the name-dependent key only breaks ties
    between operands that are structurally identical modulo naming.  Two
    systems related by an order-*preserving* renaming therefore normalize
    their operands identically; nothing depends on intern ids or process
    history.
    """
    cached = key_memo.get(term)
    if cached is not None:
        return cached
    if term.is_const:
        result = (f"#{term.value}:{term.width}", "")
    elif term.is_var:
        result = (f"V:{term.width}", str(term.name))
    else:
        children = [_structural_key(a, key_memo) for a in term.args]
        erased = " ".join(c[0] for c in children)
        named = " ".join(c[1] for c in children)
        params = ",".join(str(p) for p in term.params)
        head = f"({term.kind.value}:{params}:{term.width} "
        result = (head + erased + ")", named)
    key_memo[term] = result
    return result


def _normalize(
    term: Term, memo: Dict[Term, Term], key_memo: Dict[Term, Tuple[str, str]]
) -> Term:
    """Rebuild ``term`` with commutative operands in structural-key order."""
    cached = memo.get(term)
    if cached is not None:
        return cached
    if not term.args:
        result = term
    else:
        args = tuple(_normalize(a, memo, key_memo) for a in term.args)
        if term.kind in _COMMUTATIVE and len(args) == 2:
            args = tuple(sorted(args, key=lambda t: _structural_key(t, key_memo)))
        result = Term.make(
            term.kind,
            args,
            width=term.width,
            value=term.value,
            name=term.name,
            params=term.params,
        )
    memo[term] = result
    return result


def _rename_term(term: Term, rename: Dict[str, str], memo: Dict[Term, Term]) -> Term:
    cached = memo.get(term)
    if cached is not None:
        return cached
    if term.is_var:
        result = Term.make(
            term.kind, (), width=term.width, name=rename[str(term.name)]
        )
    elif not term.args:
        result = term
    else:
        args = tuple(_rename_term(a, rename, memo) for a in term.args)
        result = Term.make(
            term.kind,
            args,
            width=term.width,
            value=term.value,
            name=term.name,
            params=term.params,
        )
    memo[term] = result
    return result


# ----------------------------------------------------------------------
# Persistent simplification memo
# ----------------------------------------------------------------------
class SimplifyMemo:
    """Handle for the process-wide simplification memo.

    Enabling installs a persistent table into :mod:`repro.smt.simplify`;
    disabling restores the default per-call behaviour.  Nested enables share
    the same table (reference-counted), so a campaign can wrap an analysis
    that itself toggles the memo.
    """

    _lock = threading.Lock()
    _refcount = 0
    _table: Dict[Term, Term] = {}

    @classmethod
    def enable(cls) -> None:
        with cls._lock:
            cls._refcount += 1
            if cls._refcount == 1:
                cls._table = {}
                _simplify_module.install_memo(cls._table)

    @classmethod
    def disable(cls) -> None:
        with cls._lock:
            if cls._refcount == 0:
                return
            cls._refcount -= 1
            if cls._refcount == 0:
                _simplify_module.uninstall_memo()
                cls._table = {}

    @classmethod
    def size(cls) -> int:
        return len(cls._table)


class simplify_memo:
    """Context manager: ``with simplify_memo(): ...`` enables the memo."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled

    def __enter__(self) -> "simplify_memo":
        if self.enabled:
            SimplifyMemo.enable()
        return self

    def __exit__(self, *exc_info) -> None:
        if self.enabled:
            SimplifyMemo.disable()
