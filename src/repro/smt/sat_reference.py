"""The pre-flattening object-graph CDCL solver, kept as a reference arm.

This module preserves the original ``_Clause``-object implementation of the
incremental CDCL solver exactly as it stood before :mod:`repro.smt.sat` was
rewritten around flat integer arrays.  It serves two purposes:

* **differential oracle** — property tests solve the same CNF with both
  implementations and require identical SAT/UNSAT statuses (and sound
  models/cores), pinning the flat rewrite to the original semantics;
* **"before" benchmark arm** — ``benchmarks/bench_solver.py`` and
  ``benchmarks/bench_enforcement.py`` swap this solver (and the interpreted
  term evaluator) back in via :func:`repro.smt.hotpath.legacy_hot_path` to
  measure the flattened hot path against the code it replaced.

It shares :class:`~repro.smt.sat.SatStatus` / :class:`~repro.smt.sat.SatResult`
with the flat solver so results are interchangeable.  Do not extend this
module; new solver work happens in :mod:`repro.smt.sat`.
"""


from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt.cnf import CNF
from repro.smt.sat import SatResult, SatStatus


class _Clause:
    """A clause with two watched literals (the first two positions)."""

    __slots__ = ("literals", "learned", "activity")

    def __init__(self, literals: List[int], learned: bool = False) -> None:
        self.literals = literals
        self.learned = learned
        self.activity = 0.0

    def __len__(self) -> int:
        return len(self.literals)

    def __repr__(self) -> str:
        return f"Clause({self.literals})"


class ReferenceCDCLSolver:
    """Conflict-driven clause learning SAT solver over a :class:`CNF`.

    The solver keeps a reference to ``cnf`` and loads newly appended
    clauses on every :meth:`solve` call, so one instance can serve a
    growing formula (the persistent bit-blaster of a solver session).
    """

    def __init__(
        self,
        cnf: CNF,
        max_conflicts: Optional[int] = None,
        var_decay: float = 0.95,
        clause_decay: float = 0.999,
    ) -> None:
        self.num_vars = 0
        self.max_conflicts = max_conflicts
        self.var_decay = var_decay
        self.clause_decay = clause_decay

        # Assignment state: index by variable (1-based).
        self.assigns: List[Optional[bool]] = [None]
        self.level: List[int] = [0]
        self.reason: List[Optional[_Clause]] = [None]
        self.saved_phase: List[bool] = [False]
        self.activity: List[float] = [0.0]
        self.var_inc = 1.0
        self.clause_inc = 1.0

        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.propagation_head = 0

        self.clauses: List[_Clause] = []
        self.learned: List[_Clause] = []
        self.watches: Dict[int, List[_Clause]] = {}

        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0

        self._cnf = cnf
        self._loaded_clauses = 0
        self._contradiction = False
        self._sync_with_cnf()

    # ------------------------------------------------------------------
    # Incremental clause loading
    # ------------------------------------------------------------------
    def _grow_to(self, num_vars: int) -> None:
        if num_vars <= self.num_vars:
            return
        extra = num_vars - self.num_vars
        self.assigns.extend([None] * extra)
        self.level.extend([0] * extra)
        self.reason.extend([None] * extra)
        self.saved_phase.extend([False] * extra)
        self.activity.extend([0.0] * extra)
        self.num_vars = num_vars

    def _sync_with_cnf(self) -> None:
        """Load clauses appended to the attached CNF since the last call.

        Must run at decision level 0: new clauses are simplified against the
        root-level assignment (satisfied clauses dropped, permanently false
        literals removed), which keeps the two-watched-literal invariant
        intact for assignments whose propagation events have already been
        consumed.
        """
        if self._cnf.has_contradiction:
            self._contradiction = True
        self._grow_to(self._cnf.num_vars)
        while self._loaded_clauses < len(self._cnf.clauses):
            clause = self._cnf.clauses[self._loaded_clauses]
            self._loaded_clauses += 1
            if not self._add_clause(list(clause)):
                self._contradiction = True
                break

    # ------------------------------------------------------------------
    # Clause database
    # ------------------------------------------------------------------
    def _watch(self, literal: int, clause: _Clause) -> None:
        self.watches.setdefault(literal, []).append(clause)

    def _add_clause(self, literals: List[int]) -> bool:
        """Add an original clause at level 0; ``False`` on a contradiction.

        (Learned clauses take the separate :meth:`_learn` path, which
        asserts at the backjump level instead of simplifying at the root.)
        """
        literals = list(dict.fromkeys(literals))
        if any(-lit in literals for lit in literals):
            return True
        # Root-level simplification: a literal true at level 0 satisfies the
        # clause forever; one false at level 0 can never help it.
        kept: List[int] = []
        for lit in literals:
            value = self._value(lit)
            if value is None:
                kept.append(lit)
            elif value is True:
                return True
            # value is False at level 0: drop the literal.
        if not kept:
            return False
        if len(kept) == 1:
            self._assign(kept[0], None)
            return True
        clause = _Clause(kept)
        self.clauses.append(clause)
        self._watch(kept[0], clause)
        self._watch(kept[1], clause)
        return True

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------
    def _value(self, literal: int) -> Optional[bool]:
        assigned = self.assigns[abs(literal)]
        if assigned is None:
            return None
        return assigned if literal > 0 else not assigned

    def _assign(self, literal: int, reason: Optional[_Clause]) -> None:
        var = abs(literal)
        self.assigns[var] = literal > 0
        self.level[var] = self._decision_level()
        self.reason[var] = reason
        self.saved_phase[var] = literal > 0
        self.trail.append(literal)

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _backtrack(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        cut = self.trail_lim[target_level]
        for literal in self.trail[cut:]:
            var = abs(literal)
            self.assigns[var] = None
            self.reason[var] = None
        del self.trail[cut:]
        del self.trail_lim[target_level:]
        self.propagation_head = min(self.propagation_head, len(self.trail))

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[_Clause]:
        """Unit-propagate; returns a conflicting clause or ``None``."""
        while self.propagation_head < len(self.trail):
            literal = self.trail[self.propagation_head]
            self.propagation_head += 1
            self.propagations += 1
            falsified = -literal
            watchers = self.watches.get(falsified, [])
            new_watchers: List[_Clause] = []
            index = 0
            conflict: Optional[_Clause] = None
            while index < len(watchers):
                clause = watchers[index]
                index += 1
                literals = clause.literals
                # Normalise so literals[0] is the other watched literal.
                if literals[0] == falsified:
                    literals[0], literals[1] = literals[1], literals[0]
                if self._value(literals[0]) is True:
                    new_watchers.append(clause)
                    continue
                # Look for a new literal to watch.
                found = False
                for alt in range(2, len(literals)):
                    if self._value(literals[alt]) is not False:
                        literals[1], literals[alt] = literals[alt], literals[1]
                        self._watch(literals[1], clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                new_watchers.append(clause)
                if self._value(literals[0]) is False:
                    # Conflict: keep remaining watchers and report.
                    new_watchers.extend(watchers[index:])
                    conflict = clause
                    break
                self._assign(literals[0], clause)
            self.watches[falsified] = new_watchers
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: _Clause) -> Tuple[List[int], int]:
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        literal = 0
        clause: Optional[_Clause] = conflict
        trail_index = len(self.trail) - 1

        while True:
            assert clause is not None
            self._bump_clause(clause)
            for clause_literal in clause.literals:
                var = abs(clause_literal)
                # Skip the literal this clause propagated (the reason clause
                # of a variable contains the variable itself).
                if literal != 0 and var == abs(literal):
                    continue
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self.level[var] >= self._decision_level():
                        counter += 1
                    else:
                        learned.append(clause_literal)
            # Select the next literal to expand from the trail.
            while not seen[abs(self.trail[trail_index])]:
                trail_index -= 1
            literal = self.trail[trail_index]
            trail_index -= 1
            var = abs(literal)
            seen[var] = False
            counter -= 1
            clause = self.reason[var]
            if counter == 0:
                break
        learned[0] = -literal

        # Compute the backjump level (second-highest level in the clause).
        if len(learned) == 1:
            backjump = 0
        else:
            levels = sorted((self.level[abs(lit)] for lit in learned[1:]), reverse=True)
            backjump = levels[0]
        return learned, backjump

    # ------------------------------------------------------------------
    # VSIDS
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for index in range(1, self.num_vars + 1):
                self.activity[index] *= 1e-100
            self.var_inc *= 1e-100

    def _decay_var_activity(self) -> None:
        self.var_inc /= self.var_decay

    def _bump_clause(self, clause: _Clause) -> None:
        if clause.learned:
            clause.activity += self.clause_inc
            if clause.activity > 1e20:
                for learned in self.learned:
                    learned.activity *= 1e-20
                self.clause_inc *= 1e-20

    def _decay_clause_activity(self) -> None:
        self.clause_inc /= self.clause_decay

    def _pick_branch_variable(self) -> Optional[int]:
        best_var = None
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if self.assigns[var] is None and self.activity[var] > best_activity:
                best_var = var
                best_activity = self.activity[var]
        return best_var

    # ------------------------------------------------------------------
    # Learned clause management
    # ------------------------------------------------------------------
    def _reduce_learned(self) -> None:
        if len(self.learned) < 2000:
            return
        self.learned.sort(key=lambda c: c.activity)
        keep_from = len(self.learned) // 2
        removed = set(id(c) for c in self.learned[:keep_from] if len(c) > 2)
        if not removed:
            return
        self.learned = [c for c in self.learned if id(c) not in removed]
        for literal in list(self.watches):
            self.watches[literal] = [
                c for c in self.watches[literal] if id(c) not in removed
            ]

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        """Solve the formula under optional assumption literals.

        Assumptions hold for this call only: they are enqueued as
        pseudo-decisions below the real decision levels, so neither they nor
        anything propagated from them survives into the next call.  An
        assumption literal that is (or becomes) false at a lower level makes
        the call return UNSAT without poisoning the clause database — and
        carries the final-conflict core over assumption literals (see
        :attr:`SatResult.core`; an UNSAT with an empty core means the
        formula itself is unsatisfiable).
        """
        self._backtrack(0)
        self._sync_with_cnf()
        marks = (self.conflicts, self.decisions, self.propagations, self.restarts)
        if self._contradiction:
            return self._result(SatStatus.UNSAT, marks=marks, core=())

        conflict = self._propagate()
        if conflict is not None:
            self._contradiction = True
            return self._result(SatStatus.UNSAT, marks=marks, core=())

        assumptions = [int(lit) for lit in assumptions]
        restart_threshold = 100
        luby = _luby_sequence()
        next_restart = self.conflicts + restart_threshold * next(luby)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                if self._decision_level() == 0:
                    self._contradiction = True
                    return self._result(SatStatus.UNSAT, marks=marks, core=())
                learned, backjump_level = self._analyze(conflict)
                self._backtrack(backjump_level)
                self._learn(learned)
                self._decay_var_activity()
                self._decay_clause_activity()
                if (
                    self.max_conflicts is not None
                    and self.conflicts - marks[0] >= self.max_conflicts
                ):
                    return self._result(SatStatus.UNKNOWN, marks=marks)
                if self.conflicts >= next_restart:
                    self.restarts += 1
                    next_restart = self.conflicts + restart_threshold * next(luby)
                    self._backtrack(0)
                    self._reduce_learned()
                continue

            if self._decision_level() < len(assumptions):
                # Establish the next assumption as a pseudo-decision.  A
                # level is opened even when the literal already holds, so
                # the level index always tells how many assumptions are in
                # force (and backjumps re-establish the rest on the way
                # back down).
                literal = assumptions[self._decision_level()]
                value = self._value(literal)
                if value is False:
                    return self._result(
                        SatStatus.UNSAT,
                        marks=marks,
                        core=self._analyze_final(literal),
                    )
                self.trail_lim.append(len(self.trail))
                if value is None:
                    self._assign(literal, None)
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                assignment = {
                    var: bool(self.assigns[var]) for var in range(1, self.num_vars + 1)
                }
                return self._result(SatStatus.SAT, assignment, marks=marks)
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            phase = self.saved_phase[variable]
            self._assign(variable if phase else -variable, None)

    def _analyze_final(self, failed: int) -> Tuple[int, ...]:
        """Explain a falsified assumption as a core over assumption literals.

        Called when establishing assumption ``failed`` found it already
        false.  Walks the trail backwards from ``-failed`` through reason
        clauses (MiniSat's ``analyzeFinal``): every reached literal assigned
        with no reason above level 0 is an assumption pseudo-decision (real
        decisions cannot exist yet — assumptions are established before any
        branching), and the collected assumptions plus ``failed`` itself are
        jointly unsatisfiable with the formula.  Level-0 assignments are
        implied by the formula alone and contribute nothing.
        """
        core = {failed}
        if self.level[abs(failed)] == 0:
            return tuple(sorted(core))
        pending = {abs(failed)}
        for trail_literal in reversed(self.trail):
            var = abs(trail_literal)
            if var not in pending:
                continue
            pending.discard(var)
            reason = self.reason[var]
            if reason is None:
                core.add(trail_literal)
                continue
            for clause_literal in reason.literals:
                other = abs(clause_literal)
                if other != var and self.level[other] > 0:
                    pending.add(other)
        return tuple(sorted(core))

    def _learn(self, learned: List[int]) -> None:
        if len(learned) == 1:
            self._assign(learned[0], None)
            return
        literals = list(learned)
        # Watch the asserting literal (position 0) and, to keep the watch
        # invariant intact across later backtracking, the literal assigned at
        # the highest remaining decision level (position 1).
        best = max(range(1, len(literals)), key=lambda i: self.level[abs(literals[i])])
        literals[1], literals[best] = literals[best], literals[1]
        clause = _Clause(literals, learned=True)
        self.learned.append(clause)
        self._watch(literals[0], clause)
        self._watch(literals[1], clause)
        self._assign(literals[0], clause)

    def _result(
        self,
        status: str,
        assignment: Optional[Dict[int, bool]] = None,
        marks: Tuple[int, int, int, int] = (0, 0, 0, 0),
        core: Optional[Tuple[int, ...]] = None,
    ) -> SatResult:
        return SatResult(
            status=status,
            assignment=assignment,
            conflicts=self.conflicts - marks[0],
            decisions=self.decisions - marks[1],
            propagations=self.propagations - marks[2],
            restarts=self.restarts - marks[3],
            core=core,
        )


def _luby_sequence():
    """Generate the Luby restart sequence 1, 1, 2, 1, 1, 2, 4, ..."""
    for index in itertools.count(1):
        yield _luby(index)


def _luby(index: int) -> int:
    """The index-th element (1-based) of the Luby sequence."""
    while True:
        k = index.bit_length()
        if index == (1 << k) - 1:
            return 1 << (k - 1)
        index -= (1 << (k - 1)) - 1


def reference_solve_cnf(cnf: CNF, max_conflicts: Optional[int] = None) -> SatResult:
    """Convenience wrapper: solve a CNF from scratch with the reference solver."""
    return ReferenceCDCLSolver(cnf, max_conflicts=max_conflicts).solve()
