"""CNF container used by the bit-blaster and the CDCL SAT solver.

Variables are positive integers starting at 1; literals follow the DIMACS
convention (negative integer = negated variable).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple


class CNF:
    """A growable CNF formula with named variable allocation."""

    def __init__(self) -> None:
        self.clauses: List[Tuple[int, ...]] = []
        self.num_vars: int = 0
        self._names: Dict[str, int] = {}
        self._contradiction = False

    # ------------------------------------------------------------------
    # Variable allocation
    # ------------------------------------------------------------------
    def new_var(self, name: Optional[str] = None) -> int:
        """Allocate a fresh variable, optionally remembering a name for it."""
        self.num_vars += 1
        var = self.num_vars
        if name is not None:
            self._names[name] = var
        return var

    def var_for(self, name: str) -> int:
        """Return the variable registered under ``name``, allocating it if new."""
        existing = self._names.get(name)
        if existing is not None:
            return existing
        return self.new_var(name)

    def named_vars(self) -> Dict[str, int]:
        """Mapping from registered names to variable indices."""
        return dict(self._names)

    # ------------------------------------------------------------------
    # Clause construction
    # ------------------------------------------------------------------
    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause; the empty clause marks the formula as contradictory."""
        clause = tuple(dict.fromkeys(int(lit) for lit in literals))
        if any(lit == 0 for lit in clause):
            raise ValueError("0 is not a valid literal")
        if any(-lit in clause for lit in clause):
            return  # tautology
        if not clause:
            self._contradiction = True
        self.clauses.append(clause)

    def add_unit(self, literal: int) -> None:
        """Add a unit clause forcing ``literal`` to be true."""
        self.add_clause((literal,))

    @property
    def has_contradiction(self) -> bool:
        """Whether an empty clause has been added."""
        return self._contradiction

    # ------------------------------------------------------------------
    # Gate encodings (Tseitin)
    # ------------------------------------------------------------------
    def encode_and(self, output: int, inputs: Iterable[int]) -> None:
        """Constrain ``output <-> AND(inputs)``."""
        inputs = list(inputs)
        for lit in inputs:
            self.add_clause((-output, lit))
        self.add_clause([output] + [-lit for lit in inputs])

    def encode_or(self, output: int, inputs: Iterable[int]) -> None:
        """Constrain ``output <-> OR(inputs)``."""
        inputs = list(inputs)
        for lit in inputs:
            self.add_clause((output, -lit))
        self.add_clause([-output] + list(inputs))

    def encode_xor(self, output: int, a: int, b: int) -> None:
        """Constrain ``output <-> a XOR b``."""
        self.add_clause((-output, a, b))
        self.add_clause((-output, -a, -b))
        self.add_clause((output, -a, b))
        self.add_clause((output, a, -b))

    def encode_iff(self, a: int, b: int) -> None:
        """Constrain ``a <-> b``."""
        self.add_clause((-a, b))
        self.add_clause((a, -b))

    def encode_ite(self, output: int, cond: int, then: int, otherwise: int) -> None:
        """Constrain ``output <-> (cond ? then : otherwise)``."""
        self.add_clause((-cond, -then, output))
        self.add_clause((-cond, then, -output))
        self.add_clause((cond, -otherwise, output))
        self.add_clause((cond, otherwise, -output))

    def encode_full_adder(self, a: int, b: int, cin: int) -> Tuple[int, int]:
        """Encode a full adder; returns ``(sum, carry_out)`` literals."""
        axb = self.new_var()
        self.encode_xor(axb, a, b)
        total = self.new_var()
        self.encode_xor(total, axb, cin)
        and_ab = self.new_var()
        self.encode_and(and_ab, (a, b))
        and_axb_cin = self.new_var()
        self.encode_and(and_axb_cin, (axb, cin))
        carry = self.new_var()
        self.encode_or(carry, (and_ab, and_axb_cin))
        return total, carry

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return f"CNF(vars={self.num_vars}, clauses={len(self.clauses)})"
