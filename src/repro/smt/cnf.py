"""CNF container used by the bit-blaster and the CDCL SAT solver.

Variables are positive integers starting at 1; literals follow the DIMACS
convention (negative integer = negated variable).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple


class CNF:
    """A growable CNF formula with named variable allocation."""

    def __init__(self) -> None:
        self.clauses: List[Tuple[int, ...]] = []
        self.num_vars: int = 0
        self._names: Dict[str, int] = {}
        self._contradiction = False

    # ------------------------------------------------------------------
    # Variable allocation
    # ------------------------------------------------------------------
    def new_var(self, name: Optional[str] = None) -> int:
        """Allocate a fresh variable, optionally remembering a name for it."""
        self.num_vars += 1
        var = self.num_vars
        if name is not None:
            self._names[name] = var
        return var

    def var_for(self, name: str) -> int:
        """Return the variable registered under ``name``, allocating it if new."""
        existing = self._names.get(name)
        if existing is not None:
            return existing
        return self.new_var(name)

    def named_vars(self) -> Dict[str, int]:
        """Mapping from registered names to variable indices."""
        return dict(self._names)

    # ------------------------------------------------------------------
    # Clause construction
    # ------------------------------------------------------------------
    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause; the empty clause marks the formula as contradictory."""
        clause = tuple(dict.fromkeys(int(lit) for lit in literals))
        if any(lit == 0 for lit in clause):
            raise ValueError("0 is not a valid literal")
        if any(-lit in clause for lit in clause):
            return  # tautology
        if not clause:
            self._contradiction = True
        self.clauses.append(clause)

    def add_unit(self, literal: int) -> None:
        """Add a unit clause forcing ``literal`` to be true."""
        self.add_clause((literal,))

    @property
    def has_contradiction(self) -> bool:
        """Whether an empty clause has been added."""
        return self._contradiction

    # ------------------------------------------------------------------
    # Gate encodings (Tseitin)
    # ------------------------------------------------------------------
    def encode_and(self, output: int, inputs: Iterable[int]) -> None:
        """Constrain ``output <-> AND(inputs)``."""
        inputs = list(inputs)
        for lit in inputs:
            self.add_clause((-output, lit))
        self.add_clause([output] + [-lit for lit in inputs])

    def encode_or(self, output: int, inputs: Iterable[int]) -> None:
        """Constrain ``output <-> OR(inputs)``."""
        inputs = list(inputs)
        for lit in inputs:
            self.add_clause((output, -lit))
        self.add_clause([-output] + list(inputs))

    def encode_xor(self, output: int, a: int, b: int) -> None:
        """Constrain ``output <-> a XOR b``."""
        self.add_clause((-output, a, b))
        self.add_clause((-output, -a, -b))
        self.add_clause((output, -a, b))
        self.add_clause((output, a, -b))

    def encode_iff(self, a: int, b: int) -> None:
        """Constrain ``a <-> b``."""
        self.add_clause((-a, b))
        self.add_clause((a, -b))

    def encode_ite(self, output: int, cond: int, then: int, otherwise: int) -> None:
        """Constrain ``output <-> (cond ? then : otherwise)``."""
        self.add_clause((-cond, -then, output))
        self.add_clause((-cond, then, -output))
        self.add_clause((cond, -otherwise, output))
        self.add_clause((cond, otherwise, -output))

    def encode_full_adder(self, a: int, b: int, cin: int) -> Tuple[int, int]:
        """Encode a full adder; returns ``(sum, carry_out)`` literals."""
        axb = self.new_var()
        self.encode_xor(axb, a, b)
        total = self.new_var()
        self.encode_xor(total, axb, cin)
        and_ab = self.new_var()
        self.encode_and(and_ab, (a, b))
        and_axb_cin = self.new_var()
        self.encode_and(and_axb_cin, (axb, cin))
        carry = self.new_var()
        self.encode_or(carry, (and_ab, and_axb_cin))
        return total, carry

    # ------------------------------------------------------------------
    # DIMACS interchange
    # ------------------------------------------------------------------
    def to_dimacs(self) -> str:
        """Serialise the formula in standard DIMACS CNF format.

        Registered variable names are preserved in ``c var <index> <name>``
        comment lines so :func:`parse_dimacs` round-trips them; an empty
        clause (recorded contradiction) serialises as a bare ``0`` line.
        External SAT backends consume exactly this text.
        """
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for name in sorted(self._names):
            lines.append(f"c var {self._names[name]} {name}")
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + (" 0" if clause else "0"))
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return f"CNF(vars={self.num_vars}, clauses={len(self.clauses)})"


def parse_dimacs(text: str) -> "CNF":
    """Parse DIMACS CNF text (as produced by :meth:`CNF.to_dimacs`).

    Restores the variable count, the clause list in order, and any variable
    names recorded in ``c var`` comment lines.  Raises :class:`ValueError`
    on malformed input (missing header, literals past the declared variable
    count, or an unterminated clause).
    """
    cnf = CNF()
    declared_vars: Optional[int] = None
    declared_clauses: Optional[int] = None
    pending: List[int] = []
    names: Dict[str, int] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("c"):
            parts = line.split(maxsplit=3)
            if len(parts) == 4 and parts[1] == "var":
                try:
                    names[parts[3]] = int(parts[2])
                except ValueError:
                    pass
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed DIMACS problem line: {line!r}")
            declared_vars = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        if declared_vars is None:
            raise ValueError("DIMACS clause before the problem line")
        for token in line.split():
            lit = int(token)
            if lit == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                if abs(lit) > declared_vars:
                    raise ValueError(
                        f"literal {lit} exceeds declared variable count {declared_vars}"
                    )
                pending.append(lit)
    if pending:
        raise ValueError("unterminated DIMACS clause (missing trailing 0)")
    if declared_vars is None:
        raise ValueError("missing DIMACS problem line")
    if declared_clauses is not None and len(cnf.clauses) != declared_clauses:
        raise ValueError(
            f"DIMACS header declared {declared_clauses} clauses, "
            f"parsed {len(cnf.clauses)}"
        )
    cnf.num_vars = declared_vars
    for name, var in names.items():
        if 0 < var <= declared_vars:
            cnf._names[name] = var
    return cnf
