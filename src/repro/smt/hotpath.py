"""Toggling between the flattened and the legacy solving hot path.

The PR that introduced this module rewrote three hot layers at once: the
CDCL core (object graph -> flat arrays, :mod:`repro.smt.sat` vs
:mod:`repro.smt.sat_reference`), term evaluation (recursive interpreter ->
compiled straight-line functions, :mod:`repro.smt.evalcompile`), and the
Tseitin encoder (per-gate fresh variables -> structural hashing).

:func:`legacy_hot_path` swaps all three back for the duration of a
``with`` block, which is how the benchmarks measure a live "before" arm
against the current code instead of trusting historical numbers, and how
differential tests pin the two paths to identical verdicts.

The swap is process-global (module attributes), so never enter it while a
solve is running concurrently.  Note one deliberate asymmetry: the
``Term.variables()`` memo stays on in both arms — it is a pure cache on an
immutable term, cannot change results, and leaving it on makes the legacy
arm *faster*, so measured speedups are understated, never inflated.
"""

from __future__ import annotations

from contextlib import contextmanager


@contextmanager
def legacy_hot_path():
    """Run the enclosed block on the pre-flattening solving hot path."""
    from repro.smt import bitblast as bitblast_mod
    from repro.smt import evalmodel as evalmodel_mod
    from repro.smt import solver as solver_mod
    from repro.smt.sat_reference import ReferenceCDCLSolver

    saved = (
        solver_mod.CDCLSolver,
        bitblast_mod.CDCLSolver,
        evalmodel_mod.USE_COMPILED,
        bitblast_mod.STRUCTURAL_HASHING,
    )
    solver_mod.CDCLSolver = ReferenceCDCLSolver
    bitblast_mod.CDCLSolver = ReferenceCDCLSolver
    evalmodel_mod.USE_COMPILED = False
    bitblast_mod.STRUCTURAL_HASHING = False
    try:
        yield
    finally:
        (
            solver_mod.CDCLSolver,
            bitblast_mod.CDCLSolver,
            evalmodel_mod.USE_COMPILED,
            bitblast_mod.STRUCTURAL_HASHING,
        ) = saved
