"""Rewriting simplifier for bitvector / boolean terms.

The concolic interpreter records symbolic expressions for every computation
that touches relevant input bytes; the paper notes that simplifying these
expressions at record time is essential to keep them manageable (its example
coalesces chained ``Add32`` operations).  This module provides the same
service for the whole system: constant folding, identity/absorption rules,
coalescing of constant-add/shift chains, and boolean clean-up.

The simplifier is a bottom-up rewriter with memoisation over the DAG.  It is
deliberately *not* a decision procedure: anything it cannot reduce it leaves
alone for the interval analysis or the bit-blasting backend.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.smt import builder as b
from repro.smt.terms import Term, TermKind, mask, to_signed, truncate

#: Optional process-wide memo table installed by :mod:`repro.smt.cache`.
#: Simplification is a pure function of the (immutable, interned) term, so a
#: persistent memo is safe.  Keys are terms themselves (identity hash), never
#: raw ``id()`` values, so a cleared-and-rebuilt intern table can only cause
#: misses, not wrong answers — note the flip side: while installed, the memo
#: pins every memoized term in memory.
_persistent_memo: Optional[Dict[Term, Term]] = None


def install_memo(memo: Dict[Term, Term]) -> None:
    """Install a persistent cross-call memo table (see :mod:`repro.smt.cache`)."""
    global _persistent_memo
    _persistent_memo = memo


def uninstall_memo() -> None:
    """Remove the persistent memo; each call reverts to a private table."""
    global _persistent_memo
    _persistent_memo = None


def simplify(term: Term) -> Term:
    """Return a simplified term equivalent to ``term``."""
    memo = _persistent_memo
    cache: Dict[Term, Term] = {} if memo is None else memo
    return _simplify(term, cache)


def _simplify(term: Term, cache: Dict[Term, Term]) -> Term:
    cached = cache.get(term)
    if cached is not None:
        return cached
    if term.is_const or term.is_var:
        cache[term] = term
        return term
    args = tuple(_simplify(a, cache) for a in term.args)
    result = _rewrite(term, args)
    cache[term] = result
    return result


def _rebuild(term: Term, args: tuple) -> Term:
    """Rebuild ``term`` with new arguments, preserving kind/width/params."""
    return Term.make(
        term.kind,
        args,
        width=term.width,
        value=term.value,
        name=term.name,
        params=term.params,
    )


def _const(value: int, width: int) -> Term:
    return b.bv_const(value, width)


def _is_zero(term: Term) -> bool:
    return term.kind is TermKind.BV_CONST and term.value == 0


def _is_ones(term: Term) -> bool:
    return term.kind is TermKind.BV_CONST and term.value == mask(term.width)


def _is_one(term: Term) -> bool:
    return term.kind is TermKind.BV_CONST and term.value == 1


def _rewrite(term: Term, args: tuple) -> Term:
    kind = term.kind
    width = term.width

    # Full constant folding via the evaluator-equivalent local rules.
    if all(a.is_const for a in args) and args:
        folded = _fold_constant(kind, args, width, term.params)
        if folded is not None:
            return folded

    if kind is TermKind.ADD:
        return _rewrite_add(args, width)
    if kind is TermKind.SUB:
        left, right = args
        if _is_zero(right):
            return left
        if left is right:
            return _const(0, width)
        return _rebuild(term, args)
    if kind is TermKind.MUL:
        return _rewrite_mul(args, width)
    if kind is TermKind.UDIV:
        left, right = args
        if _is_one(right):
            return left
        return _rebuild(term, args)
    if kind is TermKind.UREM:
        left, right = args
        if _is_one(right):
            return _const(0, width)
        return _rebuild(term, args)
    if kind is TermKind.NEG:
        (operand,) = args
        if operand.kind is TermKind.NEG:
            return operand.args[0]
        return _rebuild(term, args)

    if kind is TermKind.AND:
        left, right = args
        if _is_zero(left) or _is_zero(right):
            return _const(0, width)
        if _is_ones(left):
            return right
        if _is_ones(right):
            return left
        if left is right:
            return left
        return _rebuild(term, args)
    if kind is TermKind.OR:
        left, right = args
        if _is_zero(left):
            return right
        if _is_zero(right):
            return left
        if _is_ones(left) or _is_ones(right):
            return _const(mask(width), width)
        if left is right:
            return left
        reassembled = _try_reassemble_bytes(Term.make(TermKind.OR, (left, right), width=width))
        if reassembled is not None:
            return reassembled
        return _rebuild(term, args)
    if kind is TermKind.XOR:
        left, right = args
        if _is_zero(left):
            return right
        if _is_zero(right):
            return left
        if left is right:
            return _const(0, width)
        return _rebuild(term, args)
    if kind is TermKind.NOT:
        (operand,) = args
        if operand.kind is TermKind.NOT:
            return operand.args[0]
        return _rebuild(term, args)

    if kind in (TermKind.SHL, TermKind.LSHR, TermKind.ASHR):
        left, right = args
        if _is_zero(right):
            return left
        if _is_zero(left) and kind is not TermKind.ASHR:
            return _const(0, width)
        if right.kind is TermKind.BV_CONST and right.value >= width:
            if kind is TermKind.SHL or kind is TermKind.LSHR:
                return _const(0, width)
        return _rebuild(term, args)

    if kind is TermKind.ZEXT:
        (operand,) = args
        if operand.kind is TermKind.ZEXT:
            return b.zext(operand.args[0], width)
        return _rebuild(term, args)
    if kind is TermKind.SEXT:
        return _rebuild(term, args)
    if kind is TermKind.EXTRACT:
        (operand,) = args
        high, low = term.params
        if low == 0 and high == operand.width - 1:
            return operand
        if operand.kind is TermKind.ZEXT and high < operand.args[0].width:
            return b.extract(operand.args[0], high, low)
        return _rebuild(term, args)
    if kind is TermKind.CONCAT:
        return _rebuild(term, args)
    if kind is TermKind.ITE:
        cond, then, otherwise = args
        if cond.kind is TermKind.BOOL_CONST:
            return then if cond.value else otherwise
        if then is otherwise:
            return then
        return _rebuild(term, args)

    if kind in (
        TermKind.EQ,
        TermKind.NE,
        TermKind.ULT,
        TermKind.ULE,
        TermKind.UGT,
        TermKind.UGE,
        TermKind.SLT,
        TermKind.SLE,
        TermKind.SGT,
        TermKind.SGE,
    ):
        return _rewrite_comparison(term, args)

    if kind is TermKind.BAND:
        left, right = args
        if left.kind is TermKind.BOOL_CONST:
            return right if left.value else b.FALSE
        if right.kind is TermKind.BOOL_CONST:
            return left if right.value else b.FALSE
        if left is right:
            return left
        return _rebuild(term, args)
    if kind is TermKind.BOR:
        left, right = args
        if left.kind is TermKind.BOOL_CONST:
            return b.TRUE if left.value else right
        if right.kind is TermKind.BOOL_CONST:
            return b.TRUE if right.value else left
        if left is right:
            return left
        return _rebuild(term, args)
    if kind is TermKind.BNOT:
        (operand,) = args
        if operand.kind is TermKind.BNOT:
            return operand.args[0]
        if operand.kind is TermKind.BOOL_CONST:
            return b.bool_const(not operand.value)
        negated = _negate_comparison(operand)
        if negated is not None:
            return negated
        return _rebuild(term, args)
    if kind is TermKind.BXOR:
        left, right = args
        if left.kind is TermKind.BOOL_CONST:
            return b.bnot(right) if left.value else right
        if right.kind is TermKind.BOOL_CONST:
            return b.bnot(left) if right.value else left
        if left is right:
            return b.FALSE
        return _rebuild(term, args)
    if kind is TermKind.IMPLIES:
        left, right = args
        if left.kind is TermKind.BOOL_CONST:
            return right if left.value else b.TRUE
        if right.kind is TermKind.BOOL_CONST and right.value:
            return b.TRUE
        return _rebuild(term, args)
    if kind is TermKind.BITE:
        cond, then, otherwise = args
        if cond.kind is TermKind.BOOL_CONST:
            return then if cond.value else otherwise
        if then is otherwise:
            return then
        return _rebuild(term, args)

    return _rebuild(term, args)


_COMPARISON_NEGATION = {
    TermKind.EQ: TermKind.NE,
    TermKind.NE: TermKind.EQ,
    TermKind.ULT: TermKind.UGE,
    TermKind.ULE: TermKind.UGT,
    TermKind.UGT: TermKind.ULE,
    TermKind.UGE: TermKind.ULT,
    TermKind.SLT: TermKind.SGE,
    TermKind.SLE: TermKind.SGT,
    TermKind.SGT: TermKind.SLE,
    TermKind.SGE: TermKind.SLT,
}


def _negate_comparison(term: Term) -> Term | None:
    """Push a boolean negation into a comparison (``!(a < b)`` → ``a >= b``)."""
    negated_kind = _COMPARISON_NEGATION.get(term.kind)
    if negated_kind is None:
        return None
    return Term.make(negated_kind, term.args)


def _fold_constant(kind: TermKind, args: tuple, width, params) -> Term | None:
    """Fold an all-constant application; returns ``None`` if not handled."""
    values = [a.value for a in args]
    opw = args[0].width

    if kind is TermKind.ADD:
        return _const(values[0] + values[1], width)
    if kind is TermKind.SUB:
        return _const(values[0] - values[1], width)
    if kind is TermKind.MUL:
        return _const(values[0] * values[1], width)
    if kind is TermKind.UDIV:
        return _const(mask(width) if values[1] == 0 else values[0] // values[1], width)
    if kind is TermKind.UREM:
        return _const(values[0] if values[1] == 0 else values[0] % values[1], width)
    if kind is TermKind.NEG:
        return _const(-values[0], width)
    if kind is TermKind.AND:
        return _const(values[0] & values[1], width)
    if kind is TermKind.OR:
        return _const(values[0] | values[1], width)
    if kind is TermKind.XOR:
        return _const(values[0] ^ values[1], width)
    if kind is TermKind.NOT:
        return _const(~values[0], width)
    if kind is TermKind.SHL:
        return _const(0 if values[1] >= width else values[0] << values[1], width)
    if kind is TermKind.LSHR:
        return _const(0 if values[1] >= width else values[0] >> values[1], width)
    if kind is TermKind.ASHR:
        shift = min(values[1], width - 1)
        return _const(to_signed(values[0], opw) >> shift, width)
    if kind is TermKind.ZEXT:
        return _const(values[0], width)
    if kind is TermKind.SEXT:
        return _const(to_signed(values[0], opw), width)
    if kind is TermKind.EXTRACT:
        high, low = params
        return _const(values[0] >> low, high - low + 1)
    if kind is TermKind.CONCAT:
        return _const((values[0] << args[1].width) | values[1], width)
    if kind is TermKind.ITE:
        return args[1] if values[0] else args[2]

    if kind is TermKind.EQ:
        return b.bool_const(values[0] == values[1])
    if kind is TermKind.NE:
        return b.bool_const(values[0] != values[1])
    if kind is TermKind.ULT:
        return b.bool_const(values[0] < values[1])
    if kind is TermKind.ULE:
        return b.bool_const(values[0] <= values[1])
    if kind is TermKind.UGT:
        return b.bool_const(values[0] > values[1])
    if kind is TermKind.UGE:
        return b.bool_const(values[0] >= values[1])
    if kind is TermKind.SLT:
        return b.bool_const(to_signed(values[0], opw) < to_signed(values[1], opw))
    if kind is TermKind.SLE:
        return b.bool_const(to_signed(values[0], opw) <= to_signed(values[1], opw))
    if kind is TermKind.SGT:
        return b.bool_const(to_signed(values[0], opw) > to_signed(values[1], opw))
    if kind is TermKind.SGE:
        return b.bool_const(to_signed(values[0], opw) >= to_signed(values[1], opw))

    if kind is TermKind.BAND:
        return b.bool_const(bool(values[0] and values[1]))
    if kind is TermKind.BOR:
        return b.bool_const(bool(values[0] or values[1]))
    if kind is TermKind.BNOT:
        return b.bool_const(not values[0])
    if kind is TermKind.BXOR:
        return b.bool_const(bool(values[0] ^ values[1]))
    if kind is TermKind.IMPLIES:
        return b.bool_const(bool((not values[0]) or values[1]))
    if kind is TermKind.BITE:
        return args[1] if values[0] else args[2]

    return None


def _rewrite_add(args: tuple, width: int) -> Term:
    """Coalesce constant addends: ``(x + c1) + c2`` → ``x + (c1 + c2)``."""
    left, right = args
    if _is_zero(left):
        return right
    if _is_zero(right):
        return left
    # Collect the constant offsets of a left-leaning add chain.
    terms, constant = _flatten_add(left)
    more_terms, more_constant = _flatten_add(right)
    terms = terms + more_terms
    constant = truncate(constant + more_constant, width)
    if not terms:
        return _const(constant, width)
    result = terms[0]
    for term in terms[1:]:
        result = Term.make(TermKind.ADD, _ordered(result, term), width=width)
    if constant:
        result = Term.make(
            TermKind.ADD, _ordered(result, _const(constant, width)), width=width
        )
    return result


def _flatten_add(term: Term) -> tuple:
    """Split an add tree into (non-constant terms, constant sum)."""
    if term.kind is TermKind.BV_CONST:
        return [], term.value
    if term.kind is TermKind.ADD:
        left_terms, left_const = _flatten_add(term.args[0])
        right_terms, right_const = _flatten_add(term.args[1])
        return left_terms + right_terms, left_const + right_const
    return [term], 0


def _rewrite_mul(args: tuple, width: int) -> Term:
    left, right = args
    if _is_zero(left) or _is_zero(right):
        return _const(0, width)
    if _is_one(left):
        return right
    if _is_one(right):
        return left
    # Multiplication by a power of two becomes a shift only during
    # bit-blasting; keeping the MUL here preserves readability of extracted
    # target expressions.
    return Term.make(TermKind.MUL, _ordered(left, right), width=width)


def _rewrite_comparison(term: Term, args: tuple) -> Term:
    left, right = args
    kind = term.kind
    # Boolean-valued arithmetic: the concolic interpreter encodes comparisons
    # and logical operators as ``ite(c, 1, 0)`` bitvectors; branch conditions
    # then test them against zero.  Recover the underlying boolean so that
    # interval contraction and enforcement see clean constraints.
    unwrapped = _unwrap_boolean_test(kind, left, right)
    if unwrapped is not None:
        return unwrapped
    if left is right:
        if kind in (TermKind.EQ, TermKind.ULE, TermKind.UGE, TermKind.SLE, TermKind.SGE):
            return b.TRUE
        if kind in (TermKind.NE, TermKind.ULT, TermKind.UGT, TermKind.SLT, TermKind.SGT):
            return b.FALSE
    # Trivially true/false unsigned bounds against extremes.
    if right.kind is TermKind.BV_CONST:
        if kind is TermKind.ULT and right.value == 0:
            return b.FALSE
        if kind is TermKind.UGE and right.value == 0:
            return b.TRUE
        if kind is TermKind.ULE and right.value == mask(right.width):
            return b.TRUE
        if kind is TermKind.UGT and right.value == mask(right.width):
            return b.FALSE
    if left.kind is TermKind.BV_CONST:
        if kind is TermKind.UGT and left.value == 0:
            return b.FALSE
        if kind is TermKind.ULE and left.value == 0:
            return b.TRUE
        if kind is TermKind.UGE and left.value == mask(left.width):
            return b.TRUE
        if kind is TermKind.ULT and left.value == mask(left.width):
            return b.FALSE
    return Term.make(kind, (left, right))


def _ordered(left: Term, right: Term) -> tuple:
    if left._id > right._id:
        return (right, left)
    return (left, right)


def _unwrap_boolean_test(kind: TermKind, left: Term, right: Term) -> Term | None:
    """Simplify ``ite(c, 1, 0) != 0`` (and friends) to ``c``."""
    ite_term, const_term = None, None
    if _is_flag_ite(left) and right.kind is TermKind.BV_CONST:
        ite_term, const_term = left, right
    elif _is_flag_ite(right) and left.kind is TermKind.BV_CONST:
        ite_term, const_term = right, left
        kind = _SWAPPED_COMPARISON.get(kind, kind)
    if ite_term is None or const_term is None:
        return None
    condition = ite_term.args[0]
    then_value = ite_term.args[1].value
    else_value = ite_term.args[2].value
    constant = const_term.value
    if kind is TermKind.NE and constant == else_value:
        return condition
    if kind is TermKind.NE and constant == then_value:
        return Term.make(TermKind.BNOT, (condition,))
    if kind is TermKind.EQ and constant == then_value:
        return condition
    if kind is TermKind.EQ and constant == else_value:
        return Term.make(TermKind.BNOT, (condition,))
    if kind is TermKind.UGT and constant < then_value and constant >= else_value:
        return condition
    return None


def _is_flag_ite(term: Term) -> bool:
    return (
        term.kind is TermKind.ITE
        and term.args[1].kind is TermKind.BV_CONST
        and term.args[2].kind is TermKind.BV_CONST
        and term.args[1].value != term.args[2].value
    )


_SWAPPED_COMPARISON = {
    TermKind.ULT: TermKind.UGT,
    TermKind.ULE: TermKind.UGE,
    TermKind.UGT: TermKind.ULT,
    TermKind.UGE: TermKind.ULE,
    TermKind.SLT: TermKind.SGT,
    TermKind.SLE: TermKind.SGE,
    TermKind.SGT: TermKind.SLT,
    TermKind.SGE: TermKind.SLE,
    TermKind.EQ: TermKind.EQ,
    TermKind.NE: TermKind.NE,
}


# ----------------------------------------------------------------------
# Byte-reassembly recognition
# ----------------------------------------------------------------------
def _try_reassemble_bytes(term: Term) -> Term | None:
    """Collapse an endianness-reassembly OR chain back into its field variable.

    Application code reads multi-byte input fields one byte at a time and
    recombines them with shifts and ORs (the paper's example target
    expression is full of exactly these ``Shl``/``BvAnd`` chains).  When the
    concolic interpreter maps input bytes to slices of a single field
    variable ``V``, that recombination has the shape::

        OR of   shl(zext(extract(V, hi_i, lo_i), w), lo_i)

    with the pieces covering a contiguous bit range starting at 0.  This
    rewrite recognises the pattern and replaces the whole chain with
    ``zext(V, w)`` (or ``zext(extract(V, max_hi, 0), w)`` for a partial
    read), which is what lets interval propagation and sampling reason about
    the field as a single variable — the same role Hachoir's byte-range →
    field conversion plays in the paper.
    """
    width = term.width
    pieces = _flatten_or(term)
    if len(pieces) < 2:
        return None
    decoded = []
    for piece in pieces:
        info = _decode_reassembly_piece(piece)
        if info is None:
            return None
        decoded.append(info)
    base = decoded[0][0]
    if any(info[0] is not base for info in decoded):
        return None
    covered = []
    for _base, lo, hi in decoded:
        covered.append((lo, hi))
    covered.sort()
    expected_lo = 0
    for lo, hi in covered:
        if lo != expected_lo:
            return None
        expected_lo = hi + 1
    max_hi = covered[-1][1]
    if max_hi >= width:
        return None
    if max_hi == base.width - 1:
        rebuilt = base
    else:
        rebuilt = Term.make(
            TermKind.EXTRACT, (base,), width=max_hi + 1, params=(max_hi, 0)
        )
    if rebuilt.width == width:
        return rebuilt
    return Term.make(TermKind.ZEXT, (rebuilt,), width=width, params=(width,))


def _flatten_or(term: Term) -> list:
    if term.kind is TermKind.OR:
        return _flatten_or(term.args[0]) + _flatten_or(term.args[1])
    return [term]


def _decode_reassembly_piece(piece: Term):
    """Decode one OR operand as (base variable, lo bit, hi bit) or ``None``."""
    shift = 0
    inner = piece
    if inner.kind is TermKind.SHL and inner.args[1].kind is TermKind.BV_CONST:
        shift = inner.args[1].value
        inner = inner.args[0]
    if inner.kind is TermKind.ZEXT:
        inner = inner.args[0]
    if inner.kind is TermKind.EXTRACT:
        high, low = inner.params
        base = inner.args[0]
        if base.kind is not TermKind.BV_VAR:
            return None
        if shift != low:
            return None
        return (base, low, high)
    if inner.kind is TermKind.BV_VAR:
        if shift != 0:
            return None
        return (inner, 0, inner.width - 1)
    return None
