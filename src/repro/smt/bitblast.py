"""Tseitin bit-blasting of bitvector terms into CNF.

Each bitvector term maps to a list of CNF literals (least-significant bit
first); each boolean term maps to a single literal.  Constants map to two
reserved literals for true/false.  The encoding is the textbook one:
ripple-carry adders, shift-and-add multipliers, mux-chains for variable
shifts, and lexicographic comparators.

This is the complete backend of the portfolio solver; the cheaper layers
(simplification, interval propagation, guided sampling) exist so that it is
only rarely needed — exactly the role Z3 plays in the paper, where DIODE
keeps constraints small via staged, relevant-bytes-only symbolic recording.

The blaster **structurally hashes** its gates: AND/XOR/MUX outputs are
memoized on canonically-ordered operand literal pairs (with constant
folding and negation-aware normalisation — OR is encoded as a negated AND
via De Morgan so both kinds share one cache, XOR strips operand signs and
re-applies them to the output, MUX folds a negated condition into a branch
swap).  Shared subterms across a component's conjuncts therefore encode
once: fewer variables and clauses reach the SAT core, while
:meth:`BitBlaster.extract_model` reads back the same models.  The
``STRUCTURAL_HASHING`` module flag exists only so the legacy benchmark arm
(:func:`repro.smt.hotpath.legacy_hot_path`) can measure the pre-hashing
encoder; it is on everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.smt.cnf import CNF
from repro.smt.sat import CDCLSolver, SatResult, SatStatus
from repro.smt.evalmodel import Model
from repro.smt.terms import Term, TermKind, to_signed


#: Gate-level structural hashing switch (see module docstring).  Mutated
#: only by the legacy benchmark arm; never change it mid-blaster.
STRUCTURAL_HASHING = True


class BitBlastError(ValueError):
    """Raised when a term cannot be bit-blasted."""


def _decode_bits(bits, assignment) -> int:
    """Integer value of a literal vector (LSB first) under ``assignment``."""
    value = 0
    for position, literal in enumerate(bits):
        bit = assignment.get(abs(literal), False)
        if literal < 0:
            bit = not bit
        if bit:
            value |= 1 << position
    return value


@dataclass(frozen=True)
class CnfSkeleton:
    """The reusable output of bit-blasting one canonical conjunct list.

    Tseitin translation is a pure function of the (ordered, interned)
    conjunct terms, so its result — the clause list, the variable count,
    and the per-variable literal vectors needed to read a model back out —
    can be persisted and replayed: a warm run rebuilds the :class:`CNF`
    and goes straight to CDCL, skipping the translation entirely.  That
    is worth persisting even for queries whose *verdict* cannot be (an
    UNKNOWN is a budget artifact, never stored): the warm run still has
    to re-solve them, but no longer has to re-blast them.

    Everything here is primitives, so the skeleton round-trips through
    JSON (see :mod:`repro.smt.cachestore`) and across process boundaries.
    """

    num_vars: int
    clauses: Tuple[Tuple[int, ...], ...]
    #: ``(variable name, literal vector LSB first)`` per bitvector
    #: variable, sorted by name for a deterministic wire form.
    var_bits: Tuple[Tuple[str, Tuple[int, ...]], ...]

    def build_cnf(self) -> CNF:
        """Reconstruct a :class:`CNF` equal to the one the blaster built."""
        cnf = CNF()
        cnf.num_vars = self.num_vars
        for clause in self.clauses:
            cnf.add_clause(clause)
        return cnf

    def extract_model(self, result: SatResult) -> Model:
        """Convert a SAT assignment into a bitvector model."""
        if not result.is_sat or result.assignment is None:
            raise BitBlastError("no satisfying assignment to extract a model from")
        model = Model()
        for name, bits in self.var_bits:
            model[name] = _decode_bits(bits, result.assignment)
        return model


class BitBlaster:
    """Translate terms into a growing :class:`CNF` formula."""

    def __init__(self) -> None:
        self.cnf = CNF()
        self._true = self.cnf.new_var("__true__")
        self.cnf.add_unit(self._true)
        self._false = -self._true
        self._bv_cache: Dict[int, List[int]] = {}
        self._bool_cache: Dict[int, int] = {}
        self._var_bits: Dict[str, List[int]] = {}
        # Structural-hashing gate caches: canonical operand key -> output
        # literal.  Sound for the lifetime of the blaster because the CNF
        # only ever grows (Tseitin definitions are never retracted).
        self._and_cache: Dict[Tuple[int, int], int] = {}
        self._xor_cache: Dict[Tuple[int, int], int] = {}
        self._mux_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def assert_constraint(self, constraint: Term) -> None:
        """Assert a boolean term as true."""
        self.cnf.add_unit(self.literal_for(constraint))

    def assert_all(self, conjuncts) -> None:
        """Batch-assert a component's conjunct list in one pass.

        All conjuncts are translated before any unit is asserted, so shared
        subterms across the component encode once through the structural
        gate caches and the resulting CNF is identical regardless of how
        callers chunk the conjunct list.
        """
        for literal in self.literals_for(conjuncts):
            self.cnf.add_unit(literal)

    def literals_for(self, conjuncts) -> List[int]:
        """Translate a conjunct list (without asserting) in one pass."""
        return [self.literal_for(conjunct) for conjunct in conjuncts]

    def literal_for(self, constraint: Term) -> int:
        """Translate a boolean term *without* asserting it.

        The returned literal is equivalent to the constraint under the
        accumulated Tseitin definitions; a solver session asserts it per
        call through CDCL assumptions instead of a permanent unit clause,
        which is what makes push/pop over a persistent blaster possible.
        Terms are hash-consed and the per-term literal is cached, so only
        delta conjuncts cost any new CNF.
        """
        if not constraint.is_bool:
            raise BitBlastError("can only assert boolean terms")
        return self.blast_bool(constraint)

    def assumptions_for(
        self, conjuncts
    ) -> Tuple[List[int], Dict[int, List[Term]]]:
        """Translate ``conjuncts`` into assumption literals plus their map.

        Returns ``(literals, by_literal)``: one literal per conjunct (in
        order, for :meth:`CDCLSolver.solve` assumptions) and the inverse map
        from each literal to every conjunct that blasted to it — terms are
        hash-consed, so distinct conjuncts can share a literal.  The map is
        what lets a SAT-level UNSAT core (a subset of the assumption
        literals) be lifted back to the subset of *terms* that caused the
        failure.
        """
        literals: List[int] = []
        by_literal: Dict[int, List[Term]] = {}
        for conjunct in conjuncts:
            literal = self.literal_for(conjunct)
            literals.append(literal)
            by_literal.setdefault(literal, []).append(conjunct)
        return literals, by_literal

    def variable_bits(self) -> Dict[str, List[int]]:
        """CNF literals allocated for each bitvector variable (LSB first)."""
        return dict(self._var_bits)

    def skeleton(self) -> CnfSkeleton:
        """Snapshot the accumulated CNF as a persistable :class:`CnfSkeleton`."""
        return CnfSkeleton(
            num_vars=self.cnf.num_vars,
            clauses=tuple(self.cnf.clauses),
            var_bits=tuple(
                sorted(
                    (name, tuple(bits)) for name, bits in self._var_bits.items()
                )
            ),
        )

    def extract_model(self, result: SatResult) -> Model:
        """Convert a SAT assignment into a bitvector model."""
        if not result.is_sat or result.assignment is None:
            raise BitBlastError("no satisfying assignment to extract a model from")
        model = Model()
        for name, bits in self._var_bits.items():
            model[name] = _decode_bits(bits, result.assignment)
        return model

    # ------------------------------------------------------------------
    # Bitvector blasting
    # ------------------------------------------------------------------
    def blast_bv(self, term: Term) -> List[int]:
        """Return the literal vector (LSB first) for a bitvector term."""
        if not term.is_bv:
            raise BitBlastError(f"expected a bitvector term, got {term.sort()}")
        cached = self._bv_cache.get(id(term))
        if cached is not None:
            return cached
        bits = self._blast_bv(term)
        if len(bits) != term.width:
            raise BitBlastError(
                f"internal width mismatch for {term.kind}: {len(bits)} != {term.width}"
            )
        self._bv_cache[id(term)] = bits
        return bits

    def _const_bits(self, value: int, width: int) -> List[int]:
        return [self._true if (value >> i) & 1 else self._false for i in range(width)]

    def _fresh_bits(self, width: int, name: str = "") -> List[int]:
        return [self.cnf.new_var(f"{name}[{i}]" if name else None) for i in range(width)]

    def _blast_bv(self, term: Term) -> List[int]:
        kind = term.kind
        width = term.width

        if kind is TermKind.BV_CONST:
            return self._const_bits(term.value, width)
        if kind is TermKind.BV_VAR:
            name = str(term.name)
            bits = self._var_bits.get(name)
            if bits is None:
                bits = self._fresh_bits(width, name)
                self._var_bits[name] = bits
            return bits

        args = [self.blast_bv(a) for a in term.args if a.is_bv]

        if kind is TermKind.ADD:
            total, _carry = self._adder(args[0], args[1])
            return total
        if kind is TermKind.SUB:
            negated = [self._not_gate(b) for b in args[1]]
            total, _carry = self._adder(args[0], negated, carry_in=self._true)
            return total
        if kind is TermKind.NEG:
            negated = [self._not_gate(b) for b in args[0]]
            zero = self._const_bits(0, width)
            total, _carry = self._adder(zero, negated, carry_in=self._true)
            return total
        if kind is TermKind.MUL:
            return self._multiplier(args[0], args[1])
        if kind is TermKind.UDIV:
            quotient, _remainder = self._divider(args[0], args[1])
            return quotient
        if kind is TermKind.UREM:
            _quotient, remainder = self._divider(args[0], args[1])
            return remainder
        if kind is TermKind.AND:
            return [self._and_gate(a, b) for a, b in zip(args[0], args[1])]
        if kind is TermKind.OR:
            return [self._or_gate(a, b) for a, b in zip(args[0], args[1])]
        if kind is TermKind.XOR:
            return [self._xor_gate(a, b) for a, b in zip(args[0], args[1])]
        if kind is TermKind.NOT:
            return [self._not_gate(a) for a in args[0]]
        if kind is TermKind.SHL:
            return self._shift(args[0], term.args[1], args[1], direction="left")
        if kind is TermKind.LSHR:
            return self._shift(args[0], term.args[1], args[1], direction="right")
        if kind is TermKind.ASHR:
            return self._shift(args[0], term.args[1], args[1], direction="arith")
        if kind is TermKind.ZEXT:
            inner = args[0]
            return inner + [self._false] * (width - len(inner))
        if kind is TermKind.SEXT:
            inner = args[0]
            sign = inner[-1]
            return inner + [sign] * (width - len(inner))
        if kind is TermKind.EXTRACT:
            high, low = term.params
            return args[0][low : high + 1]
        if kind is TermKind.CONCAT:
            high_bits, low_bits = args[0], args[1]
            return low_bits + high_bits
        if kind is TermKind.ITE:
            cond = self.blast_bool(term.args[0])
            then_bits = self.blast_bv(term.args[1])
            else_bits = self.blast_bv(term.args[2])
            return [self._mux(cond, t, e) for t, e in zip(then_bits, else_bits)]
        raise BitBlastError(f"cannot bit-blast bitvector kind {kind}")

    # ------------------------------------------------------------------
    # Boolean blasting
    # ------------------------------------------------------------------
    def blast_bool(self, term: Term) -> int:
        """Return the literal for a boolean term."""
        if not term.is_bool:
            raise BitBlastError(f"expected a boolean term, got {term.sort()}")
        cached = self._bool_cache.get(id(term))
        if cached is not None:
            return cached
        literal = self._blast_bool(term)
        self._bool_cache[id(term)] = literal
        return literal

    def _blast_bool(self, term: Term) -> int:
        kind = term.kind
        if kind is TermKind.BOOL_CONST:
            return self._true if term.value else self._false
        if kind is TermKind.BOOL_VAR:
            return self.cnf.var_for(f"bool:{term.name}")
        if kind is TermKind.BNOT:
            return -self.blast_bool(term.args[0])
        if kind is TermKind.BAND:
            return self._and_gate(
                self.blast_bool(term.args[0]), self.blast_bool(term.args[1])
            )
        if kind is TermKind.BOR:
            return self._or_gate(
                self.blast_bool(term.args[0]), self.blast_bool(term.args[1])
            )
        if kind is TermKind.BXOR:
            return self._xor_gate(
                self.blast_bool(term.args[0]), self.blast_bool(term.args[1])
            )
        if kind is TermKind.IMPLIES:
            return self._or_gate(
                -self.blast_bool(term.args[0]), self.blast_bool(term.args[1])
            )
        if kind is TermKind.BITE:
            return self._mux(
                self.blast_bool(term.args[0]),
                self.blast_bool(term.args[1]),
                self.blast_bool(term.args[2]),
            )
        if kind in (TermKind.EQ, TermKind.NE):
            left = self.blast_bv(term.args[0])
            right = self.blast_bv(term.args[1])
            equal = self._equality(left, right)
            return equal if kind is TermKind.EQ else -equal
        if kind in (TermKind.ULT, TermKind.ULE, TermKind.UGT, TermKind.UGE):
            left = self.blast_bv(term.args[0])
            right = self.blast_bv(term.args[1])
            if kind is TermKind.ULT:
                return self._unsigned_less(left, right, strict=True)
            if kind is TermKind.ULE:
                return self._unsigned_less(left, right, strict=False)
            if kind is TermKind.UGT:
                return self._unsigned_less(right, left, strict=True)
            return self._unsigned_less(right, left, strict=False)
        if kind in (TermKind.SLT, TermKind.SLE, TermKind.SGT, TermKind.SGE):
            left = self.blast_bv(term.args[0])
            right = self.blast_bv(term.args[1])
            # Signed comparison: flip the sign bits and compare unsigned.
            flipped_left = left[:-1] + [self._not_gate(left[-1])]
            flipped_right = right[:-1] + [self._not_gate(right[-1])]
            if kind is TermKind.SLT:
                return self._unsigned_less(flipped_left, flipped_right, strict=True)
            if kind is TermKind.SLE:
                return self._unsigned_less(flipped_left, flipped_right, strict=False)
            if kind is TermKind.SGT:
                return self._unsigned_less(flipped_right, flipped_left, strict=True)
            return self._unsigned_less(flipped_right, flipped_left, strict=False)
        raise BitBlastError(f"cannot bit-blast boolean kind {kind}")

    # ------------------------------------------------------------------
    # Gate helpers
    # ------------------------------------------------------------------
    def _not_gate(self, literal: int) -> int:
        return -literal

    def _and_gate(self, a: int, b: int) -> int:
        if a == self._false or b == self._false:
            return self._false
        if a == self._true:
            return b
        if b == self._true:
            return a
        if a == b:
            return a
        if a == -b:
            return self._false
        if not STRUCTURAL_HASHING:
            output = self.cnf.new_var()
            self.cnf.encode_and(output, (a, b))
            return output
        if b < a:
            a, b = b, a
        key = (a, b)
        output = self._and_cache.get(key)
        if output is None:
            output = self.cnf.new_var()
            self.cnf.encode_and(output, (a, b))
            self._and_cache[key] = output
        return output

    def _or_gate(self, a: int, b: int) -> int:
        if not STRUCTURAL_HASHING:
            if a == self._true or b == self._true:
                return self._true
            if a == self._false:
                return b
            if b == self._false:
                return a
            output = self.cnf.new_var()
            self.cnf.encode_or(output, (a, b))
            return output
        # De Morgan: OR(a, b) = -AND(-a, -b).  Routing through the AND cache
        # lets AND and OR gates over the same operands share one definition
        # (and inherits every constant fold of :meth:`_and_gate`).
        return -self._and_gate(-a, -b)

    def _xor_gate(self, a: int, b: int) -> int:
        if a == self._false:
            return b
        if b == self._false:
            return a
        if a == self._true:
            return -b
        if b == self._true:
            return -a
        if a == b:
            return self._false
        if a == -b:
            return self._true
        if not STRUCTURAL_HASHING:
            output = self.cnf.new_var()
            self.cnf.encode_xor(output, a, b)
            return output
        # XOR(-a, b) = -XOR(a, b): strip operand signs into an output sign
        # so all four polarity combinations share one definition.
        negate = False
        if a < 0:
            a = -a
            negate = not negate
        if b < 0:
            b = -b
            negate = not negate
        if b < a:
            a, b = b, a
        key = (a, b)
        output = self._xor_cache.get(key)
        if output is None:
            output = self.cnf.new_var()
            self.cnf.encode_xor(output, a, b)
            self._xor_cache[key] = output
        return -output if negate else output

    def _mux(self, cond: int, then: int, otherwise: int) -> int:
        if cond == self._true:
            return then
        if cond == self._false:
            return otherwise
        if then == otherwise:
            return then
        if not STRUCTURAL_HASHING:
            output = self.cnf.new_var()
            self.cnf.encode_ite(output, cond, then, otherwise)
            return output
        if then == -otherwise:
            # mux(c, t, -t) = XNOR(c, t)
            return -self._xor_gate(cond, then)
        if then == self._true:
            return self._or_gate(cond, otherwise)
        if then == self._false:
            return self._and_gate(-cond, otherwise)
        if otherwise == self._true:
            return self._or_gate(-cond, then)
        if otherwise == self._false:
            return self._and_gate(cond, then)
        if cond < 0:
            # mux(-c, t, e) = mux(c, e, t)
            cond, then, otherwise = -cond, otherwise, then
        key = (cond, then, otherwise)
        output = self._mux_cache.get(key)
        if output is None:
            output = self.cnf.new_var()
            self.cnf.encode_ite(output, cond, then, otherwise)
            self._mux_cache[key] = output
        return output

    def _full_adder(self, a: int, b: int, carry_in: int) -> Tuple[int, int]:
        axb = self._xor_gate(a, b)
        total = self._xor_gate(axb, carry_in)
        carry = self._or_gate(self._and_gate(a, b), self._and_gate(axb, carry_in))
        return total, carry

    def _adder(
        self, left: List[int], right: List[int], carry_in: int | None = None
    ) -> Tuple[List[int], int]:
        carry = carry_in if carry_in is not None else self._false
        out: List[int] = []
        for a, b in zip(left, right):
            total, carry = self._full_adder(a, b, carry)
            out.append(total)
        return out, carry

    def _multiplier(self, left: List[int], right: List[int]) -> List[int]:
        width = len(left)
        accumulator = self._const_bits(0, width)
        for position, bit in enumerate(right):
            # Partial product: left shifted by `position`, gated by `bit`.
            partial = [self._false] * position + [
                self._and_gate(bit, left[i]) for i in range(width - position)
            ]
            accumulator, _carry = self._adder(accumulator, partial)
        return accumulator

    def _divider(self, dividend: List[int], divisor: List[int]) -> Tuple[List[int], List[int]]:
        """Restoring division; div-by-zero yields all-ones quotient, dividend remainder."""
        width = len(dividend)
        remainder = self._const_bits(0, width)
        quotient = [self._false] * width
        for position in reversed(range(width)):
            remainder = [dividend[position]] + remainder[:-1]
            fits = self._unsigned_less(divisor, remainder, strict=False)
            difference, _borrow_carry = self._adder(
                remainder, [self._not_gate(b) for b in divisor], carry_in=self._true
            )
            remainder = [self._mux(fits, d, r) for d, r in zip(difference, remainder)]
            quotient[position] = fits
        divisor_zero = self._equality(divisor, self._const_bits(0, width))
        quotient = [self._mux(divisor_zero, self._true, q) for q in quotient]
        remainder = [self._mux(divisor_zero, d, r) for d, r in zip(dividend, remainder)]
        return quotient, remainder

    def _shift(
        self, bits: List[int], amount_term: Term, amount_bits: List[int], direction: str
    ) -> List[int]:
        width = len(bits)
        if amount_term.kind is TermKind.BV_CONST:
            return self._shift_by_constant(bits, amount_term.value, direction)
        # Barrel shifter over the log2(width) low bits of the amount, with an
        # "overshift" mux if any higher amount bit can be set.
        stages = max(1, (width - 1).bit_length())
        current = list(bits)
        for stage in range(stages):
            shifted = self._shift_by_constant(current, 1 << stage, direction)
            select = amount_bits[stage] if stage < len(amount_bits) else self._false
            current = [self._mux(select, s, c) for s, c in zip(shifted, current)]
        overshift = self._false
        for position in range(stages, len(amount_bits)):
            overshift = self._or_gate(overshift, amount_bits[position])
        fill = bits[-1] if direction == "arith" else self._false
        return [self._mux(overshift, fill, c) for c in current]

    def _shift_by_constant(self, bits: List[int], amount: int, direction: str) -> List[int]:
        width = len(bits)
        if amount == 0:
            return list(bits)
        fill = bits[-1] if direction == "arith" else self._false
        if amount >= width:
            return [fill] * width
        if direction == "left":
            return [self._false] * amount + bits[: width - amount]
        return bits[amount:] + [fill] * amount

    def _equality(self, left: List[int], right: List[int]) -> int:
        result = self._true
        for a, b in zip(left, right):
            result = self._and_gate(result, -self._xor_gate(a, b))
        return result

    def _unsigned_less(self, left: List[int], right: List[int], strict: bool) -> int:
        """``left < right`` (or ``<=`` when not strict), MSB-first comparison."""
        result = self._false if strict else self._true
        for a, b in zip(left, right):  # LSB to MSB; later bits dominate.
            a_lt_b = self._and_gate(-a, b)
            a_eq_b = -self._xor_gate(a, b)
            result = self._or_gate(a_lt_b, self._and_gate(a_eq_b, result))
        return result


def solve_terms(
    constraints,
    max_conflicts: int | None = None,
) -> Tuple[str, Model | None]:
    """Bit-blast a list of boolean terms and run the CDCL solver.

    Returns ``(status, model)`` where status is one of the
    :class:`repro.smt.sat.SatStatus` strings.
    """
    blaster = BitBlaster()
    blaster.assert_all(constraints)
    result = CDCLSolver(blaster.cnf, max_conflicts=max_conflicts).solve()
    if result.status == SatStatus.SAT:
        return SatStatus.SAT, blaster.extract_model(result)
    return result.status, None
