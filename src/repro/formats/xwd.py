"""A simplified XWD-like dump format (seed inputs for the ImageMagick model).

The ImageMagick 6.5.2 overflows the paper reports live in its X-window
handling (``xwindow.c``), pixel cache (``cache.c``) and display pipeline
(``display.c``); all are driven by image geometry fields.  The layout here is
an XWD-style header of big-endian 32-bit fields (header size, pixmap
geometry, bits per pixel, bytes per line, colormap entries) followed by a
colormap and pixel payload.
"""

from __future__ import annotations

from repro.formats.fields import Endianness, FieldKind, FieldSpec
from repro.formats.spec import FormatSpec

HEADER_SIZE_OFFSET = 0
FILE_VERSION_OFFSET = 4
PIXMAP_FORMAT_OFFSET = 8
PIXMAP_DEPTH_OFFSET = 12
PIXMAP_WIDTH_OFFSET = 16
PIXMAP_HEIGHT_OFFSET = 20
XOFFSET_OFFSET = 24
BYTE_ORDER_OFFSET = 28
BITMAP_UNIT_OFFSET = 32
BITMAP_PAD_OFFSET = 36
BITS_PER_PIXEL_OFFSET = 40
BYTES_PER_LINE_OFFSET = 44
VISUAL_CLASS_OFFSET = 48
COLORMAP_ENTRIES_OFFSET = 52
NCOLORS_OFFSET = 56
WINDOW_WIDTH_OFFSET = 60
WINDOW_HEIGHT_OFFSET = 64
COLORMAP_OFFSET = 68
COLORMAP_SIZE = 24
PAYLOAD_OFFSET = COLORMAP_OFFSET + COLORMAP_SIZE
PAYLOAD_SIZE = 32
TOTAL_SIZE = PAYLOAD_OFFSET + PAYLOAD_SIZE


def _xwd_fields() -> list:
    big = Endianness.BIG
    return [
        FieldSpec("/header/header_size", HEADER_SIZE_OFFSET, 4, FieldKind.UINT, big, mutable=False),
        FieldSpec("/header/file_version", FILE_VERSION_OFFSET, 4, FieldKind.UINT, big, mutable=False),
        FieldSpec("/header/pixmap_format", PIXMAP_FORMAT_OFFSET, 4, FieldKind.UINT, big),
        FieldSpec("/header/pixmap_depth", PIXMAP_DEPTH_OFFSET, 4, FieldKind.UINT, big),
        FieldSpec("/header/pixmap_width", PIXMAP_WIDTH_OFFSET, 4, FieldKind.UINT, big),
        FieldSpec("/header/pixmap_height", PIXMAP_HEIGHT_OFFSET, 4, FieldKind.UINT, big),
        FieldSpec("/header/xoffset", XOFFSET_OFFSET, 4, FieldKind.UINT, big),
        FieldSpec("/header/byte_order", BYTE_ORDER_OFFSET, 4, FieldKind.UINT, big),
        FieldSpec("/header/bitmap_unit", BITMAP_UNIT_OFFSET, 4, FieldKind.UINT, big),
        FieldSpec("/header/bitmap_pad", BITMAP_PAD_OFFSET, 4, FieldKind.UINT, big),
        FieldSpec("/header/bits_per_pixel", BITS_PER_PIXEL_OFFSET, 4, FieldKind.UINT, big),
        FieldSpec("/header/bytes_per_line", BYTES_PER_LINE_OFFSET, 4, FieldKind.UINT, big),
        FieldSpec("/header/visual_class", VISUAL_CLASS_OFFSET, 4, FieldKind.UINT, big),
        FieldSpec("/header/colormap_entries", COLORMAP_ENTRIES_OFFSET, 4, FieldKind.UINT, big),
        FieldSpec("/header/ncolors", NCOLORS_OFFSET, 4, FieldKind.UINT, big),
        FieldSpec("/header/window_width", WINDOW_WIDTH_OFFSET, 4, FieldKind.UINT, big),
        FieldSpec("/header/window_height", WINDOW_HEIGHT_OFFSET, 4, FieldKind.UINT, big),
        FieldSpec("/colormap", COLORMAP_OFFSET, COLORMAP_SIZE, FieldKind.BYTES),
        FieldSpec("/pixels", PAYLOAD_OFFSET, PAYLOAD_SIZE, FieldKind.BYTES),
    ]


#: The XWD-like format specification.
XwdFormat = FormatSpec("xwd", _xwd_fields())


def build_xwd_seed(
    width: int = 64,
    height: int = 48,
    bits_per_pixel: int = 24,
    ncolors: int = 4,
) -> bytes:
    """Build a well-formed seed XWD the ImageMagick model processes without errors."""
    data = bytearray(TOTAL_SIZE)

    def put(offset: int, value: int) -> None:
        data[offset : offset + 4] = value.to_bytes(4, "big")

    put(HEADER_SIZE_OFFSET, COLORMAP_OFFSET)
    put(FILE_VERSION_OFFSET, 7)
    put(PIXMAP_FORMAT_OFFSET, 2)
    put(PIXMAP_DEPTH_OFFSET, 24)
    put(PIXMAP_WIDTH_OFFSET, width)
    put(PIXMAP_HEIGHT_OFFSET, height)
    put(XOFFSET_OFFSET, 0)
    put(BYTE_ORDER_OFFSET, 1)
    put(BITMAP_UNIT_OFFSET, 32)
    put(BITMAP_PAD_OFFSET, 32)
    put(BITS_PER_PIXEL_OFFSET, bits_per_pixel)
    put(BYTES_PER_LINE_OFFSET, (width * bits_per_pixel + 7) // 8)
    put(VISUAL_CLASS_OFFSET, 5)
    put(COLORMAP_ENTRIES_OFFSET, ncolors)
    put(NCOLORS_OFFSET, ncolors)
    put(WINDOW_WIDTH_OFFSET, width)
    put(WINDOW_HEIGHT_OFFSET, height)
    data[COLORMAP_OFFSET : COLORMAP_OFFSET + COLORMAP_SIZE] = bytes(
        (i * 13) & 0xFF for i in range(COLORMAP_SIZE)
    )
    data[PAYLOAD_OFFSET : PAYLOAD_OFFSET + PAYLOAD_SIZE] = bytes(
        (i * 17) & 0xFF for i in range(PAYLOAD_SIZE)
    )
    return bytes(data)
