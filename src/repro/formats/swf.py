"""A simplified SWF-with-embedded-JPEG format (seed inputs for SwfPlay).

SwfPlay's overflows live in its JPEG RGB decoder (``jpeg_rgb_decoder.c``) and
JPEG tag handler (``jpeg.c``): the image dimensions carried in a DefineBits
JPEG tag drive several image-buffer allocations.  The layout here keeps the
SWF container header (magic, version, file length, stage size) and a single
embedded JPEG-ish image block with big-endian width/height and a component
count, which is all the SwfPlay model reads.
"""

from __future__ import annotations

from repro.formats.checksum import additive_checksum
from repro.formats.fields import Endianness, FieldKind, FieldSpec
from repro.formats.spec import FormatSpec

MAGIC_OFFSET = 0
VERSION_OFFSET = 3
FILE_LENGTH_OFFSET = 4
STAGE_WIDTH_OFFSET = 8
STAGE_HEIGHT_OFFSET = 10
TAG_CODE_OFFSET = 12
TAG_LENGTH_OFFSET = 14
JPEG_WIDTH_OFFSET = 18
JPEG_HEIGHT_OFFSET = 20
JPEG_COMPONENTS_OFFSET = 22
JPEG_QUALITY_OFFSET = 23
PAYLOAD_OFFSET = 24
PAYLOAD_SIZE = 24
CHECKSUM_OFFSET = PAYLOAD_OFFSET + PAYLOAD_SIZE
TOTAL_SIZE = CHECKSUM_OFFSET + 4


def _swf_fields() -> list:
    big = Endianness.BIG
    return [
        FieldSpec("/header/magic", MAGIC_OFFSET, 3, FieldKind.MAGIC, mutable=False),
        FieldSpec("/header/version", VERSION_OFFSET, 1, FieldKind.UINT),
        FieldSpec(
            "/header/file_length",
            FILE_LENGTH_OFFSET,
            4,
            FieldKind.LENGTH,
            Endianness.LITTLE,
            covers=(0, -1),
            mutable=False,
        ),
        FieldSpec("/header/stage_width", STAGE_WIDTH_OFFSET, 2, FieldKind.UINT, big),
        FieldSpec("/header/stage_height", STAGE_HEIGHT_OFFSET, 2, FieldKind.UINT, big),
        FieldSpec("/tag/code", TAG_CODE_OFFSET, 2, FieldKind.UINT, big, mutable=False),
        FieldSpec("/tag/length", TAG_LENGTH_OFFSET, 4, FieldKind.UINT, big, mutable=False),
        FieldSpec("/jpeg/width", JPEG_WIDTH_OFFSET, 2, FieldKind.UINT, big),
        FieldSpec("/jpeg/height", JPEG_HEIGHT_OFFSET, 2, FieldKind.UINT, big),
        FieldSpec("/jpeg/components", JPEG_COMPONENTS_OFFSET, 1, FieldKind.UINT),
        FieldSpec("/jpeg/quality", JPEG_QUALITY_OFFSET, 1, FieldKind.UINT),
        FieldSpec("/jpeg/payload", PAYLOAD_OFFSET, PAYLOAD_SIZE, FieldKind.BYTES),
        FieldSpec(
            "/trailer/checksum",
            CHECKSUM_OFFSET,
            4,
            FieldKind.CHECKSUM,
            big,
            covers=(PAYLOAD_OFFSET, PAYLOAD_SIZE),
            compute=additive_checksum,
            mutable=False,
        ),
    ]


#: The SWF-like format specification.
SwfFormat = FormatSpec("swf", _swf_fields())


def build_swf_seed(
    stage_width: int = 550,
    stage_height: int = 400,
    jpeg_width: int = 320,
    jpeg_height: int = 240,
    components: int = 3,
) -> bytes:
    """Build a well-formed seed SWF the SwfPlay model processes without errors."""
    data = bytearray(TOTAL_SIZE)
    data[MAGIC_OFFSET : MAGIC_OFFSET + 3] = b"FWS"
    data[VERSION_OFFSET] = 6
    data[STAGE_WIDTH_OFFSET : STAGE_WIDTH_OFFSET + 2] = stage_width.to_bytes(2, "big")
    data[STAGE_HEIGHT_OFFSET : STAGE_HEIGHT_OFFSET + 2] = stage_height.to_bytes(2, "big")
    data[TAG_CODE_OFFSET : TAG_CODE_OFFSET + 2] = (21).to_bytes(2, "big")  # DefineBitsJPEG2
    data[TAG_LENGTH_OFFSET : TAG_LENGTH_OFFSET + 4] = (PAYLOAD_SIZE + 6).to_bytes(4, "big")
    data[JPEG_WIDTH_OFFSET : JPEG_WIDTH_OFFSET + 2] = jpeg_width.to_bytes(2, "big")
    data[JPEG_HEIGHT_OFFSET : JPEG_HEIGHT_OFFSET + 2] = jpeg_height.to_bytes(2, "big")
    data[JPEG_COMPONENTS_OFFSET] = components
    data[JPEG_QUALITY_OFFSET] = 85
    data[PAYLOAD_OFFSET : PAYLOAD_OFFSET + PAYLOAD_SIZE] = bytes(
        (i * 5) & 0xFF for i in range(PAYLOAD_SIZE)
    )
    from repro.formats.rewriter import InputRewriter

    return InputRewriter(SwfFormat).rewrite_bytes(bytes(data), {})
