"""Format specifications and input dissection.

A :class:`FormatSpec` is an ordered collection of :class:`~repro.formats.fields.FieldSpec`
objects describing one input format (PNG-like, WAV-like, ...).  Dissecting an
input file against a spec yields a :class:`DissectedInput` that can answer
the two questions DIODE asks:

* which named field does a given byte offset belong to (for reporting which
  input fields influence a target site), and
* what are the current field values (for describing seed inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.formats.fields import FieldKind, FieldSpec, FieldValue


class FormatError(ValueError):
    """Raised for malformed format specifications or undersized inputs."""


class FormatSpec:
    """An ordered set of named fields describing one input format."""

    def __init__(self, name: str, fields: Sequence[FieldSpec]) -> None:
        self.name = name
        self.fields: List[FieldSpec] = list(fields)
        self._by_path: Dict[str, FieldSpec] = {}
        for spec in self.fields:
            if spec.path in self._by_path:
                raise FormatError(f"duplicate field path {spec.path!r}")
            self._by_path[spec.path] = spec

    # ------------------------------------------------------------------
    def field(self, path: str) -> FieldSpec:
        """Look up a field by path."""
        try:
            return self._by_path[path]
        except KeyError as error:
            raise FormatError(f"{self.name}: no field named {path!r}") from error

    def has_field(self, path: str) -> bool:
        """Whether the format defines a field with this path."""
        return path in self._by_path

    def field_paths(self) -> List[str]:
        """All field paths, in file order."""
        return [spec.path for spec in self.fields]

    def mutable_fields(self) -> List[FieldSpec]:
        """Fields whose bytes DIODE may replace with solver values."""
        return [spec for spec in self.fields if spec.mutable]

    def field_at_offset(self, offset: int) -> Optional[FieldSpec]:
        """The field containing the given byte offset, if any."""
        for spec in self.fields:
            if offset in spec.byte_range():
                return spec
        return None

    def minimum_size(self) -> int:
        """Smallest file size that contains every fixed field."""
        end = 0
        for spec in self.fields:
            if spec.size >= 0:
                end = max(end, spec.offset + spec.size)
        return end

    def dissect(self, data: bytes) -> "DissectedInput":
        """Dissect an input file against this spec."""
        if len(data) < self.minimum_size():
            raise FormatError(
                f"{self.name}: input is {len(data)} bytes, "
                f"need at least {self.minimum_size()}"
            )
        return DissectedInput(spec=self, data=bytes(data))

    def __repr__(self) -> str:
        return f"FormatSpec({self.name!r}, {len(self.fields)} fields)"


@dataclass
class DissectedInput:
    """An input file interpreted against a :class:`FormatSpec`."""

    spec: FormatSpec
    data: bytes

    def value_of(self, path: str) -> int:
        """Integer value of a UINT field."""
        field_spec = self.spec.field(path)
        if field_spec.kind is FieldKind.BYTES:
            raise FormatError(f"field {path!r} is a byte payload, not an integer")
        return field_spec.read(self.data)

    def bytes_of(self, path: str) -> bytes:
        """Raw bytes of any field."""
        return self.spec.field(path).read_bytes(self.data)

    def field_values(self) -> List[FieldValue]:
        """All UINT field values in file order."""
        out: List[FieldValue] = []
        for field_spec in self.spec.fields:
            if field_spec.kind in (FieldKind.UINT, FieldKind.CHECKSUM, FieldKind.LENGTH):
                out.append(FieldValue(spec=field_spec, value=field_spec.read(self.data)))
        return out

    def field_for_offset(self, offset: int) -> Optional[str]:
        """Path of the field containing a byte offset (``None`` if padding)."""
        field_spec = self.spec.field_at_offset(offset)
        return field_spec.path if field_spec else None

    def describe_offsets(self, offsets: Iterable[int]) -> Dict[str, List[int]]:
        """Group byte offsets by the field they belong to.

        Offsets not covered by any field are grouped under ``"<raw>"``.
        This is how DIODE reports relevant input bytes as named fields.
        """
        grouped: Dict[str, List[int]] = {}
        for offset in sorted(set(offsets)):
            path = self.field_for_offset(offset) or "<raw>"
            grouped.setdefault(path, []).append(offset)
        return grouped
