"""A simplified PNG-like format (seed inputs for the Dillo model).

The layout follows the real PNG structure closely enough that the Dillo
application model performs the same field reads, endianness conversions and
checksum validation as the code in the paper's Figure 2: an 8-byte
signature, an IHDR chunk carrying big-endian width/height and a bit depth,
an IDAT chunk with payload, and an IEND chunk.  Chunk CRCs are real CRC-32
values recomputed by the rewriter.
"""

from __future__ import annotations

from repro.formats.checksum import crc32
from repro.formats.fields import Endianness, FieldKind, FieldSpec
from repro.formats.spec import FormatSpec

#: Byte offsets of the interesting IHDR fields (shared with the Dillo model).
SIGNATURE_OFFSET = 0
IHDR_LENGTH_OFFSET = 8
IHDR_TYPE_OFFSET = 12
WIDTH_OFFSET = 16
HEIGHT_OFFSET = 20
BIT_DEPTH_OFFSET = 24
COLOR_TYPE_OFFSET = 25
COMPRESSION_OFFSET = 26
FILTER_OFFSET = 27
INTERLACE_OFFSET = 28
IHDR_CRC_OFFSET = 29
IDAT_LENGTH_OFFSET = 33
IDAT_TYPE_OFFSET = 37
IDAT_DATA_OFFSET = 41
IDAT_DATA_SIZE = 16
IDAT_CRC_OFFSET = IDAT_DATA_OFFSET + IDAT_DATA_SIZE
IEND_OFFSET = IDAT_CRC_OFFSET + 4
TOTAL_SIZE = IEND_OFFSET + 12

PNG_SIGNATURE = bytes([0x89, 0x50, 0x4E, 0x47, 0x0D, 0x0A, 0x1A, 0x0A])


def _png_fields() -> list:
    return [
        FieldSpec("/signature", SIGNATURE_OFFSET, 8, FieldKind.MAGIC, mutable=False),
        FieldSpec("/ihdr/length", IHDR_LENGTH_OFFSET, 4, FieldKind.UINT, Endianness.BIG, mutable=False),
        FieldSpec("/ihdr/type", IHDR_TYPE_OFFSET, 4, FieldKind.MAGIC, mutable=False),
        FieldSpec("/header/width", WIDTH_OFFSET, 4, FieldKind.UINT, Endianness.BIG),
        FieldSpec("/header/height", HEIGHT_OFFSET, 4, FieldKind.UINT, Endianness.BIG),
        FieldSpec("/header/bit_depth", BIT_DEPTH_OFFSET, 1, FieldKind.UINT),
        FieldSpec("/header/color_type", COLOR_TYPE_OFFSET, 1, FieldKind.UINT),
        FieldSpec("/header/compression", COMPRESSION_OFFSET, 1, FieldKind.UINT),
        FieldSpec("/header/filter", FILTER_OFFSET, 1, FieldKind.UINT),
        FieldSpec("/header/interlace", INTERLACE_OFFSET, 1, FieldKind.UINT),
        FieldSpec(
            "/ihdr/crc",
            IHDR_CRC_OFFSET,
            4,
            FieldKind.CHECKSUM,
            Endianness.BIG,
            covers=(IHDR_TYPE_OFFSET, 4 + 13),
            compute=crc32,
            mutable=False,
        ),
        FieldSpec("/idat/length", IDAT_LENGTH_OFFSET, 4, FieldKind.UINT, Endianness.BIG, mutable=False),
        FieldSpec("/idat/type", IDAT_TYPE_OFFSET, 4, FieldKind.MAGIC, mutable=False),
        FieldSpec("/idat/data", IDAT_DATA_OFFSET, IDAT_DATA_SIZE, FieldKind.BYTES),
        FieldSpec(
            "/idat/crc",
            IDAT_CRC_OFFSET,
            4,
            FieldKind.CHECKSUM,
            Endianness.BIG,
            covers=(IDAT_TYPE_OFFSET, 4 + IDAT_DATA_SIZE),
            compute=crc32,
            mutable=False,
        ),
        FieldSpec("/iend/length", IEND_OFFSET, 4, FieldKind.UINT, Endianness.BIG, mutable=False),
        FieldSpec("/iend/type", IEND_OFFSET + 4, 4, FieldKind.MAGIC, mutable=False),
        FieldSpec(
            "/iend/crc",
            IEND_OFFSET + 8,
            4,
            FieldKind.CHECKSUM,
            Endianness.BIG,
            covers=(IEND_OFFSET + 4, 4),
            compute=crc32,
            mutable=False,
        ),
    ]


#: The PNG-like format specification.
PngFormat = FormatSpec("png", _png_fields())


def build_png_seed(
    width: int = 280,
    height: int = 100,
    bit_depth: int = 8,
    color_type: int = 2,
) -> bytes:
    """Build a well-formed seed PNG the Dillo model processes without errors."""
    data = bytearray(TOTAL_SIZE)
    data[SIGNATURE_OFFSET : SIGNATURE_OFFSET + 8] = PNG_SIGNATURE
    data[IHDR_LENGTH_OFFSET : IHDR_LENGTH_OFFSET + 4] = (13).to_bytes(4, "big")
    data[IHDR_TYPE_OFFSET : IHDR_TYPE_OFFSET + 4] = b"IHDR"
    data[WIDTH_OFFSET : WIDTH_OFFSET + 4] = width.to_bytes(4, "big")
    data[HEIGHT_OFFSET : HEIGHT_OFFSET + 4] = height.to_bytes(4, "big")
    data[BIT_DEPTH_OFFSET] = bit_depth
    data[COLOR_TYPE_OFFSET] = color_type
    data[COMPRESSION_OFFSET] = 0
    data[FILTER_OFFSET] = 0
    data[INTERLACE_OFFSET] = 0
    data[IDAT_LENGTH_OFFSET : IDAT_LENGTH_OFFSET + 4] = IDAT_DATA_SIZE.to_bytes(4, "big")
    data[IDAT_TYPE_OFFSET : IDAT_TYPE_OFFSET + 4] = b"IDAT"
    data[IDAT_DATA_OFFSET : IDAT_DATA_OFFSET + IDAT_DATA_SIZE] = bytes(
        (i * 7) & 0xFF for i in range(IDAT_DATA_SIZE)
    )
    data[IEND_OFFSET : IEND_OFFSET + 4] = (0).to_bytes(4, "big")
    data[IEND_OFFSET + 4 : IEND_OFFSET + 8] = b"IEND"
    # CRCs are filled in by the rewriter's fix-up pass.
    from repro.formats.rewriter import InputRewriter

    return InputRewriter(PngFormat).rewrite_bytes(bytes(data), {})
