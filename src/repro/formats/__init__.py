"""Input-format substrate (the paper's Hachoir + Peach replacement).

The paper uses Hachoir to dissect seed input files into named fields (so a
byte range like 16–19 becomes ``/header/width``) and Hachoir + Peach to
rebuild a structurally valid input file around solver-chosen field values —
recomputing checksums and preserving required field ordering.

This package provides the same two services:

* :mod:`repro.formats.fields` / :mod:`repro.formats.spec` — declarative
  format specifications mapping byte ranges to named fields.
* :mod:`repro.formats.rewriter` — rebuild an input file with new byte or
  field values, fixing up checksums and length fields afterwards.
* :mod:`repro.formats.png`, :mod:`~repro.formats.wav`,
  :mod:`~repro.formats.swf`, :mod:`~repro.formats.webp`,
  :mod:`~repro.formats.xwd` — concrete format definitions and seed-file
  builders for the five benchmark application models.
"""

from repro.formats.fields import Endianness, FieldKind, FieldSpec, FieldValue
from repro.formats.spec import FormatSpec, DissectedInput, FormatError
from repro.formats.checksum import crc32, adler32, additive_checksum
from repro.formats.rewriter import InputRewriter
from repro.formats.png import PngFormat, build_png_seed
from repro.formats.wav import WavFormat, build_wav_seed
from repro.formats.swf import SwfFormat, build_swf_seed
from repro.formats.webp import WebpFormat, build_webp_seed
from repro.formats.xwd import XwdFormat, build_xwd_seed

__all__ = [
    "Endianness",
    "FieldKind",
    "FieldSpec",
    "FieldValue",
    "FormatSpec",
    "DissectedInput",
    "FormatError",
    "crc32",
    "adler32",
    "additive_checksum",
    "InputRewriter",
    "PngFormat",
    "build_png_seed",
    "WavFormat",
    "build_wav_seed",
    "SwfFormat",
    "build_swf_seed",
    "WebpFormat",
    "build_webp_seed",
    "XwdFormat",
    "build_xwd_seed",
]
