"""Checksum algorithms used by the input formats.

The rewriter recomputes these after placing solver-chosen field values into
an input file, which is the Peach role in the paper ("applying techniques
such as checksum recalculation").
"""

from __future__ import annotations

import zlib


def crc32(data: bytes) -> int:
    """The CRC-32 used by PNG chunks."""
    return zlib.crc32(bytes(data)) & 0xFFFFFFFF


def adler32(data: bytes) -> int:
    """The Adler-32 checksum used by zlib streams."""
    return zlib.adler32(bytes(data)) & 0xFFFFFFFF


def additive_checksum(data: bytes, width: int = 32) -> int:
    """A simple additive checksum (sum of bytes modulo 2^width)."""
    return sum(data) & ((1 << width) - 1)
