"""Input reconstruction: place new field/byte values into a seed file.

This is the Peach role in the paper (Section 4.4): given the seed input and
solver-chosen values for the relevant input bytes, produce a new input file
that is still structurally valid — magic bytes preserved, checksums
recomputed, derived length fields updated.  A *raw-byte mode* is also
provided for unknown formats, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.formats.fields import FieldKind, FieldSpec
from repro.formats.spec import FormatError, FormatSpec


class InputRewriter:
    """Rebuild input files around new byte or field values."""

    def __init__(self, spec: Optional[FormatSpec] = None) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    # Byte-level interface (what the DIODE pipeline uses: solver models are
    # assignments to individual relevant input bytes).
    # ------------------------------------------------------------------
    def rewrite_bytes(self, seed: bytes, byte_values: Mapping[int, int]) -> bytes:
        """Return a copy of ``seed`` with the given byte offsets replaced.

        When a format spec is present, bytes that fall inside immutable
        fields (magic numbers, checksums, derived lengths) are left alone —
        the subsequent fix-up pass recomputes derived fields, and overwriting
        magic bytes would only produce an input the application rejects in
        its first sanity check.
        """
        data = bytearray(seed)
        for offset, value in byte_values.items():
            if offset < 0 or offset >= len(data):
                continue
            if self.spec is not None:
                field_spec = self.spec.field_at_offset(offset)
                if field_spec is not None and not field_spec.mutable:
                    continue
            data[offset] = value & 0xFF
        if self.spec is not None:
            self._fix_derived_fields(data)
        return bytes(data)

    # ------------------------------------------------------------------
    # Field-level interface (used by examples and tests).
    # ------------------------------------------------------------------
    def rewrite_fields(self, seed: bytes, field_values: Mapping[str, int]) -> bytes:
        """Return a copy of ``seed`` with named UINT fields set to new values."""
        if self.spec is None:
            raise FormatError("field-level rewriting requires a format spec")
        data = bytearray(seed)
        for path, value in field_values.items():
            field_spec = self.spec.field(path)
            if field_spec.kind not in (FieldKind.UINT,):
                raise FormatError(f"field {path!r} is not a writable integer field")
            data[field_spec.offset : field_spec.offset + field_spec.size] = (
                field_spec.encode(value)
            )
        self._fix_derived_fields(data)
        return bytes(data)

    def field_values_to_bytes(self, field_values: Mapping[str, int]) -> Dict[int, int]:
        """Expand named field values into individual byte assignments."""
        if self.spec is None:
            raise FormatError("field expansion requires a format spec")
        out: Dict[int, int] = {}
        for path, value in field_values.items():
            field_spec = self.spec.field(path)
            encoded = field_spec.encode(value)
            for index, byte in enumerate(encoded):
                out[field_spec.offset + index] = byte
        return out

    # ------------------------------------------------------------------
    # Derived-field fix-up
    # ------------------------------------------------------------------
    def _fix_derived_fields(self, data: bytearray) -> None:
        assert self.spec is not None
        for field_spec in self.spec.fields:
            if field_spec.kind is FieldKind.CHECKSUM:
                self._fix_checksum(data, field_spec)
            elif field_spec.kind is FieldKind.LENGTH:
                self._fix_length(data, field_spec)

    def _fix_checksum(self, data: bytearray, field_spec: FieldSpec) -> None:
        if field_spec.covers is None or field_spec.compute is None:
            return
        start, size = field_spec.covers
        end = len(data) if size < 0 else start + size
        value = field_spec.compute(bytes(data[start:end]))
        data[field_spec.offset : field_spec.offset + field_spec.size] = (
            field_spec.encode(value)
        )

    def _fix_length(self, data: bytearray, field_spec: FieldSpec) -> None:
        if field_spec.covers is None:
            return
        start, size = field_spec.covers
        end = len(data) if size < 0 else start + size
        value = max(0, end - start)
        data[field_spec.offset : field_spec.offset + field_spec.size] = (
            field_spec.encode(value)
        )
