"""A simplified JPEG-source format for the CWebP model.

``cwebp`` converts JPEG/PNG sources to WebP; the paper's overflow is in its
JPEG decoder (``jpegdec.c@248``), where the source image dimensions drive the
RGB buffer allocation.  The layout here is a minimal JPEG-like file: SOI
marker, a start-of-frame segment with precision/height/width/components, a
scan payload and an end marker.
"""

from __future__ import annotations

from repro.formats.fields import Endianness, FieldKind, FieldSpec
from repro.formats.spec import FormatSpec

SOI_OFFSET = 0
SOF_MARKER_OFFSET = 2
SOF_LENGTH_OFFSET = 4
PRECISION_OFFSET = 6
HEIGHT_OFFSET = 7
WIDTH_OFFSET = 9
COMPONENTS_OFFSET = 11
SAMPLING_OFFSET = 12
QUALITY_OFFSET = 13
SCAN_LENGTH_OFFSET = 14
PAYLOAD_OFFSET = 18
PAYLOAD_SIZE = 24
EOI_OFFSET = PAYLOAD_OFFSET + PAYLOAD_SIZE
TOTAL_SIZE = EOI_OFFSET + 2


def _webp_fields() -> list:
    big = Endianness.BIG
    return [
        FieldSpec("/soi", SOI_OFFSET, 2, FieldKind.MAGIC, mutable=False),
        FieldSpec("/sof/marker", SOF_MARKER_OFFSET, 2, FieldKind.MAGIC, mutable=False),
        FieldSpec("/sof/length", SOF_LENGTH_OFFSET, 2, FieldKind.UINT, big, mutable=False),
        FieldSpec("/sof/precision", PRECISION_OFFSET, 1, FieldKind.UINT),
        FieldSpec("/sof/height", HEIGHT_OFFSET, 2, FieldKind.UINT, big),
        FieldSpec("/sof/width", WIDTH_OFFSET, 2, FieldKind.UINT, big),
        FieldSpec("/sof/components", COMPONENTS_OFFSET, 1, FieldKind.UINT),
        FieldSpec("/sof/sampling", SAMPLING_OFFSET, 1, FieldKind.UINT),
        FieldSpec("/sof/quality", QUALITY_OFFSET, 1, FieldKind.UINT),
        FieldSpec("/scan/length", SCAN_LENGTH_OFFSET, 4, FieldKind.UINT, big),
        FieldSpec("/scan/payload", PAYLOAD_OFFSET, PAYLOAD_SIZE, FieldKind.BYTES),
        FieldSpec("/eoi", EOI_OFFSET, 2, FieldKind.MAGIC, mutable=False),
    ]


#: The JPEG-source format specification used by the CWebP model.
WebpFormat = FormatSpec("webp_jpeg_source", _webp_fields())


def build_webp_seed(
    width: int = 160,
    height: int = 120,
    components: int = 3,
    precision: int = 8,
) -> bytes:
    """Build a well-formed seed JPEG the CWebP model processes without errors."""
    data = bytearray(TOTAL_SIZE)
    data[SOI_OFFSET : SOI_OFFSET + 2] = bytes([0xFF, 0xD8])
    data[SOF_MARKER_OFFSET : SOF_MARKER_OFFSET + 2] = bytes([0xFF, 0xC0])
    data[SOF_LENGTH_OFFSET : SOF_LENGTH_OFFSET + 2] = (11).to_bytes(2, "big")
    data[PRECISION_OFFSET] = precision
    data[HEIGHT_OFFSET : HEIGHT_OFFSET + 2] = height.to_bytes(2, "big")
    data[WIDTH_OFFSET : WIDTH_OFFSET + 2] = width.to_bytes(2, "big")
    data[COMPONENTS_OFFSET] = components
    data[SAMPLING_OFFSET] = 0x22
    data[QUALITY_OFFSET] = 90
    data[SCAN_LENGTH_OFFSET : SCAN_LENGTH_OFFSET + 4] = PAYLOAD_SIZE.to_bytes(4, "big")
    data[PAYLOAD_OFFSET : PAYLOAD_OFFSET + PAYLOAD_SIZE] = bytes(
        (i * 11) & 0xFF for i in range(PAYLOAD_SIZE)
    )
    data[EOI_OFFSET : EOI_OFFSET + 2] = bytes([0xFF, 0xD9])
    from repro.formats.rewriter import InputRewriter

    return InputRewriter(WebpFormat).rewrite_bytes(bytes(data), {})
