"""A simplified RIFF/WAV-like format (seed inputs for the VLC model).

The layout mirrors the parts of a WAV file the VLC 0.8.6h demuxer reads on
the paths the paper reports overflows in: the RIFF header, the ``fmt `` chunk
(channels, sample rate, block align, bits per sample), an extra-data size
field (the ``x + 2`` allocation of CVE-2008-2430 in ``wav.c``), and a
``data`` chunk whose frame count / frame size fields drive the decoder and
message buffers (``dec.c``, ``block.c``, ``messages.c``).
"""

from __future__ import annotations

from repro.formats.fields import Endianness, FieldKind, FieldSpec
from repro.formats.spec import FormatSpec

RIFF_MAGIC_OFFSET = 0
RIFF_SIZE_OFFSET = 4
WAVE_MAGIC_OFFSET = 8
FMT_MAGIC_OFFSET = 12
FMT_SIZE_OFFSET = 16
AUDIO_FORMAT_OFFSET = 20
CHANNELS_OFFSET = 22
SAMPLE_RATE_OFFSET = 24
BYTE_RATE_OFFSET = 28
BLOCK_ALIGN_OFFSET = 32
BITS_PER_SAMPLE_OFFSET = 34
EXTRA_SIZE_OFFSET = 36
DATA_MAGIC_OFFSET = 40
DATA_SIZE_OFFSET = 44
FRAME_COUNT_OFFSET = 48
FRAME_SIZE_OFFSET = 52
ES_NAME_LENGTH_OFFSET = 56
PAYLOAD_OFFSET = 60
PAYLOAD_SIZE = 20
TOTAL_SIZE = PAYLOAD_OFFSET + PAYLOAD_SIZE


def _wav_fields() -> list:
    little = Endianness.LITTLE
    return [
        FieldSpec("/riff/magic", RIFF_MAGIC_OFFSET, 4, FieldKind.MAGIC, mutable=False),
        FieldSpec(
            "/riff/size",
            RIFF_SIZE_OFFSET,
            4,
            FieldKind.LENGTH,
            little,
            covers=(WAVE_MAGIC_OFFSET, -1),
            mutable=False,
        ),
        FieldSpec("/riff/wave", WAVE_MAGIC_OFFSET, 4, FieldKind.MAGIC, mutable=False),
        FieldSpec("/fmt/magic", FMT_MAGIC_OFFSET, 4, FieldKind.MAGIC, mutable=False),
        FieldSpec("/fmt/size", FMT_SIZE_OFFSET, 4, FieldKind.UINT, little, mutable=False),
        FieldSpec("/fmt/audio_format", AUDIO_FORMAT_OFFSET, 2, FieldKind.UINT, little),
        FieldSpec("/fmt/channels", CHANNELS_OFFSET, 2, FieldKind.UINT, little),
        FieldSpec("/fmt/sample_rate", SAMPLE_RATE_OFFSET, 4, FieldKind.UINT, little),
        FieldSpec("/fmt/byte_rate", BYTE_RATE_OFFSET, 4, FieldKind.UINT, little),
        FieldSpec("/fmt/block_align", BLOCK_ALIGN_OFFSET, 2, FieldKind.UINT, little),
        FieldSpec("/fmt/bits_per_sample", BITS_PER_SAMPLE_OFFSET, 2, FieldKind.UINT, little),
        FieldSpec("/fmt/extra_size", EXTRA_SIZE_OFFSET, 4, FieldKind.UINT, little),
        FieldSpec("/data/magic", DATA_MAGIC_OFFSET, 4, FieldKind.MAGIC, mutable=False),
        FieldSpec("/data/size", DATA_SIZE_OFFSET, 4, FieldKind.UINT, little),
        FieldSpec("/data/frame_count", FRAME_COUNT_OFFSET, 4, FieldKind.UINT, little),
        FieldSpec("/data/frame_size", FRAME_SIZE_OFFSET, 4, FieldKind.UINT, little),
        FieldSpec("/data/es_name_length", ES_NAME_LENGTH_OFFSET, 4, FieldKind.UINT, little),
        FieldSpec("/data/payload", PAYLOAD_OFFSET, PAYLOAD_SIZE, FieldKind.BYTES),
    ]


#: The WAV-like format specification.
WavFormat = FormatSpec("wav", _wav_fields())


def build_wav_seed(
    channels: int = 2,
    sample_rate: int = 44100,
    bits_per_sample: int = 16,
    extra_size: int = 8,
    frame_count: int = 4,
    frame_size: int = 64,
    es_name_length: int = 12,
) -> bytes:
    """Build a well-formed seed WAV the VLC model processes without errors."""
    data = bytearray(TOTAL_SIZE)
    data[RIFF_MAGIC_OFFSET : RIFF_MAGIC_OFFSET + 4] = b"RIFF"
    data[WAVE_MAGIC_OFFSET : WAVE_MAGIC_OFFSET + 4] = b"WAVE"
    data[FMT_MAGIC_OFFSET : FMT_MAGIC_OFFSET + 4] = b"fmt "
    data[FMT_SIZE_OFFSET : FMT_SIZE_OFFSET + 4] = (20).to_bytes(4, "little")
    data[AUDIO_FORMAT_OFFSET : AUDIO_FORMAT_OFFSET + 2] = (1).to_bytes(2, "little")
    data[CHANNELS_OFFSET : CHANNELS_OFFSET + 2] = channels.to_bytes(2, "little")
    data[SAMPLE_RATE_OFFSET : SAMPLE_RATE_OFFSET + 4] = sample_rate.to_bytes(4, "little")
    byte_rate = sample_rate * channels * (bits_per_sample // 8)
    data[BYTE_RATE_OFFSET : BYTE_RATE_OFFSET + 4] = byte_rate.to_bytes(4, "little")
    block_align = channels * (bits_per_sample // 8)
    data[BLOCK_ALIGN_OFFSET : BLOCK_ALIGN_OFFSET + 2] = block_align.to_bytes(2, "little")
    data[BITS_PER_SAMPLE_OFFSET : BITS_PER_SAMPLE_OFFSET + 2] = bits_per_sample.to_bytes(
        2, "little"
    )
    data[EXTRA_SIZE_OFFSET : EXTRA_SIZE_OFFSET + 4] = extra_size.to_bytes(4, "little")
    data[DATA_MAGIC_OFFSET : DATA_MAGIC_OFFSET + 4] = b"data"
    data[DATA_SIZE_OFFSET : DATA_SIZE_OFFSET + 4] = PAYLOAD_SIZE.to_bytes(4, "little")
    data[FRAME_COUNT_OFFSET : FRAME_COUNT_OFFSET + 4] = frame_count.to_bytes(4, "little")
    data[FRAME_SIZE_OFFSET : FRAME_SIZE_OFFSET + 4] = frame_size.to_bytes(4, "little")
    data[ES_NAME_LENGTH_OFFSET : ES_NAME_LENGTH_OFFSET + 4] = es_name_length.to_bytes(
        4, "little"
    )
    data[PAYLOAD_OFFSET : PAYLOAD_OFFSET + PAYLOAD_SIZE] = bytes(
        (i * 3) & 0xFF for i in range(PAYLOAD_SIZE)
    )
    from repro.formats.rewriter import InputRewriter

    return InputRewriter(WavFormat).rewrite_bytes(bytes(data), {})
