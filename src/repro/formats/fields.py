"""Field descriptions: named byte ranges within an input file.

A :class:`FieldSpec` names a byte range and describes how to interpret it
(unsigned integer with an endianness, raw bytes, or a checksum computed over
another region).  This is the Hachoir role in the paper: turning raw byte
offsets into named input fields such as ``/header/width`` so that reports and
constraints can talk about fields rather than anonymous offsets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple


class Endianness(enum.Enum):
    """Byte order of an integer field."""

    BIG = "big"
    LITTLE = "little"


class FieldKind(enum.Enum):
    """What a byte range means."""

    UINT = "uint"          # unsigned integer, fixed width
    BYTES = "bytes"        # opaque payload bytes
    MAGIC = "magic"        # fixed signature bytes that must not change
    CHECKSUM = "checksum"  # derived from other bytes; recomputed on rewrite
    LENGTH = "length"      # derived length of another region; recomputed


@dataclass(frozen=True)
class FieldSpec:
    """A named field inside an input format.

    Attributes:
        path: hierarchical name, e.g. ``/header/width``.
        offset: byte offset of the field within the file.
        size: field size in bytes.
        kind: interpretation of the bytes.
        endianness: byte order for ``UINT`` fields.
        covers: for ``CHECKSUM``/``LENGTH`` fields, the (offset, size) region
            the derived value is computed over; ``size == -1`` means "to the
            end of the file".
        compute: for ``CHECKSUM`` fields, the function from covered bytes to
            the integer checksum value.
        mutable: whether DIODE may place solver-chosen values here (magic
            numbers and derived fields are not mutable).
    """

    path: str
    offset: int
    size: int
    kind: FieldKind = FieldKind.UINT
    endianness: Endianness = Endianness.BIG
    covers: Optional[Tuple[int, int]] = None
    compute: Optional[Callable[[bytes], int]] = field(default=None, compare=False)
    mutable: bool = True

    def byte_range(self) -> range:
        """The byte offsets occupied by this field."""
        return range(self.offset, self.offset + self.size)

    def read(self, data: bytes) -> int:
        """Read the field's integer value from ``data`` (UINT fields only)."""
        chunk = bytes(data[self.offset : self.offset + self.size])
        if len(chunk) < self.size:
            chunk = chunk + b"\x00" * (self.size - len(chunk))
        return int.from_bytes(chunk, self.endianness.value)

    def read_bytes(self, data: bytes) -> bytes:
        """Read the field's raw bytes from ``data``."""
        return bytes(data[self.offset : self.offset + self.size])

    def encode(self, value: int) -> bytes:
        """Encode an integer value into this field's byte representation."""
        return int(value & ((1 << (8 * self.size)) - 1)).to_bytes(
            self.size, self.endianness.value
        )


@dataclass(frozen=True)
class FieldValue:
    """A field paired with its current integer value."""

    spec: FieldSpec
    value: int

    @property
    def path(self) -> str:
        return self.spec.path
