"""Command-line interface for the DIODE reproduction.

Six subcommands cover the common workflows::

    python -m repro.cli analyze dillo            # full pipeline, Table-1 style row
    python -m repro.cli table1                   # all five applications, serially
    python -m repro.cli site dillo png.c@203     # one site, with enforcement steps
    python -m repro.cli campaign --jobs 4        # whole registry, campaign engine
    python -m repro.cli campaign --backend process --jobs 4 --cache-dir .diode-cache
    python -m repro.cli campaign --corpus-dir .diode-corpus --skip-known
    python -m repro.cli campaign --trace-dir .diode-trace  # structured run trace
    python -m repro.cli campaign --progress                # live progress line
    python -m repro.cli replay --corpus-dir .diode-corpus  # regression replay
    python -m repro.cli trace --trace-dir .diode-trace     # render the trace
    python -m repro.cli events --trace-dir .diode-trace    # event-log summary
    python -m repro.cli bench-diff --baseline benchmarks/baselines/BENCH_observability.json \
        --current BENCH_observability.json                 # perf-regression gate

The CLI is a thin layer over :class:`repro.core.engine.Diode`,
:class:`repro.core.campaign.CampaignEngine` and the witness-triage
subsystem (:mod:`repro.triage`); it exists so the reproduction can be
driven without writing Python.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import __version__
from repro.apps import all_applications, application_names, get_application
from repro.core import CampaignConfig, CampaignEngine, Diode
from repro.core.report import ApplicationResult
from repro.sched import available_backends


def _format_application_result(result: ApplicationResult, as_json: bool) -> str:
    if as_json:
        payload = {
            "application": result.application,
            "analysis_seconds": round(result.analysis_seconds, 3),
            "table1": result.table1_row(),
            "sites": [
                {
                    "site": site.site.name,
                    "classification": site.classification.value,
                    "enforced_branches": (
                        site.bug_report.enforced_branches if site.bug_report else None
                    ),
                    "error_type": (
                        site.bug_report.error_type if site.bug_report else None
                    ),
                    "triggering_fields": (
                        site.bug_report.triggering_field_values if site.bug_report else None
                    ),
                }
                for site in result.site_results
            ],
        }
        return json.dumps(payload, indent=2)

    lines = [f"{result.application}: {result.total_target_sites} target sites"]
    for site in result.site_results:
        line = f"  {site.site.name:32s} {site.classification.value}"
        if site.bug_report is not None:
            line += (
                f"  enforced={site.bug_report.enforced_ratio()}"
                f"  error={site.bug_report.error_type}"
            )
        lines.append(line)
    row = result.table1_row()
    lines.append(
        "  -> exposes {diode_exposes_overflow}, unsatisfiable "
        "{target_constraint_unsatisfiable}, sanity-prevented "
        "{sanity_checks_prevent_overflow}".format(**row)
    )
    return "\n".join(lines)


def _cmd_analyze(args: argparse.Namespace) -> int:
    application = get_application(args.application)
    result = Diode().analyze(application)
    print(_format_application_result(result, args.json))
    return 0


def _print_table1(rows) -> None:
    """Print Table-1 rows plus a totals line (shared by table1/campaign)."""
    print(
        f"{'Application':20s} {'Sites':>6s} {'Exposed':>8s} "
        f"{'Unsat':>6s} {'Prevented':>10s}"
    )
    totals = {
        "total_target_sites": 0,
        "diode_exposes_overflow": 0,
        "target_constraint_unsatisfiable": 0,
        "sanity_checks_prevent_overflow": 0,
    }
    for name, row in rows:
        print(
            f"{name:20s} {row['total_target_sites']:>6d} "
            f"{row['diode_exposes_overflow']:>8d} "
            f"{row['target_constraint_unsatisfiable']:>6d} "
            f"{row['sanity_checks_prevent_overflow']:>10d}"
        )
        for key in totals:
            totals[key] += row[key]
    print(
        f"{'Total':20s} {totals['total_target_sites']:>6d} "
        f"{totals['diode_exposes_overflow']:>8d} "
        f"{totals['target_constraint_unsatisfiable']:>6d} "
        f"{totals['sanity_checks_prevent_overflow']:>10d}"
    )


def _cmd_table1(args: argparse.Namespace) -> int:
    engine = Diode()
    rows = []
    for application in all_applications():
        result = engine.analyze(application)
        rows.append((application.name, result.table1_row()))
    if args.json:
        print(json.dumps({name: row for name, row in rows}, indent=2))
        return 0
    _print_table1(rows)
    return 0


def _cmd_site(args: argparse.Namespace) -> int:
    application = get_application(args.application)
    engine = Diode()
    from repro.core.sites import identify_target_sites

    sites = identify_target_sites(application.program, application.seed_input)
    matching = [s for s in sites if s.site_tag == args.site or s.name == args.site]
    if not matching:
        names = ", ".join(s.name for s in sites)
        print(f"no target site named {args.site!r}; available: {names}", file=sys.stderr)
        return 2
    site_result = engine.analyze_site(application, matching[0])
    print(f"{application.name} / {site_result.site.name}")
    print(f"  classification: {site_result.classification.value}")
    enforcement = site_result.enforcement
    if enforcement is not None:
        print(f"  relevant branches: {enforcement.relevant_branch_count}")
        for step in enforcement.steps:
            status = "overflow" if step.triggered else "no overflow"
            enforced = (
                f"enforced branch {step.enforced_label}"
                if step.enforced_label is not None
                else "target constraint only"
            )
            print(f"    iteration {step.iteration}: {enforced} -> {status}")
    if site_result.bug_report is not None:
        report = site_result.bug_report
        print(f"  error type: {report.error_type}")
        print(f"  triggering fields: {report.triggering_field_values}")
    return 0


def _positive_int(value: str) -> int:
    """argparse type for ``--jobs``: an integer >= 1, with a clear error."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not an integer")
    if jobs < 1:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 1 (got {jobs}); use 1 for the serial schedule"
        )
    return jobs


def _store_block(metrics: Optional[dict]) -> dict:
    """The ``store`` summary of a campaign's metrics delta (lock visibility)."""
    from repro.obs.metrics import counter_value, histogram_stats

    _, lock_wait = histogram_stats(metrics or {}, "store.lock_wait_seconds")
    return {
        "loads": counter_value(metrics or {}, "store.loads"),
        "saves": counter_value(metrics or {}, "store.saves"),
        "records_loaded": counter_value(metrics or {}, "store.records_loaded"),
        "records_saved": counter_value(metrics or {}, "store.records_saved"),
        "lock_acquires": counter_value(metrics or {}, "store.lock_acquires"),
        "lock_breaks": counter_value(metrics or {}, "store.lock_breaks"),
        "lock_wait_seconds": round(lock_wait, 6),
    }


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.no_cache and args.cache_dir:
        print(
            "--cache-dir needs the solver cache; drop --no-cache to use a "
            "persistent store",
            file=sys.stderr,
        )
        return 2
    if args.skip_known and not args.corpus_dir:
        print(
            "--skip-known replays witnesses from a persistent corpus; "
            "give it one with --corpus-dir",
            file=sys.stderr,
        )
        return 2
    if args.no_events and (args.progress or args.watchdog):
        print(
            "--progress and --watchdog are driven by the event stream; "
            "drop --no-events to use them",
            file=sys.stderr,
        )
        return 2
    config = CampaignConfig(
        jobs=args.jobs,
        use_cache=not args.no_cache,
        applications=args.apps or None,
        backend=args.backend,
        cache_dir=args.cache_dir,
        save_cache=not args.no_save_cache,
        corpus_dir=args.corpus_dir,
        save_corpus=not args.no_save_corpus,
        minimize_witnesses=not args.no_minimize,
        skip_known=args.skip_known,
        trace_dir=args.trace_dir,
        events=not args.no_events,
        watchdog=args.watchdog,
        progress=args.progress,
    )
    if args.no_incremental:
        config.diode.solver.enable_sessions = False
        config.diode.solver.enable_decomposition = False
    if args.no_core_guidance:
        config.diode.solver.enable_unsat_cores = False
    if args.no_cnf_skeletons:
        config.diode.solver.enable_cnf_skeletons = False
    if args.external_sat:
        config.diode.solver.enable_external_sat = True
        config.diode.solver.external_sat_shadow = args.external_sat_shadow
    result = CampaignEngine(config).run()

    if args.json:
        payload = {
            "version": __version__,
            "backend": result.backend,
            "jobs": result.jobs,
            "incremental": not args.no_incremental,
            "core_guidance": not args.no_core_guidance,
            "cnf_skeletons": not args.no_cnf_skeletons,
            "external_sat": bool(args.external_sat),
            "cache_enabled": result.cache_enabled,
            "unit_count": result.unit_count,
            "wall_seconds": round(result.wall_seconds, 3),
            "cache_stats": (
                result.cache_stats.as_dict() if result.cache_stats else None
            ),
            "solver": result.solver_telemetry,
            "metrics": result.metrics,
            "events": result.events,
            "store": _store_block(result.metrics),
            "trace_dir": args.trace_dir,
            "cache_store": (
                {
                    "dir": args.cache_dir,
                    "loaded": result.cache_loaded,
                    "saved": result.cache_saved,
                }
                if args.cache_dir
                else None
            ),
            "triage": (
                result.triage_stats.as_dict() if result.triage_stats else None
            ),
            "corpus": (
                {
                    "dir": args.corpus_dir,
                    "loaded": result.corpus_loaded,
                    # null = not written back (--no-save-corpus), as opposed
                    # to an actually-empty corpus.
                    "saved": (
                        None if args.no_save_corpus else result.corpus_saved
                    ),
                    "skipped_known": result.skipped_known,
                }
                if args.corpus_dir
                else None
            ),
            "table1": {
                app.application: app.table1_row()
                for app in result.application_results
            },
            "table1_totals": result.table1_totals(),
            "table2": [
                {
                    "application": report.application,
                    "target": report.target,
                    "cve": report.cve,
                    "error_type": report.error_type,
                    "enforced": report.enforced_ratio(),
                }
                for report in result.bug_reports()
            ],
            "classifications": result.classifications(),
        }
        print(json.dumps(payload, indent=2))
        return 0

    _print_table1(
        [(app.application, app.table1_row()) for app in result.application_results]
    )

    reports = result.bug_reports()
    if reports:
        print(f"\n{'Application':20s} {'Target':28s} {'CVE':16s} {'Error':20s} {'Enforced':>8s}")
        for report in reports:
            print(
                f"{report.application:20s} {report.target:28s} "
                f"{report.cve:16s} {report.error_type:20s} "
                f"{report.enforced_ratio():>8s}"
            )

    line = (
        f"\n{result.unit_count} sites analyzed in {result.wall_seconds:.2f}s "
        f"with {result.jobs} worker(s) on the {result.backend} backend"
    )
    if result.cache_stats is not None:
        stats = result.cache_stats
        line += (
            f"; solver cache: {stats.hits} hits / {stats.lookups} lookups "
            f"({stats.hit_rate():.0%})"
        )
    else:
        line += "; solver cache: disabled"
    print(line)
    if result.solver_telemetry is not None:
        telemetry = result.solver_telemetry
        print(
            "solver sessions: "
            f"{int(telemetry.get('session_checks', 0))} checks, "
            f"{int(telemetry.get('sessions_reused', 0))} reused across "
            "observations; unsat cores: "
            f"{int(telemetry.get('cores_extracted', 0))} accumulated, "
            f"{int(telemetry.get('core_pruned_candidates', 0))} candidate "
            "queries pruned"
        )
    if args.cache_dir:
        print(
            f"cache store {args.cache_dir}: warm-started {result.cache_loaded} "
            f"entries, saved {result.cache_saved}"
        )
    store = _store_block(result.metrics)
    if store["lock_acquires"]:
        print(
            f"store locks: {store['lock_acquires']} acquired "
            f"({store['lock_wait_seconds']:.3f}s total wait), "
            f"{store['lock_breaks']} stale broken"
        )
    if result.events is not None:
        from repro.obs.events import event_count

        event_counts = result.events.get("events") or {}
        print(
            f"event stream: {sum(event_counts.values())} events "
            f"({event_count(result.events, 'unit.finished')} units finished, "
            f"{event_count(result.events, 'unit.failed')} failed, "
            f"{event_count(result.events, 'unit.straggler')} stragglers)"
        )
    if args.trace_dir:
        print(
            f"trace written to {args.trace_dir} "
            f"(render with: python -m repro.cli trace --trace-dir {args.trace_dir})"
        )
    if result.triage_stats is not None:
        stats = result.triage_stats
        print(
            f"witness triage: {stats.distinct} distinct / {stats.raw_reports} "
            f"reports ({stats.dedup_ratio():.2f}x dedup), "
            f"{stats.minimized} minimized "
            f"({stats.shrink_ratio():.0%} of triggering fields dropped)"
        )
    if args.corpus_dir:
        line = (
            f"witness corpus {args.corpus_dir}: warm-started "
            f"{result.corpus_loaded} witnesses, "
        )
        if args.no_save_corpus:
            line += "not saved back (--no-save-corpus)"
        else:
            line += f"now holds {result.corpus_saved}"
        if args.skip_known:
            line += f"; {result.skipped_known} site(s) answered by replay"
        print(line)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.apps.registry import build_applications
    from repro.triage.corpus import CorpusStore
    from repro.triage.engine import replay_corpus

    store = CorpusStore(args.corpus_dir)
    records = store.load()
    if not records:
        print(
            f"no witness corpus under {args.corpus_dir!r} (missing, empty, or "
            "written by an incompatible version)",
            file=sys.stderr,
        )
        return 2

    applications = build_applications(args.apps or None)
    report = replay_corpus(records, applications, mark_missing=args.apps is None)
    if not args.no_save:
        store.save(records, merge=False)

    if args.json:
        payload = {
            "version": __version__,
            "corpus_dir": args.corpus_dir,
            "records": len(records),
            "replayed": len(report.entries),
            "wall_seconds": round(report.wall_seconds, 3),
            "counts": report.counts(),
            "entries": [
                {
                    "signature": entry.signature,
                    "application": entry.application,
                    "site": entry.site_name,
                    "status": entry.status,
                    "requested_size": entry.requested_size,
                    "error_type": entry.error_type,
                }
                for entry in report.entries
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"{'Signature':26s} {'Application':20s} {'Site':28s} Status")
        for entry in report.entries:
            print(
                f"{entry.signature:26s} {entry.application:20s} "
                f"{entry.site_name:28s} {entry.status}"
            )
        counts = report.counts()
        summary = ", ".join(
            f"{count} {status}" for status, count in sorted(counts.items())
        )
        print(
            f"\n{len(report.entries)} witness(es) replayed in "
            f"{report.wall_seconds:.2f}s: {summary}"
        )
    return 1 if args.strict and report.regressions else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.report import (
        chrome_trace_events,
        load_trace_dir,
        stage_summaries,
        unit_summaries,
    )

    data = load_trace_dir(args.trace_dir)
    if data.error:
        print(data.error, file=sys.stderr)
        return 2
    if not data.records:
        print(
            f"no trace records under {args.trace_dir!r} (the campaign wrote "
            "nothing, or every record was invalid)",
            file=sys.stderr,
        )
        return 2
    stages = stage_summaries(data)
    units = unit_summaries(data)

    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(chrome_trace_events(data), handle)

    if args.json:
        payload = {
            "version": __version__,
            "trace_dir": data.trace_dir,
            "files": data.files,
            "records": len(data.records),
            "invalid_records": data.invalid_records,
            "spans": len(data.spans),
            "events": len(data.events),
            "units": len(units),
            "stages": [stage.as_dict() for stage in stages],
            "stragglers": [unit.as_dict() for unit in units[: args.top]],
            "chrome": args.chrome,
        }
        print(json.dumps(payload, indent=2))
        return 0

    line = (
        f"trace {data.trace_dir}: {len(data.records)} records "
        f"({len(data.spans)} spans, {len(data.events)} events) "
        f"from {data.files} file(s)"
    )
    if data.invalid_records:
        line += f"; {data.invalid_records} invalid record(s) skipped"
    print(line)

    if stages:
        print(
            f"\n{'Stage':24s} {'Count':>7s} {'Total':>9s} {'Mean':>9s} "
            f"{'Max':>9s} {'Props':>9s}"
        )
        for stage in stages:
            print(
                f"{stage.name:24s} {stage.count:>7d} "
                f"{stage.total_seconds:>8.3f}s {stage.mean_seconds():>8.4f}s "
                f"{stage.max_seconds:>8.4f}s {stage.propagations:>9d}"
            )

    stragglers = units[: args.top]
    if stragglers:
        print(f"\nslowest {len(stragglers)} of {len(units)} unit(s):")
        for unit in stragglers:
            breakdown = ", ".join(
                f"{name} {seconds:.3f}s"
                for name, seconds in sorted(
                    unit.stages.items(), key=lambda item: -item[1]
                )
            )
            print(
                f"  {unit.application:20s} {unit.site:28s} "
                f"{unit.duration_seconds:>8.3f}s [{unit.backend}]"
                + (f"  ({breakdown})" if breakdown else "")
            )

    if args.chrome:
        print(
            f"\nChrome trace written to {args.chrome} "
            "(open in chrome://tracing or https://ui.perfetto.dev)"
        )
    return 0


def _format_event_line(record: dict) -> str:
    import datetime

    stamp = datetime.datetime.fromtimestamp(
        float(record.get("wall", 0.0))
    ).strftime("%H:%M:%S.%f")[:-3]
    attrs = record.get("attrs") or {}
    subject = ""
    if "application" in attrs and "site" in attrs:
        subject = f" {attrs['application']}::{attrs['site']}"
    extras = " ".join(
        f"{key}={value}"
        for key, value in sorted(attrs.items())
        if key not in ("application", "site")
    )
    line = f"{stamp} [{record.get('pid')}] {record.get('name')}{subject}"
    return f"{line}  {extras}" if extras else line


def _cmd_events(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs.report import event_summaries, load_events_dir

    if args.follow:
        # Tail mode: poll the directory and print records not yet seen,
        # until --duration expires (or forever without one).  Records are
        # unique by (pid, seq) — each process numbers its own.
        deadline = (
            None if args.duration is None else _time.monotonic() + args.duration
        )
        seen: set = set()
        printed_error = False
        while True:
            data = load_events_dir(args.trace_dir)
            if data.error:
                # The campaign may not have created the directory yet;
                # keep waiting inside the duration window.
                if deadline is None and not printed_error:
                    print(f"waiting: {data.error}", file=sys.stderr)
                    printed_error = True
            else:
                for record in data.records:
                    key = (record.get("pid"), record.get("seq"))
                    if key in seen:
                        continue
                    seen.add(key)
                    print(_format_event_line(record))
            if deadline is not None and _time.monotonic() >= deadline:
                return 0
            _time.sleep(args.poll)

    data = load_events_dir(args.trace_dir)
    if data.error:
        print(data.error, file=sys.stderr)
        return 2
    if not data.records:
        print(
            f"no event records under {args.trace_dir!r} (campaign ran with "
            "--no-events, wrote nothing, or every record was invalid)",
            file=sys.stderr,
        )
        return 2
    summaries = event_summaries(data)

    if args.json:
        payload = {
            "version": __version__,
            "trace_dir": data.trace_dir,
            "files": data.files,
            "records": len(data.records),
            "invalid_records": data.invalid_records,
            "events": [summary.as_dict() for summary in summaries],
            "counts": {summary.name: summary.count for summary in summaries},
        }
        print(json.dumps(payload, indent=2))
        return 0

    if args.tail:
        for record in data.records[-args.tail :]:
            print(_format_event_line(record))
        return 0

    line = (
        f"events {data.trace_dir}: {len(data.records)} records "
        f"from {data.files} file(s)"
    )
    if data.invalid_records:
        line += f"; {data.invalid_records} invalid record(s) skipped"
    print(line)
    print(f"\n{'Event':20s} {'Count':>7s} {'Span':>9s}")
    for summary in summaries:
        span = summary.last_wall - summary.first_wall
        print(f"{summary.name:20s} {summary.count:>7d} {span:>8.3f}s")
    counts = {summary.name: summary.count for summary in summaries}
    print(
        f"\n{counts.get('unit.finished', 0)} unit(s) finished, "
        f"{counts.get('unit.failed', 0)} failed, "
        f"{counts.get('unit.straggler', 0)} straggler(s), "
        f"{counts.get('worker.up', 0)} worker(s)"
    )
    return 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from repro.obs.benchhist import (
        DEFAULT_THRESHOLDS,
        compare_runs,
        load_history,
    )

    def load_payload(path: str) -> Optional[dict]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read benchmark payload {path!r}: {exc}", file=sys.stderr)
            return None
        if not isinstance(payload, dict):
            print(f"benchmark payload {path!r} is not a JSON object", file=sys.stderr)
            return None
        return payload

    if bool(args.current) == bool(args.history):
        print(
            "give exactly one of --current FILE (an artifact) or "
            "--history FILE (newest matching record wins)",
            file=sys.stderr,
        )
        return 2
    baseline = load_payload(args.baseline)
    if baseline is None:
        return 2
    if args.current:
        current = load_payload(args.current)
        if current is None:
            return 2
    else:
        records = load_history(args.history, benchmark=args.benchmark)
        if not records:
            wanted = f" for benchmark {args.benchmark!r}" if args.benchmark else ""
            print(
                f"no readable history records{wanted} in {args.history!r}",
                file=sys.stderr,
            )
            return 2
        current = records[-1].get("payload") or {}
    if baseline.get("benchmark") != current.get("benchmark"):
        print(
            f"benchmark mismatch: baseline is {baseline.get('benchmark')!r}, "
            f"current is {current.get('benchmark')!r}",
            file=sys.stderr,
        )
        return 2

    benchmark = str(baseline.get("benchmark"))
    thresholds = DEFAULT_THRESHOLDS.get(benchmark, {})
    regressions = compare_runs(baseline, current, thresholds)

    if args.json:
        payload = {
            "version": __version__,
            "benchmark": benchmark,
            "baseline": args.baseline,
            "baseline_version": baseline.get("version"),
            "current_version": current.get("version"),
            "watched_metrics": sorted(thresholds),
            "regressions": [
                {
                    "metric": regression.metric,
                    "baseline": regression.baseline,
                    "current": regression.current,
                    "worst_acceptable": regression.threshold.worst_acceptable(
                        regression.baseline
                    ),
                }
                for regression in regressions
            ],
            "ok": not regressions,
        }
        print(json.dumps(payload, indent=2))
        return 1 if regressions else 0

    print(
        f"bench-diff [{benchmark}]: baseline v{baseline.get('version')} "
        f"vs current v{current.get('version')}, "
        f"{len(thresholds)} watched metric(s)"
    )
    from repro.obs.benchhist import metric_value

    for metric in sorted(thresholds):
        base = metric_value(baseline, metric)
        cur = metric_value(current, metric)
        if base is None or cur is None:
            print(f"  {metric:28s} (absent on one side, skipped)")
            continue
        verdict = (
            "REGRESSION"
            if any(r.metric == metric for r in regressions)
            else "ok"
        )
        print(f"  {metric:28s} {base:>10.4g} -> {cur:>10.4g}  {verdict}")
    if regressions:
        for regression in regressions:
            print(f"FAIL: {regression.describe()}")
        return 1
    print("OK: no regressions")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="DIODE reproduction: targeted integer overflow discovery.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="analyze one application model")
    analyze.add_argument("application", choices=application_names())
    analyze.add_argument("--json", action="store_true", help="emit JSON")
    analyze.set_defaults(func=_cmd_analyze)

    table1 = subparsers.add_parser("table1", help="reproduce Table 1 for all applications")
    table1.add_argument("--json", action="store_true", help="emit JSON")
    table1.set_defaults(func=_cmd_table1)

    site = subparsers.add_parser("site", help="analyze a single target site")
    site.add_argument("application", choices=application_names())
    site.add_argument("site", help="site tag, e.g. png.c@203")
    site.set_defaults(func=_cmd_site)

    campaign = subparsers.add_parser(
        "campaign",
        help="run the whole registry through the parallel campaign engine",
    )
    campaign.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "workers for the chosen backend, >= 1 (default: one per CPU; "
            "1 degrades the thread backend to the serial schedule)"
        ),
    )
    campaign.add_argument(
        "--backend",
        choices=available_backends(),
        default="thread",
        help=(
            "execution backend: serial (reference schedule), thread "
            "(shared-cache work queue), process (CPU parallelism; "
            "default: thread)"
        ),
    )
    campaign.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the shared solver-result cache and simplify memo",
    )
    campaign.add_argument(
        "--no-incremental",
        action="store_true",
        help=(
            "disable incremental solver sessions and query decomposition "
            "(the fresh-query reference path; classification parity with "
            "the incremental default is enforced by the test and benchmark "
            "gates)"
        ),
    )
    campaign.add_argument(
        "--no-core-guidance",
        action="store_true",
        help=(
            "disable UNSAT-core branch guidance in the enforcement loop "
            "(cores prune candidate queries subsumed by an already-proved "
            "infeasible subset; classifications are identical either way — "
            "enforced by benchmarks/bench_enforcement.py)"
        ),
    )
    campaign.add_argument(
        "--no-cnf-skeletons",
        action="store_true",
        help=(
            "disable reuse of persisted blasted-CNF skeletons (the warm "
            "bitblast path; a stored skeleton rebuilds the exact CNF a "
            "fresh Tseitin translation would produce, so classifications "
            "are identical either way)"
        ),
    )
    campaign.add_argument(
        "--external-sat",
        action=argparse.BooleanOptionalAction,
        default=False,
        help=(
            "route one-shot complete solves to a native PySAT solver when "
            "the optional python-sat package is importable (--no-external-sat "
            "is the explicit ablation arm and the default; the knob is "
            "fingerprinted, so stores never mix external and pure verdicts)"
        ),
    )
    campaign.add_argument(
        "--external-sat-shadow",
        action="store_true",
        help=(
            "with --external-sat: re-solve every external query on the pure "
            "CDCL core and fail loudly on a SAT/UNSAT disagreement (the "
            "parity harness CI runs; roughly doubles complete-solve cost)"
        ),
    )
    campaign.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "persistent solver-cache store: warm-start from DIR before the "
            "run and save back after (created on first use)"
        ),
    )
    campaign.add_argument(
        "--no-save-cache",
        action="store_true",
        help="with --cache-dir: load the store but do not write it back",
    )
    campaign.add_argument(
        "--corpus-dir",
        metavar="DIR",
        default=None,
        help=(
            "persistent witness corpus: load known overflows from DIR before "
            "the run and merge this run's deduplicated, minimized witnesses "
            "back after (created on first use)"
        ),
    )
    campaign.add_argument(
        "--no-save-corpus",
        action="store_true",
        help="with --corpus-dir: load the corpus but do not write it back",
    )
    campaign.add_argument(
        "--no-minimize",
        action="store_true",
        help="store witnesses as discovered instead of ddmin-minimizing them",
    )
    campaign.add_argument(
        "--skip-known",
        action="store_true",
        help=(
            "replay a fresh corpus witness per site (one concrete run) "
            "instead of re-deriving it through enforcement; requires "
            "--corpus-dir, and falls back to full analysis for witnesses "
            "that no longer replay"
        ),
    )
    campaign.add_argument(
        "--apps",
        nargs="+",
        choices=application_names(),
        metavar="APP",
        help="restrict the campaign to these applications",
    )
    campaign.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help=(
            "write a structured trace of the run to DIR (meta.json plus one "
            "spans-<pid>.jsonl per process, including process-backend "
            "workers); render afterwards with the trace subcommand"
        ),
    )
    campaign.add_argument(
        "--no-events",
        action="store_true",
        help=(
            "disable the live event stream (unit lifecycle, heartbeats, "
            "cache hit/miss, worker up/down; the ablation arm — "
            "classifications are identical either way)"
        ),
    )
    campaign.add_argument(
        "--progress",
        action="store_true",
        help=(
            "render a live done/in-flight/stragglers/ETA line on stderr, "
            "driven by the event stream (works with every backend, "
            "including process-pool workers)"
        ),
    )
    campaign.add_argument(
        "--watchdog",
        action="store_true",
        help=(
            "flag in-flight units exceeding a quantile-based deadline "
            "derived from this run's own stage.unit.seconds distribution "
            "(unit.straggler event + campaign.stragglers counter + warning "
            "line; detection only — flagged units run to completion)"
        ),
    )
    campaign.add_argument("--json", action="store_true", help="emit JSON")
    campaign.set_defaults(func=_cmd_campaign)

    replay = subparsers.add_parser(
        "replay",
        help=(
            "re-validate every witness in a persistent corpus against the "
            "current application registry"
        ),
    )
    replay.add_argument(
        "--corpus-dir",
        metavar="DIR",
        required=True,
        help="the witness corpus to replay",
    )
    replay.add_argument(
        "--apps",
        nargs="+",
        choices=application_names(),
        metavar="APP",
        help="replay only witnesses for these applications",
    )
    replay.add_argument(
        "--no-save",
        action="store_true",
        help="do not write replay statuses back to the corpus",
    )
    replay.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any witness no longer triggers (for CI gates)",
    )
    replay.add_argument("--json", action="store_true", help="emit JSON")
    replay.set_defaults(func=_cmd_replay)

    trace = subparsers.add_parser(
        "trace",
        help=(
            "render a campaign trace directory: per-stage summary, "
            "straggler top-N, optional Chrome trace-event export"
        ),
    )
    trace.add_argument(
        "--trace-dir",
        metavar="DIR",
        required=True,
        help="the trace directory a campaign wrote with --trace-dir",
    )
    trace.add_argument(
        "--top",
        type=_positive_int,
        default=5,
        metavar="N",
        help="how many straggler units to list (default: 5)",
    )
    trace.add_argument(
        "--chrome",
        metavar="FILE",
        default=None,
        help=(
            "also export the trace as Chrome trace-event JSON to FILE "
            "(chrome://tracing / Perfetto compatible)"
        ),
    )
    trace.add_argument("--json", action="store_true", help="emit JSON")
    trace.set_defaults(func=_cmd_trace)

    events = subparsers.add_parser(
        "events",
        help=(
            "summarize or tail a campaign's event log (the events-*.jsonl "
            "files written beside the spans under --trace-dir)"
        ),
    )
    events.add_argument(
        "--trace-dir",
        metavar="DIR",
        required=True,
        help="the trace directory a campaign wrote with --trace-dir",
    )
    events.add_argument(
        "--tail",
        type=_positive_int,
        default=None,
        metavar="N",
        help="print the last N event records instead of the summary",
    )
    events.add_argument(
        "--follow",
        action="store_true",
        help=(
            "stream new event records as they are written (poll loop; "
            "bound it with --duration for scripted use)"
        ),
    )
    events.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --follow: stop after this many seconds",
    )
    events.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="with --follow: poll interval (default: 0.5)",
    )
    events.add_argument("--json", action="store_true", help="emit JSON")
    events.set_defaults(func=_cmd_events)

    bench_diff = subparsers.add_parser(
        "bench-diff",
        help=(
            "compare a benchmark artifact against a committed baseline "
            "with per-metric thresholds; exit 1 on regression (the CI "
            "perf gate)"
        ),
    )
    bench_diff.add_argument(
        "--baseline",
        metavar="FILE",
        required=True,
        help="the committed baseline artifact (BENCH_*.json)",
    )
    bench_diff.add_argument(
        "--current",
        metavar="FILE",
        default=None,
        help="the artifact from the run under test",
    )
    bench_diff.add_argument(
        "--history",
        metavar="FILE",
        default=None,
        help=(
            "a BENCH_history.jsonl file; the newest record (optionally "
            "filtered by --benchmark) is the run under test"
        ),
    )
    bench_diff.add_argument(
        "--benchmark",
        metavar="NAME",
        default=None,
        help="with --history: compare the newest record of this benchmark",
    )
    bench_diff.add_argument("--json", action="store_true", help="emit JSON")
    bench_diff.set_defaults(func=_cmd_bench_diff)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
