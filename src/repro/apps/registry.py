"""Registry of the five benchmark application models."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.apps.appbase import Application
from repro.apps.cwebp import build_cwebp_application
from repro.apps.dillo import build_dillo_application
from repro.apps.imagemagick import build_imagemagick_application
from repro.apps.swfplay import build_swfplay_application
from repro.apps.vlc import build_vlc_application

_BUILDERS: Dict[str, Callable[[], Application]] = {
    "dillo": build_dillo_application,
    "vlc": build_vlc_application,
    "swfplay": build_swfplay_application,
    "cwebp": build_cwebp_application,
    "imagemagick": build_imagemagick_application,
}


def application_names() -> List[str]:
    """Short names of the available application models."""
    return list(_BUILDERS)


def get_application(name: str) -> Application:
    """Build one application model by its short name (case-insensitive)."""
    key = name.lower()
    if key not in _BUILDERS:
        raise KeyError(
            f"unknown application {name!r}; available: {', '.join(_BUILDERS)}"
        )
    return _BUILDERS[key]()


def all_applications() -> List[Application]:
    """Build all five benchmark application models."""
    return [builder() for builder in _BUILDERS.values()]


def build_applications(names: Optional[Iterable[str]] = None) -> List[Application]:
    """Build the named application models (the whole registry by default).

    Order follows the registry (for ``None``) or the caller's ``names``;
    the campaign engine relies on this order being deterministic.
    """
    if names is None:
        return all_applications()
    return [get_application(name) for name in names]
