"""The Application bundle: program model + input format + seed + expectations.

An :class:`Application` is the unit the DIODE engine analyses.  Besides the
program and seed it carries *expectations*: the paper's ground truth for each
target site (classification, enforced-branch range, CVE number), which the
test suite and the benchmark harnesses check the reproduction against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.formats.spec import FormatSpec
from repro.lang.program import Program


@dataclass(frozen=True)
class SiteExpectation:
    """Paper-reported ground truth for one target site.

    Attributes:
        tag: the site's ``@ "tag"`` annotation (e.g. ``png.c@203``).
        classification: one of ``exposed``, ``unsatisfiable``, ``prevented``.
        enforced_branches: the paper's enforced-branch count for exposed
            sites (``None`` for the others).  The reproduction asserts a
            range around it, not equality — solver choices legitimately shift
            the exact count by one or two.
        cve: CVE identifier when the overflow was previously known.
        target_only_bimodal_high: whether the paper reports the
            target-constraint-alone success rate as high (≥ 3/4 of samples
            trigger) rather than low.
    """

    tag: str
    classification: str
    enforced_branches: Optional[int] = None
    cve: str = "New"
    target_only_bimodal_high: Optional[bool] = None


@dataclass
class Application:
    """One benchmark application model."""

    name: str
    program: Program
    format_spec: FormatSpec
    seed_input: bytes
    expectations: List[SiteExpectation] = field(default_factory=list)
    description: str = ""

    # ------------------------------------------------------------------
    @property
    def known_cves(self) -> Dict[str, str]:
        """Map site tag → CVE number for previously-known overflows."""
        return {
            e.tag: e.cve
            for e in self.expectations
            if e.cve != "New"
        }

    def expectation_for(self, tag: str) -> Optional[SiteExpectation]:
        """The expectation record for a site tag, if any."""
        for expectation in self.expectations:
            if expectation.tag == tag:
                return expectation
        return None

    def expected_counts(self) -> Dict[str, int]:
        """Expected Table 1 row: counts per classification."""
        counts = {"exposed": 0, "unsatisfiable": 0, "prevented": 0}
        for expectation in self.expectations:
            counts[expectation.classification] += 1
        return counts

    def expected_total_sites(self) -> int:
        """Expected number of exercised target sites."""
        return len(self.expectations)

    def __repr__(self) -> str:
        return (
            f"Application({self.name!r}, sites={self.expected_total_sites()}, "
            f"seed={len(self.seed_input)} bytes)"
        )
