"""Model of VLC 0.8.6h's WAV demux / decode path.

Table 2 reports four VLC overflows, all of which DIODE exposes:

* ``wav.c@147`` (CVE-2008-2430) — the extra-data allocation ``x + 2`` whose
  target constraint has exactly two solutions; no relevant sanity checks, so
  no branches need to be enforced.
* ``block.c@54`` — the frame block allocation driven by frame count and
  frame size; again no relevant sanity checks.
* ``messages.c@355`` — the message-buffer allocation; two relevant sanity
  checks (a name-length limit and a frame-count limit) must be enforced.
* ``dec.c@277`` — the decoder output buffer; several relevant checks on
  channels, bits per sample and frame size (including one overflow check
  that is itself computed in wrapping arithmetic and is therefore
  ineffective, the behaviour the paper calls out for VLC) must be enforced.

All four target constraints are satisfiable and all four sites are exposed,
matching Table 1's VLC row (4 / 4 / 0 / 0).
"""

from __future__ import annotations

from repro.apps.appbase import Application, SiteExpectation
from repro.formats.wav import (
    BITS_PER_SAMPLE_OFFSET,
    BLOCK_ALIGN_OFFSET,
    CHANNELS_OFFSET,
    DATA_SIZE_OFFSET,
    ES_NAME_LENGTH_OFFSET,
    EXTRA_SIZE_OFFSET,
    FRAME_COUNT_OFFSET,
    FRAME_SIZE_OFFSET,
    SAMPLE_RATE_OFFSET,
    WavFormat,
    build_wav_seed,
)
from repro.lang.program import Program

VLC_SOURCE = f"""
# VLC 0.8.6h WAV demux + decode model.
const CHANNELS_OFFSET        = {CHANNELS_OFFSET};
const SAMPLE_RATE_OFFSET     = {SAMPLE_RATE_OFFSET};
const BITS_PER_SAMPLE_OFFSET = {BITS_PER_SAMPLE_OFFSET};
const BLOCK_ALIGN_OFFSET     = {BLOCK_ALIGN_OFFSET};
const EXTRA_SIZE_OFFSET      = {EXTRA_SIZE_OFFSET};
const DATA_SIZE_OFFSET       = {DATA_SIZE_OFFSET};
const FRAME_COUNT_OFFSET     = {FRAME_COUNT_OFFSET};
const FRAME_SIZE_OFFSET      = {FRAME_SIZE_OFFSET};
const ES_NAME_LENGTH_OFFSET  = {ES_NAME_LENGTH_OFFSET};

const MAX_CHANNELS      = 32;
const MAX_BITS          = 32;
const MAX_FRAME_SIZE    = 0x0FFFFFFF;
const MAX_NAME_LENGTH   = 65535;
const MAX_FRAME_COUNT   = 0x0FFFFFFF;
const MAX_DECODER_BYTES = 0x7FFFFFFF;

proc read_le16(offset) {{
  value = input(offset) | (input(offset + 1) << 8);
  return value;
}}

proc read_le32(offset) {{
  value = input(offset) | (input(offset + 1) << 8)
        | (input(offset + 2) << 16) | (input(offset + 3) << 24);
  return value;
}}

proc main() {{
  channels        = read_le16(CHANNELS_OFFSET);
  sample_rate     = read_le32(SAMPLE_RATE_OFFSET);
  bits_per_sample = read_le16(BITS_PER_SAMPLE_OFFSET);
  block_align     = read_le16(BLOCK_ALIGN_OFFSET);
  extra_size      = read_le32(EXTRA_SIZE_OFFSET);
  data_size       = read_le32(DATA_SIZE_OFFSET);
  frame_count     = read_le32(FRAME_COUNT_OFFSET);
  frame_size      = read_le32(FRAME_SIZE_OFFSET);
  es_name_length  = read_le32(ES_NAME_LENGTH_OFFSET);

  # ---- wav.c@147 (CVE-2008-2430): extra data allocation, x + 2. --------
  # No sanity check guards extra_size; only two values of the field make
  # the addition wrap.
  extra_data = alloc(extra_size + 2) @ "wav.c@147";
  extra_data[extra_size + 1] = 0;
  extra_tail = extra_data[extra_size];

  # ---- block.c@54: frame block allocation, no relevant checks. ---------
  frame_block = alloc(frame_size * frame_count + 16) @ "block.c@54";
  block_probe = frame_block[(frame_count - 1) * frame_size];

  # ---- messages.c@355: message buffer, guarded by two sanity checks. ---
  if (es_name_length > MAX_NAME_LENGTH) {{
    halt "es name too long";
  }}
  if (frame_count > MAX_FRAME_COUNT) {{
    halt "frame count too large";
  }}
  message_buf = alloc(frame_count * 24 + es_name_length) @ "messages.c@355";
  message_buf[frame_count * 24 + es_name_length - 1] = 10;
  message_probe = message_buf[frame_count * 24];

  # ---- dec.c@277: decoder output buffer, several sanity checks. --------
  if (channels > MAX_CHANNELS) {{
    halt "too many channels";
  }}
  if (channels == 0) {{
    halt "no channels";
  }}
  if (bits_per_sample > MAX_BITS) {{
    halt "unsupported bits per sample";
  }}
  if (bits_per_sample == 0) {{
    halt "missing bits per sample";
  }}
  if (frame_size > MAX_FRAME_SIZE) {{
    halt "frame too large";
  }}
  bytes_per_sample = bits_per_sample >> 3;
  # Ineffective overflow check: the product is computed in wrapping 32-bit
  # arithmetic, so it can wrap below the limit (the VLC behaviour the paper
  # describes: "ineffective overflow sanity checks").
  if (frame_size * channels > MAX_DECODER_BYTES) {{
    halt "decoder buffer too large";
  }}
  decoder_buf = alloc(frame_size * channels * bytes_per_sample) @ "dec.c@277";
  decoder_buf[frame_size * channels * bytes_per_sample - 4] = 1;
  decoder_probe = decoder_buf[(frame_size - 1) * channels];

  # Per-sample interleave loop: its trip count depends on channels and bytes
  # per sample, so it acts as a blocking check for dec.c@277 — an input
  # forced to follow the whole seed path cannot change the sample stride.
  s = 0;
  while (s < channels * bytes_per_sample && s < 64) {{
    decoder_buf[s] = 0;
    s = s + 1;
  }}

  # Decode a bounded number of frames into the block.
  frames_to_copy = frame_count;
  if (frames_to_copy > 4) {{
    frames_to_copy = 4;
  }}
  k = 0;
  while (k < frames_to_copy) {{
    frame_block[k * frame_size] = 7;
    k = k + 1;
  }}
}}
"""


def build_vlc_application() -> Application:
    """Build the VLC 0.8.6h application model with its WAV seed input."""
    program = Program.from_source(VLC_SOURCE, name="vlc-0.8.6h")
    seed = build_wav_seed(
        channels=2,
        sample_rate=44100,
        bits_per_sample=16,
        extra_size=8,
        frame_count=4,
        frame_size=64,
        es_name_length=12,
    )
    expectations = [
        SiteExpectation("wav.c@147", "exposed", enforced_branches=0,
                        cve="CVE-2008-2430", target_only_bimodal_high=True),
        SiteExpectation("block.c@54", "exposed", enforced_branches=0,
                        target_only_bimodal_high=True),
        SiteExpectation("messages.c@355", "exposed", enforced_branches=2,
                        target_only_bimodal_high=False),
        SiteExpectation("dec.c@277", "exposed", enforced_branches=5,
                        target_only_bimodal_high=False),
    ]
    return Application(
        name="VLC 0.8.6h",
        program=program,
        format_spec=WavFormat,
        seed_input=seed,
        expectations=expectations,
        description="Media player; WAV demux and audio decode path.",
    )
