"""Benchmark application models.

Each module models the input-parsing and allocation structure of one of the
paper's five benchmark applications — Dillo 2.1, VLC 0.8.6h, SwfPlay 0.5.5,
CWebP 0.3.1 and ImageMagick 6.5.2 — in the core-language DSL, together with
its input format and a seed input the model processes cleanly.  The models
reproduce the paper's target-site structure: the same number of exercised
allocation sites per application, the same split between overflow-exposed /
target-constraint-unsatisfiable / sanity-check-protected sites, and the same
kind of sanity and blocking checks along the path to each exposed site.
"""

from repro.apps.appbase import Application, SiteExpectation
from repro.apps.registry import (
    all_applications,
    application_names,
    build_applications,
    get_application,
)
from repro.apps.dillo import build_dillo_application
from repro.apps.vlc import build_vlc_application
from repro.apps.swfplay import build_swfplay_application
from repro.apps.cwebp import build_cwebp_application
from repro.apps.imagemagick import build_imagemagick_application

__all__ = [
    "Application",
    "SiteExpectation",
    "all_applications",
    "build_applications",
    "get_application",
    "application_names",
    "build_dillo_application",
    "build_vlc_application",
    "build_swfplay_application",
    "build_cwebp_application",
    "build_imagemagick_application",
]
