"""Model of SwfPlay 0.5.5 (swfdec) and its embedded JPEG decoder.

Table 2 reports three SwfPlay overflows — two in ``jpeg_rgb_decoder.c`` and
one in ``jpeg.c`` — all discovered without enforcing any conditional branch:
the JPEG tag handler performs no sanity checks on the image dimensions
before sizing its RGB buffers.  The remaining five exercised allocation
sites have unsatisfiable target constraints: their sizes are derived from
16-bit or masked quantities that cannot push the arithmetic past 32 bits
(Table 1's SwfPlay row: 8 sites, 3 exposed, 5 unsatisfiable, 0 protected).
"""

from __future__ import annotations

from repro.apps.appbase import Application, SiteExpectation
from repro.formats.swf import (
    JPEG_COMPONENTS_OFFSET,
    JPEG_HEIGHT_OFFSET,
    JPEG_WIDTH_OFFSET,
    STAGE_HEIGHT_OFFSET,
    STAGE_WIDTH_OFFSET,
    SwfFormat,
    build_swf_seed,
)
from repro.lang.program import Program

SWFPLAY_SOURCE = f"""
# SwfPlay 0.5.5 (swfdec) DefineBitsJPEG model.
const STAGE_WIDTH_OFFSET     = {STAGE_WIDTH_OFFSET};
const STAGE_HEIGHT_OFFSET    = {STAGE_HEIGHT_OFFSET};
const JPEG_WIDTH_OFFSET      = {JPEG_WIDTH_OFFSET};
const JPEG_HEIGHT_OFFSET     = {JPEG_HEIGHT_OFFSET};
const JPEG_COMPONENTS_OFFSET = {JPEG_COMPONENTS_OFFSET};

proc read_be16(offset) {{
  value = (input(offset) << 8) | input(offset + 1);
  return value;
}}

proc main() {{
  stage_width  = read_be16(STAGE_WIDTH_OFFSET);
  stage_height = read_be16(STAGE_HEIGHT_OFFSET);
  jpeg_width   = read_be16(JPEG_WIDTH_OFFSET);
  jpeg_height  = read_be16(JPEG_HEIGHT_OFFSET);
  components   = input(JPEG_COMPONENTS_OFFSET);

  # --- swfdec stage / tag bookkeeping: unsatisfiable target constraints ---
  stage_buffer   = alloc(stage_width * stage_height) @ "swfdec_movie.c@stage";
  line_index     = alloc(jpeg_width * 2) @ "jpeg.c@line_index";
  row_index      = alloc(jpeg_height * 8) @ "jpeg.c@row_index";
  aligned_stride = alloc((jpeg_width + 15) & 0xFFF0) @ "jpeg_rgb_decoder.c@stride";
  component_tbl  = alloc(components * 1024) @ "jpeg.c@component_tbl";

  # --- JPEG RGB decoder buffers: the three exposed sites (no checks) ------
  rgb_buffer   = alloc(jpeg_width * jpeg_height * 3) @ "jpeg_rgb_decoder.c@253";
  rgba_buffer  = alloc(jpeg_width * jpeg_height * 4) @ "jpeg_rgb_decoder.c@257";
  image_buffer = alloc(jpeg_width * jpeg_height * components) @ "jpeg.c@192";

  # Decode a bounded band of rows, then touch the final row of each buffer.
  rows = jpeg_height;
  if (rows > 8) {{
    rows = 8;
  }}
  r = 0;
  while (r < rows) {{
    rgb_buffer[r * jpeg_width * 3] = 1;
    rgba_buffer[r * jpeg_width * 4] = 2;
    r = r + 1;
  }}
  rgb_buffer[(jpeg_height - 1) * jpeg_width * 3 + 2] = 9;
  rgba_buffer[(jpeg_height - 1) * jpeg_width * 4 + 3] = 9;
  image_buffer[(jpeg_height - 1) * jpeg_width * components] = 9;
}}
"""


def build_swfplay_application() -> Application:
    """Build the SwfPlay 0.5.5 application model with its SWF seed input."""
    program = Program.from_source(SWFPLAY_SOURCE, name="swfplay-0.5.5")
    seed = build_swf_seed(jpeg_width=320, jpeg_height=240, components=3)
    expectations = [
        SiteExpectation("jpeg_rgb_decoder.c@253", "exposed", enforced_branches=0,
                        target_only_bimodal_high=True),
        SiteExpectation("jpeg_rgb_decoder.c@257", "exposed", enforced_branches=0,
                        target_only_bimodal_high=True),
        SiteExpectation("jpeg.c@192", "exposed", enforced_branches=0,
                        target_only_bimodal_high=True),
        SiteExpectation("swfdec_movie.c@stage", "unsatisfiable"),
        SiteExpectation("jpeg.c@line_index", "unsatisfiable"),
        SiteExpectation("jpeg.c@row_index", "unsatisfiable"),
        SiteExpectation("jpeg_rgb_decoder.c@stride", "unsatisfiable"),
        SiteExpectation("jpeg.c@component_tbl", "unsatisfiable"),
    ]
    return Application(
        name="SwfPlay 0.5.5",
        program=program,
        format_spec=SwfFormat,
        seed_input=seed,
        expectations=expectations,
        description="Flash player (swfdec); DefineBitsJPEG image decoding.",
    )
