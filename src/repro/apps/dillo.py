"""Model of Dillo 2.1's PNG processing path (paper Section 2 / Figure 2).

The model reproduces the structure the paper walks through:

* ``png_get_uint_31`` — width and height must be below ``0x7FFFFFFF``
  (checks 1 and 2);
* ``png_check_IHDR`` — width and height must be below one million (checks 3
  and 4);
* the Dillo ``Png_datainfo_callback`` size check — ``abs(width * height)``
  compared against ``IMAGE_MAX_W * IMAGE_MAX_H``; the comparison itself is
  computed in wrapping 32-bit arithmetic, so it is vulnerable to exactly the
  overflow the paper exploits (check 5);
* a ``png_memset``-style row-initialisation loop whose trip count depends on
  ``rowbytes`` — the *blocking check* that makes full-seed-path enforcement
  unsatisfiable (Section 5.4);
* the image-data allocation ``png->rowbytes * png->height`` — the paper's
  headline target site ``png.c@203`` — plus the FLTK image-buffer and
  image-cache allocations (``fltkimagebuf.cc@39``, ``Image.cxx@741``) that
  the paper also exposes, and the further allocation sites whose target
  constraints are unsatisfiable or protected by the sanity checks above
  (12 exercised target sites in total, 3 exposed / 1 unsatisfiable /
  8 sanity-protected, matching Table 1's Dillo row).
"""

from __future__ import annotations

from repro.apps.appbase import Application, SiteExpectation
from repro.formats.png import (
    BIT_DEPTH_OFFSET,
    COLOR_TYPE_OFFSET,
    HEIGHT_OFFSET,
    PngFormat,
    WIDTH_OFFSET,
    build_png_seed,
)
from repro.lang.program import Program

DILLO_SOURCE = f"""
# Dillo 2.1 + libpng PNG processing model.
const PNG_UINT_31_MAX   = 0x7FFFFFFF;
const PNG_USER_DIM_MAX  = 1000000;
const IMAGE_MAX_AREA    = 36000000;      # IMAGE_MAX_W * IMAGE_MAX_H = 6000 * 6000
const WIDTH_OFFSET      = {WIDTH_OFFSET};
const HEIGHT_OFFSET     = {HEIGHT_OFFSET};
const BIT_DEPTH_OFFSET  = {BIT_DEPTH_OFFSET};
const COLOR_TYPE_OFFSET = {COLOR_TYPE_OFFSET};

proc read_be32(offset) {{
  value = (input(offset) << 24) | (input(offset + 1) << 16)
        | (input(offset + 2) << 8) | input(offset + 3);
  return value;
}}

# libpng: png_get_uint_31 — checks 1 and 2 of the paper's example.
proc png_get_uint_31(value) {{
  if (value > PNG_UINT_31_MAX) {{
    halt "PNG unsigned integer out of range";
  }}
  return value;
}}

proc main() {{
  # png_handle_IHDR: read the IHDR fields.
  raw_width  = read_be32(WIDTH_OFFSET);
  raw_height = read_be32(HEIGHT_OFFSET);
  bit_depth  = input(BIT_DEPTH_OFFSET);
  color_type = input(COLOR_TYPE_OFFSET);

  width  = png_get_uint_31(raw_width);
  height = png_get_uint_31(raw_height);

  # png_check_IHDR: checks 3 and 4.
  error = 0;
  if (height > PNG_USER_DIM_MAX) {{
    warn "Image height exceeds user limit in IHDR";
    error = 1;
  }}
  if (width > PNG_USER_DIM_MAX) {{
    warn "Image width exceeds user limit in IHDR";
    error = 1;
  }}
  if (error == 1) {{
    halt "invalid IHDR data";
  }}

  # PNG_ROWBYTES: pixel_depth = bit_depth * channels (RGBA -> 4 channels).
  channels    = 4;
  pixel_depth = bit_depth * channels;
  rowbytes    = (width * pixel_depth) >> 3;

  # --- libpng row machinery: sanity-protected allocation sites ----------
  row_pointers = alloc(height * 4) @ "pngread.c@row_pointers";
  row_buf      = alloc(rowbytes + 1) @ "pngrutil.c@row_buf";
  prev_row     = alloc(rowbytes + 8) @ "pngrutil.c@prev_row";
  gamma_table  = alloc(width * 8) @ "pngrtran.c@gamma_table";
  trans_table  = alloc(height * 8) @ "pngrtran.c@trans_table";

  # Palette allocation: bounded by the 8-bit color_type field, so the target
  # constraint itself is unsatisfiable.
  palette = alloc(color_type * 3 + 768) @ "pngset.c@palette";

  # --- Dillo image scaling buffers: sanity-protected -------------------
  scaled_w_buf = alloc(width * 2) @ "dicache.c@scaled_width";
  scaled_h_buf = alloc(height * 2) @ "dicache.c@scaled_height";
  title_buf    = alloc(width + 256) @ "html.cc@title_buf";

  # --- Png_datainfo_callback: check 5, itself vulnerable to overflow.
  area = abs(width * height);
  if (area > IMAGE_MAX_AREA) {{
    warn "suspicious image size request";
    halt "image too large";
  }}

  # The three allocation sites DIODE exposes (Table 2, Dillo rows).
  image_data  = alloc(rowbytes * height) @ "png.c@203";
  fltk_buffer = alloc(width * height * 4) @ "fltkimagebuf.cc@39";
  image_cache = alloc(width * height * 3) @ "Image.cxx@741";

  # --- png_memset-style blocking loop (hand-coded SSE2 loop in the paper):
  # Dillo clears the row scratch area after setting up the image buffers.
  # The trip count depends on rowbytes, so any input forced to follow the
  # seed path through this loop cannot change rowbytes — the blocking check
  # that makes full-seed-path enforcement unsatisfiable (Section 5.4).
  scratch = alloc(8192);
  j = 0;
  while (j < rowbytes && j < 2048) {{
    scratch[j] = 0;
    j = j + 4;
  }}

  # Decode: read back the final scanline of each buffer, then write the
  # first scanlines.  When the allocation size wrapped, the last-row reads
  # land far outside the undersized block and the process takes a SIGSEGV
  # on an invalid read, the error type the paper reports for Dillo.
  last_pixel  = image_data[(height - 1) * rowbytes];
  fltk_pixel  = fltk_buffer[(height - 1) * (width * 4)];
  cache_pixel = image_cache[(height - 1) * (width * 3)];
  limit = height;
  if (limit > 8) {{
    limit = 8;
  }}
  i = 0;
  while (i < limit) {{
    image_data[i * rowbytes] = 255;
    i = i + 1;
  }}
}}
"""


def build_dillo_application() -> Application:
    """Build the Dillo 2.1 application model with its PNG seed input."""
    program = Program.from_source(DILLO_SOURCE, name="dillo-2.1")
    seed = build_png_seed(width=280, height=100, bit_depth=8)
    expectations = [
        SiteExpectation("png.c@203", "exposed", enforced_branches=4,
                        cve="CVE-2009-2294", target_only_bimodal_high=False),
        SiteExpectation("fltkimagebuf.cc@39", "exposed", enforced_branches=5,
                        target_only_bimodal_high=False),
        SiteExpectation("Image.cxx@741", "exposed", enforced_branches=4,
                        target_only_bimodal_high=False),
        SiteExpectation("pngset.c@palette", "unsatisfiable"),
        SiteExpectation("pngread.c@row_pointers", "prevented"),
        SiteExpectation("pngrutil.c@row_buf", "prevented"),
        SiteExpectation("pngrutil.c@prev_row", "prevented"),
        SiteExpectation("pngrtran.c@gamma_table", "prevented"),
        SiteExpectation("pngrtran.c@trans_table", "prevented"),
        SiteExpectation("dicache.c@scaled_width", "prevented"),
        SiteExpectation("dicache.c@scaled_height", "prevented"),
        SiteExpectation("html.cc@title_buf", "prevented"),
    ]
    return Application(
        name="Dillo 2.1",
        program=program,
        format_spec=PngFormat,
        seed_input=seed,
        expectations=expectations,
        description="Lightweight web browser; PNG image path through libpng.",
    )
