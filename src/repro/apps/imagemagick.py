"""Model of ImageMagick 6.5.2's XWD reader, pixel cache and display pipeline.

Table 2 reports three ImageMagick overflows — the X-window image buffer
(``xwindow.c@5619``, CVE-2009-1882), the pixel cache (``cache.c@803``) and the
display pipeline buffer (``display.c@4393``) — all exposed without enforcing
any conditional branch: ImageMagick 6.5.2 performs no dimension sanity checks
on these paths.  Of the remaining exercised sites, five have unsatisfiable
target constraints (sizes derived from masked header fields) and one — the
colormap allocation — is protected by a sanity check on the number of
colormap entries (Table 1's ImageMagick row: 9 sites, 3 exposed,
5 unsatisfiable, 1 protected).
"""

from __future__ import annotations

from repro.apps.appbase import Application, SiteExpectation
from repro.formats.xwd import (
    BITMAP_PAD_OFFSET,
    BITMAP_UNIT_OFFSET,
    BITS_PER_PIXEL_OFFSET,
    NCOLORS_OFFSET,
    PIXMAP_DEPTH_OFFSET,
    PIXMAP_HEIGHT_OFFSET,
    PIXMAP_WIDTH_OFFSET,
    VISUAL_CLASS_OFFSET,
    WINDOW_HEIGHT_OFFSET,
    WINDOW_WIDTH_OFFSET,
    XOFFSET_OFFSET,
    XwdFormat,
    build_xwd_seed,
)
from repro.lang.program import Program

IMAGEMAGICK_SOURCE = f"""
# ImageMagick 6.5.2 XWD / display model.
const PIXMAP_WIDTH_OFFSET   = {PIXMAP_WIDTH_OFFSET};
const PIXMAP_HEIGHT_OFFSET  = {PIXMAP_HEIGHT_OFFSET};
const PIXMAP_DEPTH_OFFSET   = {PIXMAP_DEPTH_OFFSET};
const BITS_PER_PIXEL_OFFSET = {BITS_PER_PIXEL_OFFSET};
const BITMAP_UNIT_OFFSET    = {BITMAP_UNIT_OFFSET};
const BITMAP_PAD_OFFSET     = {BITMAP_PAD_OFFSET};
const XOFFSET_OFFSET        = {XOFFSET_OFFSET};
const VISUAL_CLASS_OFFSET   = {VISUAL_CLASS_OFFSET};
const NCOLORS_OFFSET        = {NCOLORS_OFFSET};
const WINDOW_WIDTH_OFFSET   = {WINDOW_WIDTH_OFFSET};
const WINDOW_HEIGHT_OFFSET  = {WINDOW_HEIGHT_OFFSET};

const MAX_COLORMAP_ENTRIES = 65535;

proc read_be32(offset) {{
  value = (input(offset) << 24) | (input(offset + 1) << 16)
        | (input(offset + 2) << 8) | input(offset + 3);
  return value;
}}

proc main() {{
  pixmap_width   = read_be32(PIXMAP_WIDTH_OFFSET);
  pixmap_height  = read_be32(PIXMAP_HEIGHT_OFFSET);
  pixmap_depth   = read_be32(PIXMAP_DEPTH_OFFSET);
  bits_per_pixel = read_be32(BITS_PER_PIXEL_OFFSET);
  bitmap_unit    = read_be32(BITMAP_UNIT_OFFSET);
  bitmap_pad     = read_be32(BITMAP_PAD_OFFSET);
  xoffset        = read_be32(XOFFSET_OFFSET);
  visual_class   = read_be32(VISUAL_CLASS_OFFSET);
  ncolors        = read_be32(NCOLORS_OFFSET);
  window_width   = read_be32(WINDOW_WIDTH_OFFSET);
  window_height  = read_be32(WINDOW_HEIGHT_OFFSET);

  # --- header bookkeeping: unsatisfiable target constraints ---------------
  pad_buffer     = alloc(bitmap_pad & 0xFF) @ "xwd.c@pad_buffer";
  unit_table     = alloc((bitmap_unit & 0x3F) * 8) @ "xwd.c@unit_table";
  offset_scratch = alloc((xoffset & 0xFFFF) + 32) @ "xwd.c@offset_scratch";
  visual_info    = alloc((visual_class & 0xF) * 256 + 64) @ "xwd.c@visual_info";
  depth_lookup   = alloc((pixmap_depth & 0x3F) * (bitmap_pad & 0x3F)) @ "xwd.c@depth_lookup";

  # --- colormap: protected by a sanity check on the entry count -----------
  if (ncolors > MAX_COLORMAP_ENTRIES) {{
    halt "colormap entries exceed limit";
  }}
  colormap = alloc(ncolors * 12) @ "xwd.c@colormap";

  # --- the three exposed sites (no dimension sanity checks) ---------------
  window_image  = alloc(window_width * window_height * 4) @ "xwindow.c@5619";
  pixel_cache   = alloc(pixmap_width * pixmap_height * 4) @ "cache.c@803";
  display_strip = alloc((pixmap_width * bits_per_pixel >> 3) * pixmap_height + 256)
                  @ "display.c@4393";

  rows = pixmap_height;
  if (rows > 8) {{
    rows = 8;
  }}
  r = 0;
  while (r < rows) {{
    pixel_cache[r * pixmap_width * 4] = 1;
    r = r + 1;
  }}
  window_image[(window_height - 1) * window_width * 4 + 3] = 255;
  pixel_cache[(pixmap_height - 1) * pixmap_width * 4] = 255;
  display_strip[(pixmap_height - 1) * (pixmap_width * bits_per_pixel >> 3)] = 255;
}}
"""


def build_imagemagick_application() -> Application:
    """Build the ImageMagick 6.5.2 application model with its XWD seed input."""
    program = Program.from_source(IMAGEMAGICK_SOURCE, name="imagemagick-6.5.2")
    seed = build_xwd_seed(width=64, height=48, bits_per_pixel=24, ncolors=4)
    expectations = [
        SiteExpectation("xwindow.c@5619", "exposed", enforced_branches=0,
                        cve="CVE-2009-1882", target_only_bimodal_high=True),
        SiteExpectation("cache.c@803", "exposed", enforced_branches=0,
                        target_only_bimodal_high=True),
        SiteExpectation("display.c@4393", "exposed", enforced_branches=0,
                        target_only_bimodal_high=True),
        SiteExpectation("xwd.c@pad_buffer", "unsatisfiable"),
        SiteExpectation("xwd.c@unit_table", "unsatisfiable"),
        SiteExpectation("xwd.c@offset_scratch", "unsatisfiable"),
        SiteExpectation("xwd.c@visual_info", "unsatisfiable"),
        SiteExpectation("xwd.c@depth_lookup", "unsatisfiable"),
        SiteExpectation("xwd.c@colormap", "prevented"),
    ]
    return Application(
        name="ImageMagick 6.5.2",
        program=program,
        format_spec=XwdFormat,
        seed_input=seed,
        expectations=expectations,
        description="Image toolkit; XWD reader, pixel cache and display path.",
    )
