"""Model of CWebP 0.3.1's JPEG source decoder.

Table 2 reports a single CWebP overflow, in the JPEG source decoder
(``jpegdec.c@248``): the RGB working buffer is sized from the source image
dimensions with no sanity checks, so DIODE exposes it without enforcing any
conditional branch.  The other six allocation sites exercised by the seed
input derive their sizes from 16-bit or masked quantities and therefore have
unsatisfiable target constraints (Table 1's CWebP row: 7 sites, 1 exposed,
6 unsatisfiable, 0 protected).
"""

from __future__ import annotations

from repro.apps.appbase import Application, SiteExpectation
from repro.formats.webp import (
    COMPONENTS_OFFSET,
    HEIGHT_OFFSET,
    PRECISION_OFFSET,
    SCAN_LENGTH_OFFSET,
    WIDTH_OFFSET,
    WebpFormat,
    build_webp_seed,
)
from repro.lang.program import Program

CWEBP_SOURCE = f"""
# CWebP 0.3.1 JPEG-source decoding model.
const PRECISION_OFFSET   = {PRECISION_OFFSET};
const HEIGHT_OFFSET      = {HEIGHT_OFFSET};
const WIDTH_OFFSET       = {WIDTH_OFFSET};
const COMPONENTS_OFFSET  = {COMPONENTS_OFFSET};
const SCAN_LENGTH_OFFSET = {SCAN_LENGTH_OFFSET};

proc read_be16(offset) {{
  value = (input(offset) << 8) | input(offset + 1);
  return value;
}}

proc read_be32(offset) {{
  value = (input(offset) << 24) | (input(offset + 1) << 16)
        | (input(offset + 2) << 8) | input(offset + 3);
  return value;
}}

proc main() {{
  precision   = input(PRECISION_OFFSET);
  height      = read_be16(HEIGHT_OFFSET);
  width       = read_be16(WIDTH_OFFSET);
  components  = input(COMPONENTS_OFFSET);
  scan_length = read_be32(SCAN_LENGTH_OFFSET);

  # --- libjpeg-style working structures: unsatisfiable target constraints --
  sample_row     = alloc(width * 2) @ "jpegdec.c@sample_row";
  mcu_rows       = alloc(height * 2) @ "jpegdec.c@mcu_rows";
  dimension_sum  = alloc(width + height) @ "jpegdec.c@dimension_sum";
  component_info = alloc(components * 256) @ "jpegdec.c@component_info";
  luma_plane     = alloc(width * height) @ "yuv.c@luma_plane";
  scan_window    = alloc((scan_length & 0xFFFF) + 64) @ "jpegdec.c@scan_window";

  # --- jpegdec.c@248: the RGB buffer DIODE exposes (no sanity checks). ----
  rgb_buffer = alloc(width * height * 4) @ "jpegdec.c@248";

  rows = height;
  if (rows > 8) {{
    rows = 8;
  }}
  r = 0;
  while (r < rows) {{
    rgb_buffer[r * width * 4] = 128;
    r = r + 1;
  }}
  rgb_buffer[(height - 1) * width * 4 + 3] = 255;
}}
"""


def build_cwebp_application() -> Application:
    """Build the CWebP 0.3.1 application model with its JPEG seed input."""
    program = Program.from_source(CWEBP_SOURCE, name="cwebp-0.3.1")
    seed = build_webp_seed(width=160, height=120, components=3)
    expectations = [
        SiteExpectation("jpegdec.c@248", "exposed", enforced_branches=0,
                        target_only_bimodal_high=True),
        SiteExpectation("jpegdec.c@sample_row", "unsatisfiable"),
        SiteExpectation("jpegdec.c@mcu_rows", "unsatisfiable"),
        SiteExpectation("jpegdec.c@dimension_sum", "unsatisfiable"),
        SiteExpectation("jpegdec.c@component_info", "unsatisfiable"),
        SiteExpectation("yuv.c@luma_plane", "unsatisfiable"),
        SiteExpectation("jpegdec.c@scan_window", "unsatisfiable"),
    ]
    return Application(
        name="CWebP 0.3.1",
        program=program,
        format_spec=WebpFormat,
        seed_input=seed,
        expectations=expectations,
        description="WebP encoder; JPEG source image decoding path.",
    )
