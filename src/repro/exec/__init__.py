"""Operational semantics and dynamic analyses for the core language.

This package implements the paper's Figures 4–6 (concrete and symbolic
small-step semantics) as executable interpreters, plus the two dynamic
analyses DIODE layers on top of them:

* :mod:`repro.exec.concrete` — plain concrete execution (used to run
  candidate test inputs and observe whether the overflow fires).
* :mod:`repro.exec.taint` — byte-granular dynamic taint tracking (the
  Valgrind-based stage of the paper), used for target-site identification
  and relevant-input-byte discovery.
* :mod:`repro.exec.concolic` — paired concrete/symbolic execution restricted
  to the relevant input bytes (the paper's staged symbolic recording), used
  for target-expression and branch-condition extraction.
* :mod:`repro.exec.memcheck` — allocation-aware invalid read/write detection
  (the paper's Valgrind memcheck stage).
"""

from repro.exec.values import MachineInt, WORD_WIDTH
from repro.exec.state import (
    AllocationRecord,
    BranchObservation,
    Environment,
    Memory,
    MemoryBlock,
)
from repro.exec.trace import (
    ExecutionOutcome,
    ExecutionReport,
    MemoryError as MemoryAccessError,
    MemoryErrorKind,
)
from repro.exec.concrete import ConcreteInterpreter, ExecutionLimits
from repro.exec.taint import TaintInterpreter, TaintReport
from repro.exec.concolic import ConcolicInterpreter, ConcolicReport
from repro.exec.memcheck import MemcheckMonitor

__all__ = [
    "MachineInt",
    "WORD_WIDTH",
    "AllocationRecord",
    "BranchObservation",
    "Environment",
    "Memory",
    "MemoryBlock",
    "ExecutionOutcome",
    "ExecutionReport",
    "MemoryAccessError",
    "MemoryErrorKind",
    "ConcreteInterpreter",
    "ExecutionLimits",
    "TaintInterpreter",
    "TaintReport",
    "ConcolicInterpreter",
    "ConcolicReport",
    "MemcheckMonitor",
]
