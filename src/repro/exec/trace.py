"""Execution reports: outcomes, memory errors, branch traces, allocations.

Every interpreter run produces an :class:`ExecutionReport`; DIODE's error
detection stage (Section 4.6 of the paper) compares reports from seed and
candidate inputs to decide whether a candidate triggered new invalid memory
accesses caused by an allocation-size overflow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.exec.state import AllocationRecord, BranchObservation


class ExecutionOutcome(enum.Enum):
    """How an execution terminated."""

    COMPLETED = "completed"
    HALTED = "halted"          # application-level fatal error (png_error-style)
    CRASHED = "crashed"        # simulated SIGSEGV / SIGABRT from a wild access
    STEP_LIMIT = "step_limit"  # runaway loop cut off by the interpreter


class MemoryErrorKind(enum.Enum):
    """Classification of a detected invalid memory access."""

    INVALID_READ = "InvalidRead"
    INVALID_WRITE = "InvalidWrite"
    SEGFAULT_READ = "SIGSEGV/InvalidRead"
    SEGFAULT_WRITE = "SIGSEGV/InvalidWrite"


@dataclass(frozen=True)
class MemoryError:
    """One invalid memory access detected by the memcheck monitor."""

    kind: MemoryErrorKind
    block_address: int
    block_size: int
    offset: int
    allocation_site_label: int
    allocation_site_tag: Optional[str]
    access_label: int
    sequence_index: int

    @property
    def is_crash(self) -> bool:
        """Whether the access was far enough out of bounds to fault."""
        return self.kind in (
            MemoryErrorKind.SEGFAULT_READ,
            MemoryErrorKind.SEGFAULT_WRITE,
        )

    def signature(self) -> Tuple[str, int, int]:
        """A key for seed-run error filtering (kind, alloc site, access site)."""
        return (self.kind.value, self.allocation_site_label, self.access_label)


@dataclass
class ExecutionReport:
    """Everything observed during one interpreter run."""

    outcome: ExecutionOutcome = ExecutionOutcome.COMPLETED
    halt_message: str = ""
    warnings: List[str] = field(default_factory=list)
    steps: int = 0
    branches: List[BranchObservation] = field(default_factory=list)
    allocations: List[AllocationRecord] = field(default_factory=list)
    memory_errors: List[MemoryError] = field(default_factory=list)
    final_environment: Dict[str, Tuple[int, Any]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        """Whether the run ended in a simulated crash."""
        return self.outcome is ExecutionOutcome.CRASHED

    @property
    def halted(self) -> bool:
        """Whether the run ended via an application-level fatal error."""
        return self.outcome is ExecutionOutcome.HALTED

    def allocations_at(self, site_label: int) -> List[AllocationRecord]:
        """Allocation records for a specific site label."""
        return [a for a in self.allocations if a.site_label == site_label]

    def executed_site_labels(self) -> List[int]:
        """Labels of allocation sites exercised by this run (deduplicated)."""
        seen: List[int] = []
        for record in self.allocations:
            if record.site_label not in seen:
                seen.append(record.site_label)
        return seen

    def errors_for_site(self, site_label: int) -> List[MemoryError]:
        """Memory errors on blocks allocated at the given site."""
        return [
            e for e in self.memory_errors if e.allocation_site_label == site_label
        ]

    def error_signatures(self) -> set:
        """Set of error signatures (used to filter seed-run errors)."""
        return {error.signature() for error in self.memory_errors}

    def branch_path(self) -> List[Tuple[int, bool]]:
        """The branch path as a list of (label, taken) pairs in order."""
        return [(b.label, b.taken) for b in self.branches]

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"outcome={self.outcome.value} steps={self.steps} "
            f"allocs={len(self.allocations)} branches={len(self.branches)} "
            f"memory_errors={len(self.memory_errors)}"
        )
