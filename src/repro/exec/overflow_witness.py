"""Overflow-witness interpreter: did an allocation size actually wrap?

DIODE's automated detection in the paper is indirect (memcheck errors), with
manual verification that the allocation size really overflowed.  This
interpreter automates that manual step: it tracks, for every value, whether
some arithmetic operation in the value's dataflow wrapped around its machine
width.  An allocation whose requested size carries that flag is a genuine
integer-overflow allocation, regardless of whether the subsequent
out-of-bounds accesses happen to fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.exec.concrete import ConcreteInterpreter
from repro.exec.trace import ExecutionReport
from repro.lang.ast import AllocStmt, BinaryOp, Stmt, UnaryOp
from repro.lang.program import Program

#: Operators whose result can exceed the machine width.
_WRAPPING_OPS = frozenset({BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL, BinaryOp.SHL})


@dataclass
class OverflowedAllocation:
    """One allocation whose size computation wrapped."""

    site_label: int
    site_tag: Optional[str]
    requested_size: int
    sequence_index: int


@dataclass
class OverflowWitnessReport:
    """Result of an overflow-witness run."""

    execution: ExecutionReport
    overflowed_allocations: List[OverflowedAllocation] = field(default_factory=list)

    def overflowed_site_labels(self) -> List[int]:
        """Labels of allocation sites whose size overflowed in this run."""
        seen: List[int] = []
        for record in self.overflowed_allocations:
            if record.site_label not in seen:
                seen.append(record.site_label)
        return seen

    def site_overflowed(self, site_label: int) -> bool:
        """Whether the given site allocated a wrapped size during this run."""
        return any(r.site_label == site_label for r in self.overflowed_allocations)


class OverflowWitnessInterpreter(ConcreteInterpreter):
    """Concrete interpreter whose annotation is "this value's computation wrapped"."""

    def __init__(self, program: Program, **kwargs: Any) -> None:
        super().__init__(program, **kwargs)
        self.witness_report: Optional[OverflowWitnessReport] = None

    # ------------------------------------------------------------------
    def run_witness(self, input_bytes: bytes) -> OverflowWitnessReport:
        """Run the program and return the overflow-witness report."""
        execution = self.run(input_bytes)
        assert self.witness_report is not None
        self.witness_report.execution = execution
        return self.witness_report

    # ------------------------------------------------------------------
    def _setup_analysis(self) -> None:
        self.witness_report = OverflowWitnessReport(execution=ExecutionReport())

    def _annotate_constant(self, value: int) -> bool:
        return False

    def _annotate_input_size(self, value: int) -> bool:
        return False

    def _annotate_input_byte(self, offset: int, value: int, offset_annotation: Any) -> bool:
        return False

    def _annotate_unary(self, op: UnaryOp, operand: Tuple[int, Any], result: int) -> bool:
        if op is UnaryOp.NEG and operand[0] != 0:
            # Negation of a non-zero unsigned value always wraps; treat it as
            # benign (it is how two's-complement code is written) unless the
            # operand already carried a wrap.
            return bool(operand[1])
        return bool(operand[1])

    def _annotate_binary(
        self, op: BinaryOp, left: Tuple[int, Any], right: Tuple[int, Any], result: int
    ) -> bool:
        carried = bool(left[1]) or bool(right[1])
        if op not in _WRAPPING_OPS:
            return carried
        ideal = self._ideal_result(op, left[0], right[0])
        wrapped_here = ideal is not None and self.machine.wrap(ideal) != ideal
        return carried or wrapped_here

    @staticmethod
    def _ideal_result(op: BinaryOp, left: int, right: int) -> Optional[int]:
        if op is BinaryOp.ADD:
            return left + right
        if op is BinaryOp.SUB:
            return left - right
        if op is BinaryOp.MUL:
            return left * right
        if op is BinaryOp.SHL:
            return left << right if right < 64 else None
        return None

    def _annotate_alloc_address(self, size: Tuple[int, Any], address: int) -> bool:
        return False

    def _observe_branch(self, statement: Stmt, condition: Tuple[int, Any], taken: bool) -> bool:
        return bool(condition[1])

    def _observe_allocation(self, statement: AllocStmt, size: Tuple[int, Any]) -> bool:
        overflowed = bool(size[1])
        if overflowed and self.witness_report is not None:
            self.witness_report.overflowed_allocations.append(
                OverflowedAllocation(
                    site_label=statement.label if statement.label is not None else -1,
                    site_tag=statement.tag,
                    requested_size=size[0],
                    sequence_index=self.sequence_index,
                )
            )
        return overflowed
