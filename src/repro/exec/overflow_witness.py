"""Overflow-witness interpreter: did an allocation size actually wrap?

DIODE's automated detection in the paper is indirect (memcheck errors), with
manual verification that the allocation size really overflowed.  This
interpreter automates that manual step: it tracks, for every value, whether
some arithmetic operation in the value's dataflow wrapped around its machine
width.  An allocation whose requested size carries that flag is a genuine
integer-overflow allocation, regardless of whether the subsequent
out-of-bounds accesses happen to fault.

The annotation is a *provenance set*, not a bare flag: the frozenset of
wrapping operator names (``mul``, ``add``, ``sub``, ``shl``) that actually
wrapped somewhere in the value's dataflow.  Truthiness keeps the original
semantics (empty set = nothing wrapped), and the set itself is the
wrapped-op provenance the triage subsystem hashes into canonical witness
signatures (:mod:`repro.triage.signature`): two witnesses for the same site
dedupe when their allocations wrapped through the same operators, however
different their triggering field values are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, List, Optional, Tuple

from repro.exec.concrete import ConcreteInterpreter
from repro.exec.trace import ExecutionReport
from repro.lang.ast import AllocStmt, BinaryOp, Stmt, UnaryOp
from repro.lang.program import Program

#: Operators whose result can exceed the machine width.
_WRAPPING_OPS = frozenset({BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL, BinaryOp.SHL})

#: The "nothing wrapped" annotation.
_CLEAN: FrozenSet[str] = frozenset()


@dataclass
class OverflowedAllocation:
    """One allocation whose size computation wrapped."""

    site_label: int
    site_tag: Optional[str]
    requested_size: int
    sequence_index: int
    #: Sorted names of the wrapping operators in the size's dataflow.
    provenance: Tuple[str, ...] = ()


@dataclass
class OverflowWitnessReport:
    """Result of an overflow-witness run."""

    execution: ExecutionReport
    overflowed_allocations: List[OverflowedAllocation] = field(default_factory=list)

    def overflowed_site_labels(self) -> List[int]:
        """Labels of allocation sites whose size overflowed in this run."""
        return list(
            dict.fromkeys(r.site_label for r in self.overflowed_allocations)
        )

    def site_overflowed(self, site_label: int) -> bool:
        """Whether the given site allocated a wrapped size during this run."""
        return any(r.site_label == site_label for r in self.overflowed_allocations)

    def site_provenance(self, site_label: int) -> Tuple[str, ...]:
        """Sorted wrapped-op names across every overflowed allocation at a site.

        This is the provenance component of the site's canonical witness
        signature; it is empty when the site did not overflow in this run.
        """
        merged = set()
        for record in self.overflowed_allocations:
            if record.site_label == site_label:
                merged.update(record.provenance)
        return tuple(sorted(merged))


class OverflowWitnessInterpreter(ConcreteInterpreter):
    """Concrete interpreter whose annotation is "this value's computation wrapped".

    Annotations are frozensets of wrapping operator names; the empty set
    means the value's dataflow never wrapped.
    """

    def __init__(self, program: Program, **kwargs: Any) -> None:
        super().__init__(program, **kwargs)
        self.witness_report: Optional[OverflowWitnessReport] = None

    # ------------------------------------------------------------------
    def run_witness(self, input_bytes: bytes) -> OverflowWitnessReport:
        """Run the program and return the overflow-witness report."""
        execution = self.run(input_bytes)
        assert self.witness_report is not None
        self.witness_report.execution = execution
        return self.witness_report

    # ------------------------------------------------------------------
    def _setup_analysis(self) -> None:
        self.witness_report = OverflowWitnessReport(execution=ExecutionReport())

    def _annotate_constant(self, value: int) -> FrozenSet[str]:
        return _CLEAN

    def _annotate_input_size(self, value: int) -> FrozenSet[str]:
        return _CLEAN

    def _annotate_input_byte(
        self, offset: int, value: int, offset_annotation: Any
    ) -> FrozenSet[str]:
        return _CLEAN

    def _annotate_unary(
        self, op: UnaryOp, operand: Tuple[int, Any], result: int
    ) -> FrozenSet[str]:
        # Negation of a non-zero unsigned value always wraps; treat it as
        # benign (it is how two's-complement code is written) unless the
        # operand already carried a wrap.
        return operand[1] or _CLEAN

    def _annotate_binary(
        self, op: BinaryOp, left: Tuple[int, Any], right: Tuple[int, Any], result: int
    ) -> FrozenSet[str]:
        carried = (left[1] or _CLEAN) | (right[1] or _CLEAN)
        if op not in _WRAPPING_OPS:
            return carried
        ideal = self._ideal_result(op, left[0], right[0])
        if ideal is not None and self.machine.wrap(ideal) != ideal:
            return carried | {op.name.lower()}
        return carried

    @staticmethod
    def _ideal_result(op: BinaryOp, left: int, right: int) -> Optional[int]:
        if op is BinaryOp.ADD:
            return left + right
        if op is BinaryOp.SUB:
            return left - right
        if op is BinaryOp.MUL:
            return left * right
        if op is BinaryOp.SHL:
            return left << right if right < 64 else None
        return None

    def _annotate_alloc_address(self, size: Tuple[int, Any], address: int) -> FrozenSet[str]:
        return _CLEAN

    def _observe_branch(
        self, statement: Stmt, condition: Tuple[int, Any], taken: bool
    ) -> FrozenSet[str]:
        return condition[1] or _CLEAN

    def _observe_allocation(
        self, statement: AllocStmt, size: Tuple[int, Any]
    ) -> FrozenSet[str]:
        provenance = size[1] or _CLEAN
        if provenance and self.witness_report is not None:
            self.witness_report.overflowed_allocations.append(
                OverflowedAllocation(
                    site_label=statement.label if statement.label is not None else -1,
                    site_tag=statement.tag,
                    requested_size=size[0],
                    sequence_index=self.sequence_index,
                    provenance=tuple(sorted(provenance)),
                )
            )
        return provenance
