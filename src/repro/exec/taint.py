"""Byte-granular dynamic taint tracking (the paper's Valgrind stage).

Each input byte carries a unique label (its offset).  The analysis propagates
the set of influencing labels through every arithmetic, data-movement and
logic operation — exactly the instruction classes the paper instruments —
until the taint reaches a memory allocation site.  Allocation sites whose
size is tainted are DIODE's target sites, and the union of labels reaching
the size is the set of *relevant input bytes* for that site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.exec.concrete import ConcreteInterpreter
from repro.exec.trace import ExecutionReport
from repro.lang.ast import AllocStmt, BinaryOp, Stmt, UnaryOp
from repro.lang.program import Program

#: The taint annotation: a frozenset of input byte offsets (empty = untainted).
TaintSet = FrozenSet[int]

EMPTY_TAINT: TaintSet = frozenset()


@dataclass
class TaintedAllocation:
    """One allocation-site execution whose size is influenced by the input."""

    site_label: int
    site_tag: Optional[str]
    requested_size: int
    relevant_bytes: TaintSet
    sequence_index: int


@dataclass
class TaintReport:
    """Result of a taint-tracking run."""

    execution: ExecutionReport
    tainted_allocations: List[TaintedAllocation] = field(default_factory=list)
    tainted_branch_labels: Dict[int, TaintSet] = field(default_factory=dict)

    def target_sites(self) -> List[int]:
        """Labels of allocation sites whose size is input-influenced."""
        seen: List[int] = []
        for allocation in self.tainted_allocations:
            if allocation.site_label not in seen:
                seen.append(allocation.site_label)
        return seen

    def relevant_bytes_for(self, site_label: int) -> TaintSet:
        """Union of relevant input bytes over all executions of a site."""
        result: FrozenSet[int] = frozenset()
        for allocation in self.tainted_allocations:
            if allocation.site_label == site_label:
                result = result | allocation.relevant_bytes
        return result


class TaintInterpreter(ConcreteInterpreter):
    """Concrete interpreter that additionally propagates input-byte taint."""

    def __init__(self, program: Program, **kwargs: Any) -> None:
        super().__init__(program, **kwargs)
        self.taint_report: Optional[TaintReport] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run_taint(self, input_bytes: bytes) -> TaintReport:
        """Run the program and return the taint report."""
        execution = self.run(input_bytes)
        assert self.taint_report is not None
        self.taint_report.execution = execution
        return self.taint_report

    # ------------------------------------------------------------------
    # Analysis hooks
    # ------------------------------------------------------------------
    def _setup_analysis(self) -> None:
        self.taint_report = TaintReport(execution=ExecutionReport())

    def _annotate_constant(self, value: int) -> TaintSet:
        return EMPTY_TAINT

    def _annotate_input_size(self, value: int) -> TaintSet:
        return EMPTY_TAINT

    def _annotate_input_byte(
        self, offset: int, value: int, offset_annotation: Any
    ) -> TaintSet:
        taint = frozenset({offset})
        if offset_annotation:
            taint = taint | offset_annotation
        return taint

    def _annotate_unary(self, op: UnaryOp, operand: Tuple[int, Any], result: int) -> TaintSet:
        return operand[1] or EMPTY_TAINT

    def _annotate_binary(
        self, op: BinaryOp, left: Tuple[int, Any], right: Tuple[int, Any], result: int
    ) -> TaintSet:
        return (left[1] or EMPTY_TAINT) | (right[1] or EMPTY_TAINT)

    def _annotate_alloc_address(self, size: Tuple[int, Any], address: int) -> TaintSet:
        # The address itself is not input data; taint does not flow through it.
        return EMPTY_TAINT

    def _observe_branch(
        self, statement: Stmt, condition: Tuple[int, Any], taken: bool
    ) -> TaintSet:
        taint = condition[1] or EMPTY_TAINT
        if taint and self.taint_report is not None:
            label = statement.label if statement.label is not None else -1
            existing = self.taint_report.tainted_branch_labels.get(label, EMPTY_TAINT)
            self.taint_report.tainted_branch_labels[label] = existing | taint
        return taint

    def _observe_allocation(self, statement: AllocStmt, size: Tuple[int, Any]) -> TaintSet:
        taint = size[1] or EMPTY_TAINT
        if taint and self.taint_report is not None:
            self.taint_report.tainted_allocations.append(
                TaintedAllocation(
                    site_label=statement.label if statement.label is not None else -1,
                    site_tag=statement.tag,
                    requested_size=size[0],
                    relevant_bytes=taint,
                    sequence_index=self.sequence_index,
                )
            )
        return taint
