"""Machine integer arithmetic for the concrete semantics.

All program variables in the benchmark application models are machine words
of a fixed width (32 bits by default, matching the 32-bit allocation-size
arithmetic the paper's overflows live in).  Arithmetic wraps around, exactly
as in the hardware — which is the behaviour the target constraints must
faithfully model.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.lang.ast import BinaryOp, UnaryOp

#: Default machine word width for program variables.
WORD_WIDTH = 32


class MachineInt:
    """Helpers for wrap-around arithmetic at a fixed width."""

    def __init__(self, width: int = WORD_WIDTH) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self.mask = (1 << width) - 1
        self.sign_bit = 1 << (width - 1)

    # ------------------------------------------------------------------
    def wrap(self, value: int) -> int:
        """Wrap ``value`` to the unsigned range of this width."""
        return value & self.mask

    def to_signed(self, value: int) -> int:
        """Interpret an unsigned value as two's complement."""
        value = self.wrap(value)
        return value - (1 << self.width) if value & self.sign_bit else value

    # ------------------------------------------------------------------
    def binary(self, op: BinaryOp, left: int, right: int) -> int:
        """Apply a binary operator with machine semantics.

        Comparison and boolean operators return 0/1.
        """
        handler = self._BINARY_HANDLERS.get(op)
        if handler is None:
            raise ValueError(f"unsupported binary operator {op}")
        return handler(self, left, right)

    def unary(self, op: UnaryOp, operand: int) -> int:
        """Apply a unary operator with machine semantics."""
        if op is UnaryOp.NEG:
            return self.wrap(-operand)
        if op is UnaryOp.BITNOT:
            return self.wrap(~operand)
        if op is UnaryOp.NOT:
            return 0 if operand else 1
        if op is UnaryOp.ABS:
            signed = self.to_signed(operand)
            return self.wrap(-signed if signed < 0 else signed)
        raise ValueError(f"unsupported unary operator {op}")

    # ------------------------------------------------------------------
    def _add(self, a: int, b: int) -> int:
        return self.wrap(a + b)

    def _sub(self, a: int, b: int) -> int:
        return self.wrap(a - b)

    def _mul(self, a: int, b: int) -> int:
        return self.wrap(a * b)

    def _div(self, a: int, b: int) -> int:
        # Unsigned division; division by zero yields all-ones (the same
        # convention as the SMT substrate, so constraints stay faithful).
        return self.mask if b == 0 else self.wrap(a // b)

    def _mod(self, a: int, b: int) -> int:
        return a if b == 0 else self.wrap(a % b)

    def _shl(self, a: int, b: int) -> int:
        return 0 if b >= self.width else self.wrap(a << b)

    def _shr(self, a: int, b: int) -> int:
        return 0 if b >= self.width else a >> b

    def _bitand(self, a: int, b: int) -> int:
        return a & b

    def _bitor(self, a: int, b: int) -> int:
        return a | b

    def _bitxor(self, a: int, b: int) -> int:
        return a ^ b

    def _eq(self, a: int, b: int) -> int:
        return 1 if a == b else 0

    def _ne(self, a: int, b: int) -> int:
        return 1 if a != b else 0

    def _lt(self, a: int, b: int) -> int:
        return 1 if a < b else 0

    def _le(self, a: int, b: int) -> int:
        return 1 if a <= b else 0

    def _gt(self, a: int, b: int) -> int:
        return 1 if a > b else 0

    def _ge(self, a: int, b: int) -> int:
        return 1 if a >= b else 0

    def _slt(self, a: int, b: int) -> int:
        return 1 if self.to_signed(a) < self.to_signed(b) else 0

    def _sle(self, a: int, b: int) -> int:
        return 1 if self.to_signed(a) <= self.to_signed(b) else 0

    def _sgt(self, a: int, b: int) -> int:
        return 1 if self.to_signed(a) > self.to_signed(b) else 0

    def _sge(self, a: int, b: int) -> int:
        return 1 if self.to_signed(a) >= self.to_signed(b) else 0

    def _and(self, a: int, b: int) -> int:
        return 1 if (a and b) else 0

    def _or(self, a: int, b: int) -> int:
        return 1 if (a or b) else 0

    _BINARY_HANDLERS: Dict[BinaryOp, Callable[["MachineInt", int, int], int]] = {
        BinaryOp.ADD: _add,
        BinaryOp.SUB: _sub,
        BinaryOp.MUL: _mul,
        BinaryOp.DIV: _div,
        BinaryOp.MOD: _mod,
        BinaryOp.SHL: _shl,
        BinaryOp.SHR: _shr,
        BinaryOp.BITAND: _bitand,
        BinaryOp.BITOR: _bitor,
        BinaryOp.BITXOR: _bitxor,
        BinaryOp.EQ: _eq,
        BinaryOp.NE: _ne,
        BinaryOp.LT: _lt,
        BinaryOp.LE: _le,
        BinaryOp.GT: _gt,
        BinaryOp.GE: _ge,
        BinaryOp.SLT: _slt,
        BinaryOp.SLE: _sle,
        BinaryOp.SGT: _sgt,
        BinaryOp.SGE: _sge,
        BinaryOp.AND: _and,
        BinaryOp.OR: _or,
    }
