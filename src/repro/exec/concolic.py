"""Concolic interpreter: paired concrete + symbolic execution.

This is the paper's second instrumentation stage (Section 4.2): rerun the
program recording, for every value influenced by the *relevant input bytes*,
a symbolic expression over those bytes.  Values untouched by relevant bytes
carry no symbolic expression — that restriction (plus on-the-fly
simplification) is the paper's key scalability optimisation, and it is what
keeps the extracted target expressions and branch conditions small enough to
hand to the solver.

Symbolic values are terms from :mod:`repro.smt`:

* the input byte at offset ``i`` is the 8-bit variable ``inp[i]`` zero
  extended to the machine width;
* every machine operation maps to the corresponding bitvector operation, so
  the extracted expressions faithfully model the wrap-around arithmetic of
  the concrete execution (the requirement the paper states for its target
  constraints);
* branch observations record the symbolic branch condition oriented along
  the taken direction (the ``⟨ℓ, B'⟩`` / ``⟨ℓ, !B'⟩`` of Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.exec.concrete import ConcreteInterpreter
from repro.exec.trace import ExecutionReport
from repro.lang.ast import AllocStmt, BinaryOp, Stmt, UnaryOp
from repro.lang.program import Program
from repro.smt import builder as smt
from repro.smt.simplify import simplify
from repro.smt.terms import Term


def input_byte_variable(offset: int) -> Term:
    """The 8-bit symbolic variable for the input byte at ``offset``."""
    return smt.bv_var(f"inp[{offset}]", 8)


def input_variable_offset(name: str) -> Optional[int]:
    """Inverse of :func:`input_byte_variable` (``None`` if not an input var)."""
    if name.startswith("inp[") and name.endswith("]"):
        try:
            return int(name[4:-1])
        except ValueError:
            return None
    return None


@dataclass
class SymbolicAllocation:
    """A symbolic record of one allocation-site execution."""

    site_label: int
    site_tag: Optional[str]
    requested_size: int
    size_expression: Optional[Term]
    sequence_index: int


@dataclass
class SymbolicBranch:
    """A symbolic record of one conditional branch execution."""

    label: int
    taken: bool
    condition: Optional[Term]
    sequence_index: int


@dataclass
class ConcolicReport:
    """Result of a concolic run."""

    execution: ExecutionReport
    allocations: List[SymbolicAllocation] = field(default_factory=list)
    branches: List[SymbolicBranch] = field(default_factory=list)

    def allocations_at(self, site_label: int) -> List[SymbolicAllocation]:
        """Symbolic allocation records for a given site."""
        return [a for a in self.allocations if a.site_label == site_label]

    def symbolic_branches(self) -> List[SymbolicBranch]:
        """Branches whose condition is influenced by relevant input bytes."""
        return [b for b in self.branches if b.condition is not None]


class ConcolicInterpreter(ConcreteInterpreter):
    """Concrete interpreter that pairs values with symbolic expressions.

    ``relevant_bytes`` restricts which input bytes receive symbolic
    variables; reads of other bytes stay purely concrete.  Passing ``None``
    makes every byte symbolic (useful for small programs and tests, but the
    DIODE pipeline always passes the relevant set from the taint stage).
    """

    def __init__(
        self,
        program: Program,
        relevant_bytes: Optional[Set[int]] = None,
        simplify_online: bool = True,
        field_map: Optional[Dict[int, Tuple[str, int, int]]] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(program, **kwargs)
        self.relevant_bytes = set(relevant_bytes) if relevant_bytes is not None else None
        self.simplify_online = simplify_online
        #: offset → (field variable name, field width in bits, low bit of
        #: this byte within the field value).  When present, input bytes are
        #: symbolised as slices of a per-field variable instead of per-byte
        #: variables — the Hachoir byte-range → field conversion of the paper.
        self.field_map = dict(field_map) if field_map else {}
        self.concolic_report: Optional[ConcolicReport] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run_concolic(self, input_bytes: bytes) -> ConcolicReport:
        """Run the program and return the concolic report."""
        execution = self.run(input_bytes)
        assert self.concolic_report is not None
        self.concolic_report.execution = execution
        return self.concolic_report

    # ------------------------------------------------------------------
    # Analysis hooks
    # ------------------------------------------------------------------
    def _setup_analysis(self) -> None:
        self.concolic_report = ConcolicReport(execution=ExecutionReport())

    def _maybe_simplify(self, term: Term) -> Term:
        return simplify(term) if self.simplify_online else term

    def _annotate_constant(self, value: int) -> Optional[Term]:
        return None

    def _annotate_input_size(self, value: int) -> Optional[Term]:
        return None

    def _annotate_input_byte(
        self, offset: int, value: int, offset_annotation: Any
    ) -> Optional[Term]:
        if offset_annotation is not None:
            # Input-dependent offsets (input[input[i]]) are outside the
            # relevant-byte model; concretise the offset, keep the byte
            # symbolic if it is relevant.
            pass
        if self.relevant_bytes is not None and offset not in self.relevant_bytes:
            return None
        mapping = self.field_map.get(offset)
        if mapping is not None:
            field_name, field_width, low_bit = mapping
            field_var = smt.bv_var(field_name, field_width)
            if field_width <= 8 and low_bit == 0:
                byte_term = field_var
            else:
                byte_term = smt.extract(field_var, low_bit + 7, low_bit)
            return smt.zext(byte_term, self.machine.width)
        return smt.zext(input_byte_variable(offset), self.machine.width)

    def _annotate_unary(
        self, op: UnaryOp, operand: Tuple[int, Any], result: int
    ) -> Optional[Term]:
        operand_term = self._term_of(operand)
        if operand_term is None:
            return None
        if op is UnaryOp.NEG:
            return self._maybe_simplify(smt.neg(operand_term))
        if op is UnaryOp.BITNOT:
            return self._maybe_simplify(smt.bvnot(operand_term))
        if op is UnaryOp.NOT:
            zero = smt.bv_const(0, self.machine.width)
            return self._maybe_simplify(
                smt.ite(smt.eq(operand_term, zero), smt.bv_const(1, self.machine.width), zero)
            )
        if op is UnaryOp.ABS:
            zero = smt.bv_const(0, self.machine.width)
            return self._maybe_simplify(
                smt.ite(smt.slt(operand_term, zero), smt.neg(operand_term), operand_term)
            )
        return None

    def _annotate_binary(
        self, op: BinaryOp, left: Tuple[int, Any], right: Tuple[int, Any], result: int
    ) -> Optional[Term]:
        left_term = self._term_of(left)
        right_term = self._term_of(right)
        if left_term is None and right_term is None:
            return None
        width = self.machine.width
        if left_term is None:
            left_term = smt.bv_const(left[0], width)
        if right_term is None:
            right_term = smt.bv_const(right[0], width)
        term = self._symbolic_binary(op, left_term, right_term, width)
        if term is None:
            return None
        return self._maybe_simplify(term)

    def _symbolic_binary(
        self, op: BinaryOp, left: Term, right: Term, width: int
    ) -> Optional[Term]:
        one = smt.bv_const(1, width)
        zero = smt.bv_const(0, width)

        if op is BinaryOp.ADD:
            return smt.add(left, right)
        if op is BinaryOp.SUB:
            return smt.sub(left, right)
        if op is BinaryOp.MUL:
            return smt.mul(left, right)
        if op is BinaryOp.DIV:
            return smt.udiv(left, right)
        if op is BinaryOp.MOD:
            return smt.urem(left, right)
        if op is BinaryOp.SHL:
            return smt.shl(left, right)
        if op is BinaryOp.SHR:
            return smt.lshr(left, right)
        if op is BinaryOp.BITAND:
            return smt.bvand(left, right)
        if op is BinaryOp.BITOR:
            return smt.bvor(left, right)
        if op is BinaryOp.BITXOR:
            return smt.bvxor(left, right)

        comparison = self._symbolic_comparison(op, left, right)
        if comparison is not None:
            return smt.ite(comparison, one, zero)
        if op is BinaryOp.AND:
            return smt.ite(
                smt.band(smt.ne(left, zero), smt.ne(right, zero)), one, zero
            )
        if op is BinaryOp.OR:
            return smt.ite(
                smt.bor(smt.ne(left, zero), smt.ne(right, zero)), one, zero
            )
        return None

    @staticmethod
    def _symbolic_comparison(op: BinaryOp, left: Term, right: Term) -> Optional[Term]:
        if op is BinaryOp.EQ:
            return smt.eq(left, right)
        if op is BinaryOp.NE:
            return smt.ne(left, right)
        if op is BinaryOp.LT:
            return smt.ult(left, right)
        if op is BinaryOp.LE:
            return smt.ule(left, right)
        if op is BinaryOp.GT:
            return smt.ugt(left, right)
        if op is BinaryOp.GE:
            return smt.uge(left, right)
        if op is BinaryOp.SLT:
            return smt.slt(left, right)
        if op is BinaryOp.SLE:
            return smt.sle(left, right)
        if op is BinaryOp.SGT:
            return smt.sgt(left, right)
        if op is BinaryOp.SGE:
            return smt.sge(left, right)
        return None

    def _annotate_alloc_address(self, size: Tuple[int, Any], address: int) -> Optional[Term]:
        return None

    def _observe_branch(
        self, statement: Stmt, condition: Tuple[int, Any], taken: bool
    ) -> Optional[Term]:
        condition_term = self._term_of(condition)
        if condition_term is None:
            return None
        width = self.machine.width
        zero = smt.bv_const(0, width)
        truth = smt.ne(condition_term, zero)
        oriented = truth if taken else smt.bnot(truth)
        oriented = self._maybe_simplify(oriented)
        if self.concolic_report is not None:
            self.concolic_report.branches.append(
                SymbolicBranch(
                    label=statement.label if statement.label is not None else -1,
                    taken=taken,
                    condition=oriented,
                    sequence_index=self.sequence_index,
                )
            )
        return oriented

    def _observe_allocation(
        self, statement: AllocStmt, size: Tuple[int, Any]
    ) -> Optional[Term]:
        size_term = self._term_of(size)
        if self.concolic_report is not None:
            self.concolic_report.allocations.append(
                SymbolicAllocation(
                    site_label=statement.label if statement.label is not None else -1,
                    site_tag=statement.tag,
                    requested_size=size[0],
                    size_expression=size_term,
                    sequence_index=self.sequence_index,
                )
            )
        return size_term

    # ------------------------------------------------------------------
    @staticmethod
    def _term_of(annotated: Tuple[int, Any]) -> Optional[Term]:
        annotation = annotated[1]
        if isinstance(annotation, Term):
            return annotation
        return None
