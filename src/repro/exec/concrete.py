"""Concrete interpreter for the core language (Figures 4–6 of the paper).

The interpreter is a tree-walking evaluator over the lowered AST.  It is the
base class for the taint and concolic interpreters: the concrete value flow
is identical in all three; subclasses override the annotation hooks to track
input-byte taint sets or symbolic expressions alongside the concrete values.

The interpreter also drives the :class:`repro.exec.memcheck.MemcheckMonitor`
so every run — seed, candidate, or fuzzed — produces the memory-error
evidence DIODE's error detection stage consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.exec.memcheck import MemcheckMonitor, SegmentationFault
from repro.exec.state import (
    AllocationRecord,
    BranchObservation,
    Environment,
    Memory,
)
from repro.exec.trace import ExecutionOutcome, ExecutionReport
from repro.exec.values import MachineInt, WORD_WIDTH
from repro.lang.ast import (
    AllocStmt,
    AssignStmt,
    BinaryExpr,
    BinaryOp,
    ConstExpr,
    Expr,
    HaltStmt,
    IfStmt,
    InputByteExpr,
    InputSizeExpr,
    LoadExpr,
    SeqStmt,
    SkipStmt,
    Stmt,
    StoreStmt,
    UnaryExpr,
    UnaryOp,
    VarExpr,
    WarnStmt,
    WhileStmt,
)
from repro.lang.program import Program


class _Halt(Exception):
    """Internal control-flow signal for the ``halt`` statement."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


class _StepLimit(Exception):
    """Internal control-flow signal for runaway executions."""


@dataclass
class ExecutionLimits:
    """Resource limits for one interpreter run."""

    max_steps: int = 2_000_000
    page_size: int = 4096


class ConcreteInterpreter:
    """Execute a :class:`repro.lang.program.Program` on an input byte string."""

    def __init__(
        self,
        program: Program,
        limits: Optional[ExecutionLimits] = None,
        word_width: int = WORD_WIDTH,
    ) -> None:
        self.program = program
        self.limits = limits or ExecutionLimits()
        self.machine = MachineInt(word_width)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, input_bytes: bytes) -> ExecutionReport:
        """Execute the program on ``input_bytes`` and return the report."""
        self.input_bytes = bytes(input_bytes)
        self.environment = Environment()
        self.memory = Memory()
        self.memcheck = MemcheckMonitor(page_size=self.limits.page_size)
        self.report = ExecutionReport()
        self.sequence_index = 0
        self._setup_analysis()
        try:
            self._execute_sequence(self.program.body)
            self.report.outcome = ExecutionOutcome.COMPLETED
        except _Halt as halt:
            self.report.outcome = ExecutionOutcome.HALTED
            self.report.halt_message = halt.message
        except SegmentationFault:
            self.report.outcome = ExecutionOutcome.CRASHED
        except _StepLimit:
            self.report.outcome = ExecutionOutcome.STEP_LIMIT
        self.report.memory_errors = list(self.memcheck.errors)
        self.report.final_environment = self.environment.snapshot()
        self._finish_analysis()
        return self.report

    # ------------------------------------------------------------------
    # Analysis hooks (overridden by the taint / concolic interpreters)
    # ------------------------------------------------------------------
    def _setup_analysis(self) -> None:
        """Hook called at the start of :meth:`run`."""

    def _finish_analysis(self) -> None:
        """Hook called at the end of :meth:`run`."""

    def _annotate_constant(self, value: int) -> Any:
        """Annotation for a literal constant."""
        return None

    def _annotate_input_byte(self, offset: int, value: int, offset_annotation: Any) -> Any:
        """Annotation for an input byte read at a concrete offset."""
        return None

    def _annotate_input_size(self, value: int) -> Any:
        """Annotation for the ``input_size`` expression."""
        return None

    def _annotate_unary(self, op: UnaryOp, operand: Tuple[int, Any], result: int) -> Any:
        """Annotation for a unary operation result."""
        return None

    def _annotate_binary(
        self, op: BinaryOp, left: Tuple[int, Any], right: Tuple[int, Any], result: int
    ) -> Any:
        """Annotation for a binary operation result."""
        return None

    def _annotate_alloc_address(self, size: Tuple[int, Any], address: int) -> Any:
        """Annotation for the address value produced by ``alloc``."""
        return None

    def _observe_branch(
        self, statement: Stmt, condition: Tuple[int, Any], taken: bool
    ) -> Any:
        """Annotation recorded in the branch observation for this branch."""
        return None

    def _observe_allocation(self, statement: AllocStmt, size: Tuple[int, Any]) -> Any:
        """Annotation recorded in the allocation record (defaults to size annotation)."""
        return size[1]

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self.report.steps += 1
        if self.report.steps > self.limits.max_steps:
            raise _StepLimit()

    def _execute_sequence(self, sequence: SeqStmt) -> None:
        for statement in sequence.statements:
            self._execute_statement(statement)

    def _execute_statement(self, statement: Stmt) -> None:
        self._tick()
        self.sequence_index += 1

        if isinstance(statement, SkipStmt):
            return
        if isinstance(statement, WarnStmt):
            self.report.warnings.append(statement.message)
            return
        if isinstance(statement, HaltStmt):
            raise _Halt(statement.message)
        if isinstance(statement, AssignStmt):
            value, annotation = self._evaluate(statement.value)
            self.environment.write(statement.target, value, annotation)
            return
        if isinstance(statement, AllocStmt):
            self._execute_alloc(statement)
            return
        if isinstance(statement, StoreStmt):
            self._execute_store(statement)
            return
        if isinstance(statement, IfStmt):
            self._execute_if(statement)
            return
        if isinstance(statement, WhileStmt):
            self._execute_while(statement)
            return
        if isinstance(statement, SeqStmt):
            self._execute_sequence(statement)
            return
        raise TypeError(f"cannot execute statement of type {type(statement).__name__}")

    def _execute_alloc(self, statement: AllocStmt) -> None:
        size_value, size_annotation = self._evaluate(statement.size)
        block = self.memory.allocate(
            size=size_value,
            site_label=statement.label if statement.label is not None else -1,
            site_tag=statement.tag,
        )
        record_annotation = self._observe_allocation(statement, (size_value, size_annotation))
        self.report.allocations.append(
            AllocationRecord(
                site_label=statement.label if statement.label is not None else -1,
                site_tag=statement.tag,
                requested_size=size_value,
                size_annotation=record_annotation,
                address=block.address,
                sequence_index=self.sequence_index,
            )
        )
        address_annotation = self._annotate_alloc_address(
            (size_value, size_annotation), block.address
        )
        self.environment.write(statement.target, block.address, address_annotation)

    def _execute_store(self, statement: StoreStmt) -> None:
        offset_value, _offset_annotation = self._evaluate(statement.offset)
        value, annotation = self._evaluate(statement.value)
        base_value, _base_annotation = self.environment.read(statement.base)
        signed_offset = self.machine.to_signed(offset_value)
        self.memcheck.check_access(
            self.memory,
            base_value,
            signed_offset,
            is_write=True,
            access_label=statement.label if statement.label is not None else -1,
            sequence_index=self.sequence_index,
        )
        self.memory.write(base_value, signed_offset, value, annotation)

    def _execute_if(self, statement: IfStmt) -> None:
        condition_value, condition_annotation = self._evaluate(statement.condition)
        taken = bool(condition_value)
        self._record_branch(statement, (condition_value, condition_annotation), taken)
        if taken:
            self._execute_sequence(statement.then_body)
        else:
            self._execute_sequence(statement.else_body)

    def _execute_while(self, statement: WhileStmt) -> None:
        while True:
            self._tick()
            condition_value, condition_annotation = self._evaluate(statement.condition)
            taken = bool(condition_value)
            self._record_branch(statement, (condition_value, condition_annotation), taken)
            if not taken:
                break
            self._execute_sequence(statement.body)

    def _record_branch(
        self, statement: Stmt, condition: Tuple[int, Any], taken: bool
    ) -> None:
        annotation = self._observe_branch(statement, condition, taken)
        self.report.branches.append(
            BranchObservation(
                label=statement.label if statement.label is not None else -1,
                taken=taken,
                condition=annotation,
                sequence_index=self.sequence_index,
            )
        )

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def _evaluate(self, expr: Expr) -> Tuple[int, Any]:
        if isinstance(expr, ConstExpr):
            value = self.machine.wrap(expr.value)
            return value, self._annotate_constant(value)
        if isinstance(expr, VarExpr):
            return self.environment.read(expr.name)
        if isinstance(expr, InputSizeExpr):
            value = self.machine.wrap(len(self.input_bytes))
            return value, self._annotate_input_size(value)
        if isinstance(expr, InputByteExpr):
            offset_value, offset_annotation = self._evaluate(expr.offset)
            if offset_value < len(self.input_bytes):
                value = self.input_bytes[offset_value]
            else:
                value = 0
            return value, self._annotate_input_byte(offset_value, value, offset_annotation)
        if isinstance(expr, LoadExpr):
            return self._evaluate_load(expr)
        if isinstance(expr, UnaryExpr):
            operand = self._evaluate(expr.operand)
            result = self.machine.unary(expr.op, operand[0])
            return result, self._annotate_unary(expr.op, operand, result)
        if isinstance(expr, BinaryExpr):
            return self._evaluate_binary(expr)
        raise TypeError(f"cannot evaluate expression of type {type(expr).__name__}")

    def _evaluate_binary(self, expr: BinaryExpr) -> Tuple[int, Any]:
        # Short-circuit boolean operators still evaluate both sides here:
        # the core language's boolean expressions are total (no side effects
        # in expressions), so eager evaluation is semantically equivalent and
        # keeps the symbolic annotations complete.
        left = self._evaluate(expr.left)
        right = self._evaluate(expr.right)
        result = self.machine.binary(expr.op, left[0], right[0])
        return result, self._annotate_binary(expr.op, left, right, result)

    def _evaluate_load(self, expr: LoadExpr) -> Tuple[int, Any]:
        offset_value, _offset_annotation = self._evaluate(expr.offset)
        base_value, _base_annotation = self.environment.read(expr.base)
        signed_offset = self.machine.to_signed(offset_value)
        self.memcheck.check_access(
            self.memory,
            base_value,
            signed_offset,
            is_write=False,
            access_label=-1,
            sequence_index=self.sequence_index,
        )
        return self.memory.read(base_value, signed_offset)
