"""Allocation-aware invalid memory access detection.

This plays the role of Valgrind's memcheck in the paper (Section 4.6): the
overflow itself is never detected directly — it is detected indirectly
through the invalid reads and writes that follow when the program writes
more data than the (wrapped, too small) allocation can hold.

Accesses slightly past the end of a block are recorded as invalid reads or
writes but execution continues (a real heap overrun first corrupts adjacent
heap memory).  Accesses far past the end — beyond :attr:`MemcheckMonitor.page_size`
bytes — are classified as segmentation faults and abort the run, which is
how most of the paper's discovered overflows manifest (SIGSEGV).
"""

from __future__ import annotations

from typing import List, Optional

from repro.exec.state import Memory, MemoryBlock
from repro.exec.trace import MemoryError, MemoryErrorKind


class SegmentationFault(Exception):
    """Raised by the monitor when an access is classified as a crash."""

    def __init__(self, error: MemoryError) -> None:
        super().__init__(f"simulated SIGSEGV: {error.kind.value} at offset {error.offset}")
        self.error = error


class MemcheckMonitor:
    """Track allocations and classify out-of-bounds accesses."""

    def __init__(self, page_size: int = 4096, max_errors: int = 10_000) -> None:
        self.page_size = page_size
        self.max_errors = max_errors
        self.errors: List[MemoryError] = []

    # ------------------------------------------------------------------
    def check_access(
        self,
        memory: Memory,
        address: int,
        offset: int,
        is_write: bool,
        access_label: int,
        sequence_index: int,
    ) -> Optional[MemoryError]:
        """Check one access; record and return an error if it is invalid.

        Raises :class:`SegmentationFault` when the access is far enough out
        of bounds to be classified as a crash.
        """
        block = memory.block_at(address)
        if block is None:
            # Access through a value that is not a live allocation base:
            # treat as a wild access (always a fault).
            error = MemoryError(
                kind=MemoryErrorKind.SEGFAULT_WRITE if is_write else MemoryErrorKind.SEGFAULT_READ,
                block_address=address,
                block_size=0,
                offset=offset,
                allocation_site_label=-1,
                allocation_site_tag=None,
                access_label=access_label,
                sequence_index=sequence_index,
            )
            self._record(error)
            raise SegmentationFault(error)
        if block.in_bounds(offset):
            return None
        crash = offset >= block.size + self.page_size or offset < -self.page_size
        kind = self._classify(is_write, crash)
        error = MemoryError(
            kind=kind,
            block_address=block.address,
            block_size=block.size,
            offset=offset,
            allocation_site_label=block.site_label,
            allocation_site_tag=block.site_tag,
            access_label=access_label,
            sequence_index=sequence_index,
        )
        self._record(error)
        if crash:
            raise SegmentationFault(error)
        return error

    # ------------------------------------------------------------------
    @staticmethod
    def _classify(is_write: bool, crash: bool) -> MemoryErrorKind:
        if crash:
            return (
                MemoryErrorKind.SEGFAULT_WRITE if is_write else MemoryErrorKind.SEGFAULT_READ
            )
        return MemoryErrorKind.INVALID_WRITE if is_write else MemoryErrorKind.INVALID_READ

    def _record(self, error: MemoryError) -> None:
        if len(self.errors) < self.max_errors:
            self.errors.append(error)
