"""Program state: environment, memory, branch conditions, allocations.

These classes mirror the formal state of the paper's operational semantics
(Section 3.2): an environment mapping variables to ⟨value, symbolic value⟩
pairs, a memory mapping (base address, offset) to such pairs, and a branch
condition φ — the execution-ordered sequence of ⟨label, symbolic branch
condition⟩ observations.

The "annotation" slot generalises the paper's symbolic value: the concrete
interpreter stores ``None`` there, the taint interpreter stores a frozenset
of influencing input-byte offsets, and the concolic interpreter stores an
:class:`repro.smt.terms.Term`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


#: A runtime value paired with its analysis annotation.
AnnotatedValue = Tuple[int, Any]


class Environment:
    """Variable environment ρ: name → ⟨value, annotation⟩."""

    def __init__(self) -> None:
        self._bindings: Dict[str, AnnotatedValue] = {}

    def read(self, name: str) -> AnnotatedValue:
        """Read a variable; undefined variables read as ⟨0, None⟩.

        Real C code routinely reads uninitialised stack slots that happen to
        be zero; modelling undefined-as-zero keeps the application models
        concise without affecting the analyses (an undefined variable cannot
        be input-influenced).
        """
        return self._bindings.get(name, (0, None))

    def write(self, name: str, value: int, annotation: Any = None) -> None:
        """Bind a variable to ⟨value, annotation⟩."""
        self._bindings[name] = (value, annotation)

    def defined(self, name: str) -> bool:
        """Whether the variable has been written."""
        return name in self._bindings

    def names(self) -> Iterator[str]:
        """Iterate over bound variable names."""
        return iter(self._bindings)

    def snapshot(self) -> Dict[str, AnnotatedValue]:
        """Copy of the current bindings (for reports / debugging)."""
        return dict(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def __repr__(self) -> str:
        return f"Environment({len(self._bindings)} bindings)"


@dataclass
class MemoryBlock:
    """One allocated block: base address, requested size, cell contents."""

    address: int
    size: int
    site_label: int
    site_tag: Optional[str] = None
    cells: Dict[int, AnnotatedValue] = field(default_factory=dict)

    def in_bounds(self, offset: int) -> bool:
        """Whether a byte offset lies inside the allocated size."""
        return 0 <= offset < self.size


class Memory:
    """Memory m: base address → offset → ⟨value, annotation⟩.

    Addresses are opaque integers handed out sequentially; there is no
    address arithmetic across blocks (the core language has none either).
    """

    #: Address spacing between blocks: large enough that an out-of-bounds
    #: offset within one "page" past the block end does not collide with the
    #: next block, mirroring how a real heap overrun first corrupts adjacent
    #: memory before faulting.
    BLOCK_STRIDE = 1 << 20

    def __init__(self) -> None:
        self._blocks: Dict[int, MemoryBlock] = {}
        self._next_address = self.BLOCK_STRIDE

    def allocate(
        self, size: int, site_label: int, site_tag: Optional[str] = None
    ) -> MemoryBlock:
        """Allocate a new block of ``size`` bytes; returns the block."""
        address = self._next_address
        self._next_address += self.BLOCK_STRIDE
        block = MemoryBlock(
            address=address, size=size, site_label=site_label, site_tag=site_tag
        )
        self._blocks[address] = block
        return block

    def block_at(self, address: int) -> Optional[MemoryBlock]:
        """The block whose base address is ``address`` (or ``None``)."""
        return self._blocks.get(address)

    def blocks(self) -> List[MemoryBlock]:
        """All allocated blocks in allocation order."""
        return list(self._blocks.values())

    def read(self, address: int, offset: int) -> AnnotatedValue:
        """Read a cell; uninitialised cells read as ⟨0, None⟩."""
        block = self._blocks.get(address)
        if block is None:
            return (0, None)
        return block.cells.get(offset, (0, None))

    def write(self, address: int, offset: int, value: int, annotation: Any = None) -> None:
        """Write a cell (whether or not it is in bounds — memcheck reports it)."""
        block = self._blocks.get(address)
        if block is None:
            return
        block.cells[offset] = (value, annotation)

    def __len__(self) -> int:
        return len(self._blocks)

    def __repr__(self) -> str:
        return f"Memory({len(self._blocks)} blocks)"


@dataclass(frozen=True)
class BranchObservation:
    """One element of the branch condition φ: a conditional branch outcome.

    Attributes:
        label: the label of the conditional statement.
        taken: the concrete outcome (``True`` = condition held).
        condition: the analysis annotation of the condition — a symbolic
            term for the concolic interpreter (already oriented so that the
            recorded term is true on the taken path, i.e. the paper's
            ``⟨ℓ, B'⟩`` or ``⟨ℓ, !B'⟩``), a taint set for the taint
            interpreter, ``None`` for the concrete interpreter.
        sequence_index: position in program execution order.
    """

    label: int
    taken: bool
    condition: Any
    sequence_index: int


@dataclass(frozen=True)
class AllocationRecord:
    """One dynamic execution of an allocation site.

    Attributes:
        site_label: label of the ``alloc`` statement.
        site_tag: the site's ``@ "tag"`` annotation, if any.
        requested_size: the concrete size value passed to ``alloc``.
        size_annotation: the analysis annotation of the size (taint set or
            symbolic term).
        address: base address of the allocated block.
        sequence_index: position in program execution order.
    """

    site_label: int
    site_tag: Optional[str]
    requested_size: int
    size_annotation: Any
    address: int
    sequence_index: int
