"""``overflow(B)``: build the target constraint from a target expression.

The target constraint is satisfied if and only if the computation of the
target expression overflows its machine width — *including* overflows in
subexpressions (Section 4.3 gives the example where the whole expression
cannot overflow but the ``width16 × height16 × 4`` subexpression can).

Construction: walk the recorded (wrap-around) target expression; for every
arithmetic operation that can exceed its width — addition, subtraction
(borrow), multiplication and left shift — build the operation again over
zero-extended operands at double width and compare against the original
width's maximum value.  The target constraint is the disjunction of these
per-operation overflow conditions.  The operands are the *wrapped* recorded
subexpressions, which is exactly how the hardware computes them, so the
constraint "faithfully represents integer arithmetic as implemented in the
hardware" as the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.smt import builder as smt
from repro.smt.simplify import simplify
from repro.smt.terms import Term, TermKind, mask


@dataclass
class OverflowSpec:
    """Which operations count as overflow sources.

    The paper's target constraints cover unsigned wrap-around of the
    allocation-size arithmetic; subtraction underflow is included because a
    ``length - header`` underflow produces the same too-small-allocation
    effect, but it can be disabled for a strict reading.
    """

    include_add: bool = True
    include_sub: bool = True
    include_mul: bool = True
    include_shl: bool = True


@dataclass
class OverflowCondition:
    """One per-operation overflow condition (kept for reporting/ablation)."""

    operation: Term
    condition: Term


def overflow_constraint(
    expression: Term, spec: Optional[OverflowSpec] = None
) -> Term:
    """Return the target constraint for ``expression`` (``false`` if none)."""
    conditions = overflow_conditions(expression, spec)
    if not conditions:
        return smt.bool_const(False)
    return simplify(smt.bor(*[c.condition for c in conditions]))


def overflow_conditions(
    expression: Term, spec: Optional[OverflowSpec] = None
) -> List[OverflowCondition]:
    """Per-operation overflow conditions for every subexpression."""
    spec = spec or OverflowSpec()
    if not expression.is_bv:
        raise ValueError("target expressions must be bitvector terms")
    conditions: List[OverflowCondition] = []
    seen: Dict[int, bool] = {}
    stack: List[Term] = [expression]
    while stack:
        term = stack.pop()
        if id(term) in seen:
            continue
        seen[id(term)] = True
        stack.extend(arg for arg in term.args if arg.is_bv)
        condition = _operation_overflow(term, spec)
        if condition is not None:
            conditions.append(OverflowCondition(operation=term, condition=condition))
    return conditions


def _operation_overflow(term: Term, spec: OverflowSpec) -> Optional[Term]:
    kind = term.kind
    width = term.width
    if width is None:
        return None
    limit = smt.bv_const(mask(width), 2 * width)

    if kind is TermKind.ADD and spec.include_add:
        wide = smt.add(smt.zext(term.args[0], 2 * width), smt.zext(term.args[1], 2 * width))
        return smt.ugt(wide, limit)
    if kind is TermKind.MUL and spec.include_mul:
        wide = smt.mul(smt.zext(term.args[0], 2 * width), smt.zext(term.args[1], 2 * width))
        return smt.ugt(wide, limit)
    if kind is TermKind.SHL and spec.include_shl:
        amount = term.args[1]
        wide_amount = smt.zext(amount, 2 * width)
        wide = smt.shl(smt.zext(term.args[0], 2 * width), wide_amount)
        shift_too_far = smt.uge(amount, smt.bv_const(width, amount.width))
        return smt.bor(smt.ugt(wide, limit), shift_too_far)
    if kind is TermKind.SUB and spec.include_sub:
        # Unsigned borrow: a - b wraps exactly when a < b.
        return smt.ult(term.args[0], term.args[1])
    return None


def widened_value(expression: Term) -> Term:
    """The target expression recomputed at double width without wrapping.

    Only the *top-level* arithmetic is widened (operands are the recorded
    wrapped subexpressions); this is the value the paper's example compares
    against ``0xFFFFFFFF``.
    """
    width = expression.width
    if width is None:
        raise ValueError("target expressions must be bitvector terms")
    kind = expression.kind
    if kind is TermKind.MUL:
        return smt.mul(
            smt.zext(expression.args[0], 2 * width),
            smt.zext(expression.args[1], 2 * width),
        )
    if kind is TermKind.ADD:
        return smt.add(
            smt.zext(expression.args[0], 2 * width),
            smt.zext(expression.args[1], 2 * width),
        )
    return smt.zext(expression, 2 * width)


def ideal_size_exceeds_width(expression: Term) -> Term:
    """Constraint: the top-level widened value exceeds the machine width."""
    width = expression.width
    if width is None:
        raise ValueError("target expressions must be bitvector terms")
    return smt.ugt(widened_value(expression), smt.bv_const(mask(width), 2 * width))
