"""Result records: per-site classifications, bug reports, per-application summaries.

These structures carry the data behind the paper's Table 1 (target site
classification) and Table 2 (per-overflow evaluation summary), and are what
the benchmark harnesses print.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.enforcement import EnforcementOutcome, EnforcementResult
from repro.core.sites import TargetSite


class SiteClassification(enum.Enum):
    """Table 1's three-way classification of a target site."""

    OVERFLOW_EXPOSED = "diode_exposes_overflow"
    TARGET_UNSATISFIABLE = "target_constraint_unsatisfiable"
    SANITY_PREVENTED = "sanity_checks_prevent_overflow"
    UNRESOLVED = "unresolved"


@dataclass
class OverflowBugReport:
    """One discovered overflow (a Table 2 row)."""

    application: str
    target: str
    cve: str
    error_type: str
    enforced_branches: int
    relevant_branches: int
    analysis_seconds: float
    discovery_seconds: float
    triggering_field_values: Dict[str, int] = field(default_factory=dict)
    triggering_input: Optional[bytes] = None

    def enforced_ratio(self) -> str:
        """Format the X/Y column of Table 2."""
        return f"{self.enforced_branches}/{self.relevant_branches}"


@dataclass
class SiteResult:
    """Everything DIODE learned about one target site."""

    site: TargetSite
    classification: SiteClassification
    enforcement: Optional[EnforcementResult] = None
    bug_report: Optional[OverflowBugReport] = None
    discovery_seconds: float = 0.0

    @property
    def exposed(self) -> bool:
        """Whether DIODE generated an overflow-triggering input for this site."""
        return self.classification is SiteClassification.OVERFLOW_EXPOSED


@dataclass
class ApplicationResult:
    """All site results for one benchmark application (a Table 1 row)."""

    application: str
    seed_input: bytes
    analysis_seconds: float
    site_results: List[SiteResult] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def total_target_sites(self) -> int:
        return len(self.site_results)

    @property
    def exposed_count(self) -> int:
        return sum(1 for r in self.site_results if r.exposed)

    @property
    def unsatisfiable_count(self) -> int:
        return sum(
            1
            for r in self.site_results
            if r.classification is SiteClassification.TARGET_UNSATISFIABLE
        )

    @property
    def sanity_prevented_count(self) -> int:
        return sum(
            1
            for r in self.site_results
            if r.classification is SiteClassification.SANITY_PREVENTED
        )

    def bug_reports(self) -> List[OverflowBugReport]:
        """Table 2 rows contributed by this application."""
        return [r.bug_report for r in self.site_results if r.bug_report is not None]

    def table1_row(self) -> Dict[str, int]:
        """The Table 1 row for this application."""
        return {
            "total_target_sites": self.total_target_sites,
            "diode_exposes_overflow": self.exposed_count,
            "target_constraint_unsatisfiable": self.unsatisfiable_count,
            "sanity_checks_prevent_overflow": self.sanity_prevented_count,
        }


def classification_from_enforcement(result: EnforcementResult) -> SiteClassification:
    """Map an enforcement outcome to the Table 1 classification."""
    if result.outcome is EnforcementOutcome.OVERFLOW_TRIGGERED:
        return SiteClassification.OVERFLOW_EXPOSED
    if result.outcome is EnforcementOutcome.TARGET_UNSATISFIABLE:
        return SiteClassification.TARGET_UNSATISFIABLE
    if result.outcome in (
        EnforcementOutcome.CONSTRAINTS_UNSATISFIABLE,
        EnforcementOutcome.SEED_PATH_EXHAUSTED,
    ):
        return SiteClassification.SANITY_PREVENTED
    return SiteClassification.UNRESOLVED
