"""Test input generation (paper Section 4.4).

Given the seed input and a solver model for the relevant input fields, build
a new input file carrying the model's values while remaining structurally
valid: magic bytes untouched, checksums and derived length fields recomputed
by the format rewriter.  A raw-byte mode (no format spec) is available for
unknown formats, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from repro.core.fieldmap import FieldMapper
from repro.formats.rewriter import InputRewriter
from repro.formats.spec import FormatSpec
from repro.smt.evalmodel import Model


@dataclass
class GeneratedInput:
    """A candidate input file plus the model it was generated from."""

    data: bytes
    model: Model
    byte_values: Dict[int, int]


class InputGenerator:
    """Build candidate input files from solver models."""

    def __init__(self, seed_input: bytes, spec: Optional[FormatSpec] = None) -> None:
        self.seed_input = bytes(seed_input)
        self.spec = spec
        self.rewriter = InputRewriter(spec)
        self.mapper = FieldMapper(spec)

    def generate(self, model: Model) -> GeneratedInput:
        """Create a candidate input file carrying the model's field values."""
        byte_values = self.mapper.model_to_byte_values(model)
        data = self.rewriter.rewrite_bytes(self.seed_input, byte_values)
        return GeneratedInput(data=data, model=model.copy(), byte_values=byte_values)

    def generate_from_fields(self, field_values: Mapping[str, int]) -> GeneratedInput:
        """Create a candidate input directly from named field values."""
        model = Model(dict(field_values))
        return self.generate(model)

    def assignment_for(self, data: bytes, relevant_offsets: Iterable[int]) -> Model:
        """Describe ``data`` as an assignment over field and byte variables."""
        return self.mapper.assignment_for_input(data, relevant_offsets)
