"""Branch constraint extraction, compression and relevance filtering.

These are the φ-manipulating pieces of the paper's algorithm (Section 3.3
and Figure 8):

* :func:`extract_branch_constraints` — turn the concolic seed run's branch
  observations into branch constraints: for each executed conditional branch
  influenced by the relevant input bytes, the symbolic condition oriented so
  that an input satisfying it takes the *same* direction as the seed input.
* :func:`compress_branches` — coalesce the multiple dynamic occurrences of
  the same conditional statement (loop iterations) into a single constraint:
  the conjunction of all observed occurrence constraints, positioned at the
  first occurrence (Figure 8's ``compress``).
* :func:`relevant_branches` — drop constraints that share no input variable
  with the target constraint (``relevant(φ, β)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set

from repro.exec.concolic import SymbolicBranch
from repro.smt import builder as smt
from repro.smt.evalmodel import Model, satisfies
from repro.smt.simplify import simplify
from repro.smt.terms import Term


@dataclass(frozen=True)
class BranchConstraint:
    """A constraint forcing an input to follow the seed path at one branch.

    Attributes:
        label: the conditional statement's label.
        condition: boolean term over input variables; true iff an input takes
            the same direction(s) as the seed input at this branch.
        first_sequence_index: execution-order position of the branch's first
            occurrence (used to order enforcement).
        occurrences: how many dynamic occurrences were coalesced into this
            constraint.
    """

    label: int
    condition: Term
    first_sequence_index: int
    occurrences: int

    def satisfied_by(self, assignment: Model) -> bool:
        """Whether an input described by ``assignment`` satisfies this constraint."""
        return satisfies(self.condition, assignment)


def extract_branch_constraints(
    seed_path: Sequence[SymbolicBranch],
) -> List[BranchConstraint]:
    """One constraint per dynamic branch occurrence with a symbolic condition.

    The concolic interpreter already orients each recorded condition along
    the direction the seed took, so the constraint is the recorded condition
    itself.
    """
    constraints: List[BranchConstraint] = []
    for branch in seed_path:
        if branch.condition is None:
            continue
        constraints.append(
            BranchConstraint(
                label=branch.label,
                condition=branch.condition,
                first_sequence_index=branch.sequence_index,
                occurrences=1,
            )
        )
    return constraints


def compress_branches(constraints: Sequence[BranchConstraint]) -> List[BranchConstraint]:
    """Coalesce occurrences of the same conditional into one constraint.

    Follows Figure 8: the compressed constraint for a label is the
    conjunction of every occurrence's constraint, placed at the position of
    the label's first occurrence, preserving first-occurrence order.
    """
    by_label: Dict[int, List[BranchConstraint]] = {}
    order: List[int] = []
    for constraint in constraints:
        if constraint.label not in by_label:
            order.append(constraint.label)
        by_label.setdefault(constraint.label, []).append(constraint)
    compressed: List[BranchConstraint] = []
    for label in order:
        group = by_label[label]
        condition = simplify(smt.band(*[c.condition for c in group]))
        compressed.append(
            BranchConstraint(
                label=label,
                condition=condition,
                first_sequence_index=group[0].first_sequence_index,
                occurrences=sum(c.occurrences for c in group),
            )
        )
    return compressed


def relevant_branches(
    constraints: Sequence[BranchConstraint], target_constraint: Term
) -> List[BranchConstraint]:
    """Keep only constraints sharing an input variable with the target constraint."""
    target_variables = _variable_names(target_constraint)
    out: List[BranchConstraint] = []
    for constraint in constraints:
        if _variable_names(constraint.condition) & target_variables:
            out.append(constraint)
    return out


def first_unsatisfied(
    constraints: Sequence[BranchConstraint], assignment: Model
) -> BranchConstraint | None:
    """The first (program execution order) constraint ``assignment`` violates.

    This is the paper's *first flipped branch*: the earliest relevant
    conditional where the candidate input takes a different path than the
    seed input.  Returns ``None`` when every constraint is satisfied.
    """
    for constraint in sorted(constraints, key=lambda c: c.first_sequence_index):
        if not constraint.satisfied_by(assignment):
            return constraint
    return None


def _variable_names(term: Term) -> Set[str]:
    return {str(v.name) for v in term.variables()}
