"""DIODE: the paper's primary contribution.

The modules in this package implement the Figure-1 pipeline:

* :mod:`repro.core.sites` — target site identification (taint stage).
* :mod:`repro.core.fieldmap` — byte-range → input-field mapping (Hachoir role).
* :mod:`repro.core.target` — target expression extraction (concolic stage).
* :mod:`repro.core.overflow` — ``overflow(B)``: the target constraint.
* :mod:`repro.core.branches` — branch constraint extraction, ``compress`` and
  ``relevant`` (Figure 8).
* :mod:`repro.core.inputs` — test input generation through :mod:`repro.formats`.
* :mod:`repro.core.detection` — error detection with seed-run filtering.
* :mod:`repro.core.enforcement` — the goal-directed conditional branch
  enforcement algorithm (Figure 7).
* :mod:`repro.core.engine` — the :class:`~repro.core.engine.Diode` front end
  and the pure per-site unit :func:`~repro.core.engine.analyze_site`.
* :mod:`repro.core.campaign` — the parallel analysis campaign engine:
  every ⟨application, site⟩ unit scheduled over a pluggable execution
  backend (:mod:`repro.sched`: serial / thread / process), backed by a
  shared solver-result cache with optional cross-run persistence
  (:mod:`repro.smt.cachestore`).
* :mod:`repro.core.baselines` — the comparison strategies evaluated in
  Sections 5.4–5.6 (target-constraint-only sampling, full-path enforcement,
  random and taint-directed fuzzing).
* :mod:`repro.core.report` — result records and site classification.
"""

from repro.core.sites import TargetSite, identify_target_sites
from repro.core.fieldmap import FieldMapper
from repro.core.target import TargetObservation, extract_target_observations
from repro.core.overflow import overflow_constraint, OverflowSpec
from repro.core.branches import BranchConstraint, compress_branches, relevant_branches, extract_branch_constraints
from repro.core.inputs import InputGenerator
from repro.core.detection import CandidateEvaluation, ErrorDetector
from repro.core.enforcement import EnforcementConfig, EnforcementOutcome, EnforcementResult, GoalDirectedEnforcer
from repro.core.report import (
    SiteClassification,
    SiteResult,
    ApplicationResult,
    OverflowBugReport,
)
from repro.core.engine import Diode, DiodeConfig, analyze_site
from repro.core.campaign import (
    CampaignConfig,
    CampaignEngine,
    CampaignResult,
    run_campaign,
)
from repro.core.baselines import (
    BaselineResult,
    TargetOnlySampling,
    EnforcedSampling,
    FullPathEnforcement,
    RandomByteFuzzer,
    TaintDirectedFuzzer,
)

__all__ = [
    "TargetSite",
    "identify_target_sites",
    "FieldMapper",
    "TargetObservation",
    "extract_target_observations",
    "overflow_constraint",
    "OverflowSpec",
    "BranchConstraint",
    "compress_branches",
    "relevant_branches",
    "extract_branch_constraints",
    "InputGenerator",
    "CandidateEvaluation",
    "ErrorDetector",
    "EnforcementConfig",
    "EnforcementOutcome",
    "EnforcementResult",
    "GoalDirectedEnforcer",
    "SiteClassification",
    "SiteResult",
    "ApplicationResult",
    "OverflowBugReport",
    "Diode",
    "DiodeConfig",
    "analyze_site",
    "CampaignConfig",
    "CampaignEngine",
    "CampaignResult",
    "run_campaign",
    "BaselineResult",
    "TargetOnlySampling",
    "EnforcedSampling",
    "FullPathEnforcement",
    "RandomByteFuzzer",
    "TaintDirectedFuzzer",
]
