"""Byte-range → input-field mapping (the Hachoir role inside DIODE).

The taint stage identifies *byte offsets* that influence a target value; the
solver and the reports want to talk about *fields* (``/header/width``).  The
:class:`FieldMapper` bridges the two:

* it builds the ``field_map`` the concolic interpreter uses to symbolise
  input bytes as slices of per-field bitvector variables;
* it converts solver models (assignments to field variables and raw byte
  variables) back into concrete byte values for the input rewriter;
* it produces the assignment describing an existing input file, which the
  enforcement loop uses to check which branch constraints a candidate input
  already satisfies.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.exec.concolic import input_byte_variable, input_variable_offset
from repro.formats.fields import Endianness, FieldKind, FieldSpec
from repro.formats.spec import FormatSpec
from repro.smt import builder as smt
from repro.smt.evalmodel import Model
from repro.smt.terms import Term


class FieldMapper:
    """Map between byte offsets, field variables and solver models."""

    def __init__(self, spec: Optional[FormatSpec] = None) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    # Concolic-interpreter field map
    # ------------------------------------------------------------------
    def field_map(self) -> Dict[int, Tuple[str, int, int]]:
        """offset → (field variable name, field width bits, low bit of byte).

        Only mutable UINT fields are mapped; magic numbers, checksums and
        payload bytes keep per-byte symbolic variables (or none at all).
        """
        if self.spec is None:
            return {}
        mapping: Dict[int, Tuple[str, int, int]] = {}
        for field in self.spec.fields:
            if field.kind is not FieldKind.UINT or not field.mutable:
                continue
            width_bits = field.size * 8
            for index in range(field.size):
                offset = field.offset + index
                if field.endianness is Endianness.BIG:
                    low_bit = (field.size - 1 - index) * 8
                else:
                    low_bit = index * 8
                mapping[offset] = (field.path, width_bits, low_bit)
        return mapping

    def field_variable(self, path: str) -> Term:
        """The bitvector variable standing for a named field."""
        if self.spec is None:
            raise ValueError("field_variable requires a format spec")
        field = self.spec.field(path)
        return smt.bv_var(field.path, field.size * 8)

    # ------------------------------------------------------------------
    # Model ↔ bytes
    # ------------------------------------------------------------------
    def model_to_byte_values(self, model) -> Dict[int, int]:
        """Expand a solver model into per-byte values for the rewriter."""
        assignment = model.as_dict() if isinstance(model, Model) else dict(model)
        byte_values: Dict[int, int] = {}
        for name, value in assignment.items():
            offset = input_variable_offset(name)
            if offset is not None:
                byte_values[offset] = value & 0xFF
                continue
            if self.spec is not None and self.spec.has_field(name):
                field = self.spec.field(name)
                encoded = field.encode(value)
                for index, byte in enumerate(encoded):
                    byte_values[field.offset + index] = byte
        return byte_values

    def assignment_for_input(
        self, data: bytes, relevant_offsets: Iterable[int]
    ) -> Model:
        """Describe an input file as a model over field and byte variables.

        The assignment covers every relevant offset twice over when a field
        spans it: once through the per-byte variable and once through the
        field variable, so constraints phrased in either vocabulary can be
        evaluated against the input.
        """
        model = Model()
        offsets = sorted(set(relevant_offsets))
        seen_fields = set()
        for offset in offsets:
            value = data[offset] if offset < len(data) else 0
            model[input_byte_variable(offset).name] = value
            if self.spec is None:
                continue
            field = self.spec.field_at_offset(offset)
            if field is None or field.kind is not FieldKind.UINT:
                continue
            if field.path in seen_fields:
                continue
            seen_fields.add(field.path)
            model[field.path] = field.read(data)
        return model

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe_relevant_bytes(self, offsets: Iterable[int]) -> Dict[str, list]:
        """Group relevant byte offsets by field path for reports."""
        if self.spec is None:
            return {"<raw>": sorted(set(offsets))}
        grouped: Dict[str, list] = {}
        for offset in sorted(set(offsets)):
            field = self.spec.field_at_offset(offset)
            path = field.path if field is not None else "<raw>"
            grouped.setdefault(path, []).append(offset)
        return grouped
