"""The parallel analysis campaign engine.

``Diode.analyze`` walks one application's target sites strictly serially.
A *campaign* instead treats every ⟨application, target site⟩ pair in the
registry as one independent unit of work, fans the units out over a
work-queue scheduler (``concurrent.futures.ThreadPoolExecutor``), and backs
every unit's solver with one shared
:class:`~repro.smt.cache.SolverCache` plus the persistent simplification
memo, so enforcement iterations and sibling sites stop re-deriving work.

Structure of a run:

1. build the application models (registry order) and, per application, the
   shared immutable collaborators — one :class:`ErrorDetector` seed run and
   one :class:`FieldMapper` instead of one per site;
2. identify target sites per application (the taint stage, timed as the
   paper's analysis phase);
3. schedule one :func:`repro.core.engine.analyze_site` call per site —
   serially when ``jobs <= 1`` (the deterministic fallback mode), otherwise
   across ``jobs`` worker threads;
4. reassemble per-application :class:`ApplicationResult` records in registry
   order and aggregate the Table-1 / Table-2 report.

Determinism: units are pure (see :func:`~repro.core.engine.analyze_site`)
and results are slotted by (application, site) index, so the report is
identical for any worker count.  The shared cache preserves this because a
cached verdict is always derived from the query's canonical representative
— a pure function of the query, not of scheduling order.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.appbase import Application
from repro.apps.registry import build_applications
from repro.core.detection import ErrorDetector
from repro.core.engine import DiodeConfig, analyze_site
from repro.core.fieldmap import FieldMapper
from repro.core.report import ApplicationResult, OverflowBugReport, SiteResult
from repro.core.sites import TargetSite, identify_target_sites
from repro.smt.cache import SolverCache, SolverCacheStats, simplify_memo


@dataclass
class CampaignConfig:
    """Configuration for one campaign run."""

    diode: DiodeConfig = field(default_factory=DiodeConfig)
    #: Worker threads; ``None`` means one per CPU, ``1`` forces the
    #: deterministic serial fallback path (no executor at all).
    jobs: Optional[int] = None
    #: Share a solver-result cache and the simplification memo across units.
    use_cache: bool = True
    #: Application short names to analyze; ``None`` means the whole registry.
    applications: Optional[Sequence[str]] = None

    def resolved_jobs(self) -> int:
        if self.jobs is None:
            return max(1, os.cpu_count() or 1)
        return max(1, self.jobs)


@dataclass
class _ApplicationContext:
    """Shared immutable per-application collaborators."""

    index: int
    application: Application
    detector: ErrorDetector
    mapper: FieldMapper
    sites: List[TargetSite]
    analysis_seconds: float


@dataclass(frozen=True)
class CampaignUnit:
    """One schedulable ⟨application, target site⟩ analysis."""

    app_index: int
    site_index: int
    application_name: str
    site_name: str


@dataclass
class CampaignResult:
    """Aggregate outcome of a campaign over many applications."""

    application_results: List[ApplicationResult]
    wall_seconds: float
    jobs: int
    cache_enabled: bool
    unit_count: int
    cache_stats: Optional[SolverCacheStats] = None

    # ------------------------------------------------------------------
    def table1_rows(self) -> List[Dict[str, int]]:
        """Per-application Table-1 rows, in campaign order."""
        return [result.table1_row() for result in self.application_results]

    def table1_totals(self) -> Dict[str, int]:
        """The Table-1 totals row across every application."""
        totals = {
            "total_target_sites": 0,
            "diode_exposes_overflow": 0,
            "target_constraint_unsatisfiable": 0,
            "sanity_checks_prevent_overflow": 0,
        }
        for result in self.application_results:
            for key, value in result.table1_row().items():
                totals[key] += value
        return totals

    def bug_reports(self) -> List[OverflowBugReport]:
        """Every Table-2 row discovered by the campaign."""
        reports: List[OverflowBugReport] = []
        for result in self.application_results:
            reports.extend(result.bug_reports())
        return reports

    def classifications(self) -> Dict[str, Dict[str, str]]:
        """application name -> site name -> classification value.

        The comparison format the tests use to assert that campaign output
        matches the serial ``Diode.analyze`` path exactly.
        """
        return {
            result.application: {
                site.site.name: site.classification.value
                for site in result.site_results
            }
            for result in self.application_results
        }


class CampaignEngine:
    """Fan a DIODE analysis out over applications and sites concurrently."""

    def __init__(self, config: Optional[CampaignConfig] = None) -> None:
        self.config = config or CampaignConfig()

    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        """Run the campaign and return the aggregate report."""
        started = time.perf_counter()
        jobs = self.config.resolved_jobs()
        cache = SolverCache() if self.config.use_cache else None

        with simplify_memo(enabled=self.config.use_cache):
            contexts = self._build_contexts()
            units = [
                CampaignUnit(
                    app_index=context.index,
                    site_index=site_index,
                    application_name=context.application.name,
                    site_name=site.name,
                )
                for context in contexts
                for site_index, site in enumerate(context.sites)
            ]
            site_results = self._run_units(contexts, units, cache, jobs)

        application_results = []
        for context in contexts:
            result = ApplicationResult(
                application=context.application.name,
                seed_input=context.application.seed_input,
                analysis_seconds=context.analysis_seconds,
            )
            result.site_results.extend(
                site_results[(context.index, site_index)]
                for site_index in range(len(context.sites))
            )
            application_results.append(result)

        return CampaignResult(
            application_results=application_results,
            wall_seconds=time.perf_counter() - started,
            jobs=jobs,
            cache_enabled=self.config.use_cache,
            unit_count=len(units),
            cache_stats=cache.stats if cache is not None else None,
        )

    # ------------------------------------------------------------------
    def _build_contexts(self) -> List[_ApplicationContext]:
        contexts = []
        for index, application in enumerate(
            build_applications(self.config.applications)
        ):
            identify_started = time.perf_counter()
            sites = identify_target_sites(
                application.program, application.seed_input
            )
            analysis_seconds = time.perf_counter() - identify_started
            contexts.append(
                _ApplicationContext(
                    index=index,
                    application=application,
                    detector=ErrorDetector(
                        application.program, application.seed_input
                    ),
                    mapper=FieldMapper(application.format_spec),
                    sites=sites,
                    analysis_seconds=analysis_seconds,
                )
            )
        return contexts

    def _run_units(
        self,
        contexts: List[_ApplicationContext],
        units: List[CampaignUnit],
        cache: Optional[SolverCache],
        jobs: int,
    ) -> Dict[tuple, SiteResult]:
        def run_unit(unit: CampaignUnit) -> SiteResult:
            context = contexts[unit.app_index]
            return analyze_site(
                context.application,
                context.sites[unit.site_index],
                self.config.diode,
                solver_cache=cache,
                detector=context.detector,
                field_mapper=context.mapper,
            )

        results: Dict[tuple, SiteResult] = {}
        if jobs <= 1:
            # Deterministic serial fallback: no executor, registry order.
            for unit in units:
                results[(unit.app_index, unit.site_index)] = run_unit(unit)
            return results

        with ThreadPoolExecutor(max_workers=jobs) as executor:
            futures = {
                (unit.app_index, unit.site_index): executor.submit(run_unit, unit)
                for unit in units
            }
            for slot, future in futures.items():
                results[slot] = future.result()
        return results


def run_campaign(config: Optional[CampaignConfig] = None) -> CampaignResult:
    """Convenience wrapper: run one campaign with ``config``."""
    return CampaignEngine(config).run()
