"""The parallel analysis campaign engine.

``Diode.analyze`` walks one application's target sites strictly serially.
A *campaign* instead treats every ⟨application, target site⟩ pair in the
registry as one independent unit of work and hands the unit list to a
pluggable execution backend (:mod:`repro.sched`): ``serial`` (the
deterministic reference schedule), ``thread`` (a work queue sharing one
in-process cache) or ``process`` (real CPU parallelism over a process
pool, with per-worker caches merged back into the parent).  Every unit's
solver is backed by a shared :class:`~repro.smt.cache.SolverCache` plus
the persistent simplification memo, so enforcement iterations and sibling
sites stop re-deriving work.  Units solve incrementally by default
(:class:`~repro.smt.solver.SolverSession` per observation, query
decomposition, component-granularity caching); the cache carries verdicts
at both whole-query and component granularity through every backend —
the process backend ships both as tagged wire-format deltas.

With a ``cache_dir``, the campaign also warm-starts across runs: the
solver cache is loaded from a persistent
:class:`~repro.smt.cachestore.CacheStore` before the units run (verified
against the store format version and the solver-configuration
fingerprint) and saved back afterwards, so a second campaign answers most
of its queries from the first one's verdicts.

Structure of a run:

1. build the application models (registry order) and, per application, the
   shared immutable collaborators — one :class:`ErrorDetector` seed run and
   one :class:`FieldMapper` instead of one per site;
2. identify target sites per application (the taint stage, timed as the
   paper's analysis phase);
3. hand one :class:`~repro.sched.base.CampaignUnit` per site to the
   resolved backend, which schedules
   :func:`repro.core.engine.analyze_site` calls over its workers;
4. reassemble per-application :class:`ApplicationResult` records in registry
   order and aggregate the Table-1 / Table-2 report.

Determinism: units are pure (see :func:`~repro.core.engine.analyze_site`)
and results are slotted by (application, site) index, so the report is
identical for any backend and worker count.  The shared cache preserves
this because a cached verdict is always derived from the query's canonical
representative — a pure function of the query, not of scheduling order or
of which run originally derived it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.registry import application_names, build_applications
from repro.core.engine import DiodeConfig
from repro.core.report import ApplicationResult, OverflowBugReport, SiteResult
from repro.sched import (
    ApplicationContext,
    CampaignUnit,
    UnitAnalysisError,
    UnitRunRequest,
    build_application_context,
    get_backend,
)
from repro.smt.cache import SolverCache, SolverCacheStats, simplify_memo
from repro.smt.cachestore import CacheStore

__all__ = [
    "CampaignConfig",
    "CampaignEngine",
    "CampaignResult",
    "CampaignUnit",
    "UnitAnalysisError",
    "run_campaign",
]


@dataclass
class CampaignConfig:
    """Configuration for one campaign run."""

    diode: DiodeConfig = field(default_factory=DiodeConfig)
    #: Workers; ``None`` means one per CPU, ``1`` forces the deterministic
    #: serial schedule for the ``thread`` backend (no executor at all).
    jobs: Optional[int] = None
    #: Share a solver-result cache and the simplification memo across units.
    use_cache: bool = True
    #: Application short names to analyze; ``None`` means the whole registry.
    applications: Optional[Sequence[str]] = None
    #: Execution backend name (see :func:`repro.sched.available_backends`).
    backend: str = "thread"
    #: Directory of the persistent cross-run solver-cache store; ``None``
    #: disables persistence.
    cache_dir: Optional[str] = None
    #: Write the (possibly warm-started) cache back to ``cache_dir`` after
    #: the run.  Ignored without a ``cache_dir``.
    save_cache: bool = True

    def resolved_jobs(self) -> int:
        if self.jobs is None:
            return max(1, os.cpu_count() or 1)
        return max(1, self.jobs)

    def resolved_backend(self) -> str:
        """The backend that will actually run, after the serial fallback.

        A single-worker ``thread`` pool is pure overhead, so ``jobs <= 1``
        degrades it to ``serial``.  An explicit ``process`` request is
        honoured even at one worker — the caller asked for process
        isolation (and its pickling path), not for speed.
        """
        get_backend(self.backend)  # one source of name validation
        if self.backend == "thread" and self.resolved_jobs() <= 1:
            return "serial"
        return self.backend

    def registry_names(self) -> List[str]:
        """Registry short names analyzed by this campaign, in order."""
        if self.applications is None:
            return application_names()
        return list(self.applications)


@dataclass
class CampaignResult:
    """Aggregate outcome of a campaign over many applications."""

    application_results: List[ApplicationResult]
    wall_seconds: float
    jobs: int
    cache_enabled: bool
    unit_count: int
    cache_stats: Optional[SolverCacheStats] = None
    backend: str = "thread"
    #: Entries warm-started from the persistent store (0 on a cold run).
    cache_loaded: int = 0
    #: Entries written back to the persistent store (0 when not saving).
    cache_saved: int = 0

    # ------------------------------------------------------------------
    def table1_rows(self) -> List[Dict[str, int]]:
        """Per-application Table-1 rows, in campaign order."""
        return [result.table1_row() for result in self.application_results]

    def table1_totals(self) -> Dict[str, int]:
        """The Table-1 totals row across every application."""
        totals = {
            "total_target_sites": 0,
            "diode_exposes_overflow": 0,
            "target_constraint_unsatisfiable": 0,
            "sanity_checks_prevent_overflow": 0,
        }
        for result in self.application_results:
            for key, value in result.table1_row().items():
                totals[key] += value
        return totals

    def bug_reports(self) -> List[OverflowBugReport]:
        """Every Table-2 row discovered by the campaign."""
        reports: List[OverflowBugReport] = []
        for result in self.application_results:
            reports.extend(result.bug_reports())
        return reports

    def classifications(self) -> Dict[str, Dict[str, str]]:
        """application name -> site name -> classification value.

        The comparison format the tests use to assert that campaign output
        matches the serial ``Diode.analyze`` path exactly.
        """
        return {
            result.application: {
                site.site.name: site.classification.value
                for site in result.site_results
            }
            for result in self.application_results
        }


class CampaignEngine:
    """Fan a DIODE analysis out over applications and sites concurrently."""

    def __init__(self, config: Optional[CampaignConfig] = None) -> None:
        self.config = config or CampaignConfig()

    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        """Run the campaign and return the aggregate report."""
        started = time.perf_counter()
        jobs = self.config.resolved_jobs()
        backend_name = self.config.resolved_backend()
        cache = SolverCache() if self.config.use_cache else None

        store: Optional[CacheStore] = None
        fingerprint = self.config.diode.solver_fingerprint()
        loaded = saved = 0
        if cache is not None and self.config.cache_dir:
            store = CacheStore(self.config.cache_dir)
            loaded = store.load(cache, fingerprint)

        with simplify_memo(enabled=self.config.use_cache):
            contexts = self._build_contexts()
            units = [
                CampaignUnit(
                    app_index=context.index,
                    site_index=site_index,
                    application_name=context.application.name,
                    site_name=site.name,
                )
                for context in contexts
                for site_index, site in enumerate(context.sites)
            ]
            request = UnitRunRequest(
                contexts=contexts,
                units=units,
                cache=cache,
                jobs=jobs,
                diode=self.config.diode,
                application_names=self.config.registry_names(),
            )
            site_results = get_backend(backend_name).run_units(request)

        if store is not None and self.config.save_cache:
            saved = store.save(cache, fingerprint)

        application_results = []
        for context in contexts:
            result = ApplicationResult(
                application=context.application.name,
                seed_input=context.application.seed_input,
                analysis_seconds=context.analysis_seconds,
            )
            result.site_results.extend(
                site_results[(context.index, site_index)]
                for site_index in range(len(context.sites))
            )
            application_results.append(result)

        return CampaignResult(
            application_results=application_results,
            wall_seconds=time.perf_counter() - started,
            jobs=jobs,
            cache_enabled=self.config.use_cache,
            unit_count=len(units),
            cache_stats=cache.stats if cache is not None else None,
            backend=backend_name,
            cache_loaded=loaded,
            cache_saved=saved,
        )

    # ------------------------------------------------------------------
    def _build_contexts(self) -> List[ApplicationContext]:
        return [
            build_application_context(index, application)
            for index, application in enumerate(
                build_applications(self.config.applications)
            )
        ]


def run_campaign(config: Optional[CampaignConfig] = None) -> CampaignResult:
    """Convenience wrapper: run one campaign with ``config``."""
    return CampaignEngine(config).run()
