"""The parallel analysis campaign engine.

``Diode.analyze`` walks one application's target sites strictly serially.
A *campaign* instead treats every ⟨application, target site⟩ pair in the
registry as one independent unit of work and hands the unit list to a
pluggable execution backend (:mod:`repro.sched`): ``serial`` (the
deterministic reference schedule), ``thread`` (a work queue sharing one
in-process cache) or ``process`` (real CPU parallelism over a process
pool, with per-worker caches merged back into the parent).  Every unit's
solver is backed by a shared :class:`~repro.smt.cache.SolverCache` plus
the persistent simplification memo, so enforcement iterations and sibling
sites stop re-deriving work.  Units solve incrementally by default
(:class:`~repro.smt.solver.SolverSession` per observation, query
decomposition, component-granularity caching); the cache carries verdicts
at both whole-query and component granularity through every backend —
the process backend ships both as tagged wire-format deltas.

With a ``cache_dir``, the campaign also warm-starts across runs: the
solver cache is loaded from a persistent
:class:`~repro.smt.cachestore.CacheStore` before the units run (verified
against the store format version and the solver-configuration
fingerprint) and saved back afterwards, so a second campaign answers most
of its queries from the first one's verdicts.

Discovered overflows flow through the witness-triage subsystem
(:mod:`repro.triage`): every bug report is re-validated by a concrete
overflow-witness run, minimized (ddmin over the triggering field values),
and collapsed onto its canonical signature, so the campaign reports
*distinct verified* witnesses — the paper's Table-2 notion — instead of
per-run rediscoveries.  With a ``corpus_dir`` the deduplicated witnesses
persist across runs (merge-on-save, so parallel campaigns converge), and
``skip_known`` lets a warm campaign replay a stored witness per site —
one cheap concrete run — instead of re-deriving it through the
enforcement loop; a witness that no longer replays falls back to full
analysis, which keeps the skip parity-safe.

Structure of a run:

1. build the application models (registry order) and, per application, the
   shared immutable collaborators — one :class:`ErrorDetector` seed run and
   one :class:`FieldMapper` instead of one per site;
2. identify target sites per application (the taint stage, timed as the
   paper's analysis phase);
3. hand one :class:`~repro.sched.base.CampaignUnit` per site to the
   resolved backend, which schedules
   :func:`repro.core.engine.analyze_site` calls over its workers;
4. reassemble per-application :class:`ApplicationResult` records in registry
   order and aggregate the Table-1 / Table-2 report.

Determinism: units are pure (see :func:`~repro.core.engine.analyze_site`)
and results are slotted by (application, site) index, so the report is
identical for any backend and worker count.  The shared cache preserves
this because a cached verdict is always derived from the query's canonical
representative — a pure function of the query, not of scheduling order or
of which run originally derived it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.apps.registry import application_names, build_applications
from repro.core.engine import DiodeConfig
from repro.core.report import (
    ApplicationResult,
    OverflowBugReport,
    SiteClassification,
    SiteResult,
)
from repro.obs import events as ev
from repro.obs.metrics import METRICS
from repro.obs.progress import ProgressRenderer
from repro.obs.trace import TRACER, JsonlSink, ensure_trace_dir
from repro.obs.watchdog import StragglerWatchdog
from repro.sched import (
    ApplicationContext,
    CampaignUnit,
    UnitAnalysisError,
    UnitRunRequest,
    build_application_context,
    get_backend,
)
from repro.smt.cache import SolverCache, SolverCacheStats, simplify_memo
from repro.smt.cachestore import CacheStore
from repro.smt.solver import TELEMETRY

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at call time: repro.triage imports repro.core
    # submodules, so a module-scope import here would be circular.
    from repro.sched.base import Slot
    from repro.triage.corpus import WitnessRecord
    from repro.triage.engine import TriageStats

__all__ = [
    "CampaignConfig",
    "CampaignEngine",
    "CampaignResult",
    "CampaignUnit",
    "UnitAnalysisError",
    "run_campaign",
    "telemetry_delta",
]


def telemetry_delta(
    mark: Dict[str, float], final: Dict[str, float]
) -> Dict[str, float]:
    """Per-key ``final - mark`` over the *union* of both key sets.

    Snapshot key sets may differ across a run (a telemetry schema that
    grew a counter mid-process, a mark taken before any solver ran): a key
    only in ``final`` counts from zero, and a key only in ``mark`` is
    reported as its negation rather than silently dropped — a delta must
    never lose a key it was marked against.
    """
    return {
        key: round(final.get(key, 0) - mark.get(key, 0), 6)
        for key in sorted(set(mark) | set(final))
    }


@dataclass
class CampaignConfig:
    """Configuration for one campaign run."""

    diode: DiodeConfig = field(default_factory=DiodeConfig)
    #: Workers; ``None`` means one per CPU, ``1`` forces the deterministic
    #: serial schedule for the ``thread`` backend (no executor at all).
    jobs: Optional[int] = None
    #: Share a solver-result cache and the simplification memo across units.
    use_cache: bool = True
    #: Application short names to analyze; ``None`` means the whole registry.
    applications: Optional[Sequence[str]] = None
    #: Execution backend name (see :func:`repro.sched.available_backends`).
    backend: str = "thread"
    #: Directory of the persistent cross-run solver-cache store; ``None``
    #: disables persistence.
    cache_dir: Optional[str] = None
    #: Write the (possibly warm-started) cache back to ``cache_dir`` after
    #: the run.  Ignored without a ``cache_dir``.
    save_cache: bool = True
    #: Run the witness-triage pass (:mod:`repro.triage`): re-validate,
    #: minimize and deduplicate every discovered overflow.  Required for a
    #: ``corpus_dir``.
    triage: bool = True
    #: Directory of the persistent witness corpus; ``None`` keeps triage
    #: in-memory for this run only.
    corpus_dir: Optional[str] = None
    #: Merge this run's witnesses back into ``corpus_dir`` after the run.
    save_corpus: bool = True
    #: Minimize witnesses (ddmin + shrink-toward-baseline) before signing.
    minimize_witnesses: bool = True
    #: Replay a fresh corpus witness per site instead of re-deriving it
    #: through enforcement; sites whose witness no longer replays fall back
    #: to full analysis.  Requires ``corpus_dir``.
    skip_known: bool = False
    #: Directory receiving this run's structured trace (``meta.json`` plus
    #: one ``spans-<pid>.jsonl`` per participating process; see
    #: :mod:`repro.obs.trace`).  ``None`` disables the trace sink — stage
    #: duration histograms in :data:`repro.obs.metrics.METRICS` are
    #: recorded either way.  Rendered afterwards by ``repro trace``.
    trace_dir: Optional[str] = None
    #: Enable the live event stream (:mod:`repro.obs.events`): unit
    #: lifecycle, heartbeats, cache hit/miss, store lock waits, worker
    #: up/down.  ``False`` is the ablation arm (``campaign --no-events``)
    #: the classification-parity tests hold the stream against.  With a
    #: ``trace_dir`` the events are also persisted as
    #: ``events-<pid>.jsonl`` beside the spans.
    events: bool = True
    #: Start the straggler watchdog (:mod:`repro.obs.watchdog`): flags
    #: in-flight units exceeding a quantile-based deadline derived from
    #: the run's own ``stage.unit.seconds`` distribution.  Off by default
    #: because the ``campaign.stragglers`` counter is inherently
    #: timing-dependent, and default-on would break the backend
    #: counter-parity invariant on loaded machines.  Requires ``events``.
    watchdog: bool = False
    #: Render the live done/in-flight/stragglers/ETA progress line on
    #: stderr (``campaign --progress``).  Requires ``events``.
    progress: bool = False
    #: Cadence of ``unit.heartbeat`` events for in-flight units, in the
    #: campaign parent and in every process-backend worker.
    heartbeat_seconds: float = 0.5

    def resolved_jobs(self) -> int:
        if self.jobs is None:
            return max(1, os.cpu_count() or 1)
        return max(1, self.jobs)

    def resolved_backend(self) -> str:
        """The backend that will actually run, after the serial fallback.

        A single-worker ``thread`` pool is pure overhead, so ``jobs <= 1``
        degrades it to ``serial``.  An explicit ``process`` request is
        honoured even at one worker — the caller asked for process
        isolation (and its pickling path), not for speed.
        """
        get_backend(self.backend)  # one source of name validation
        if self.backend == "thread" and self.resolved_jobs() <= 1:
            return "serial"
        return self.backend

    def registry_names(self) -> List[str]:
        """Registry short names analyzed by this campaign, in order."""
        if self.applications is None:
            return application_names()
        return list(self.applications)


@dataclass
class CampaignResult:
    """Aggregate outcome of a campaign over many applications."""

    application_results: List[ApplicationResult]
    wall_seconds: float
    jobs: int
    cache_enabled: bool
    unit_count: int
    cache_stats: Optional[SolverCacheStats] = None
    backend: str = "thread"
    #: Entries warm-started from the persistent store (0 on a cold run).
    cache_loaded: int = 0
    #: Entries written back to the persistent store (0 when not saving).
    cache_saved: int = 0
    #: Aggregate witness-triage outcome (``None`` when triage is disabled).
    triage_stats: Optional["TriageStats"] = None
    #: This run's deduplicated witnesses, in registry order.
    witness_records: List["WitnessRecord"] = field(default_factory=list)
    #: Witnesses warm-started from the persistent corpus (0 on a cold run).
    corpus_loaded: int = 0
    #: Total witnesses in the corpus after the post-run merge (0 when not
    #: persisting).
    corpus_saved: int = 0
    #: Sites answered by replaying a corpus witness instead of enforcement.
    skipped_known: int = 0
    #: Delta of the process-wide solver telemetry
    #: (:data:`repro.smt.solver.TELEMETRY`) across the run: bit-blast/CDCL
    #: effort plus the core-guidance counters (cores extracted, candidates
    #: pruned, sessions reused).  Counts this process only — the
    #: ``process`` backend's workers solve in their own interpreters.
    solver_telemetry: Optional[Dict[str, float]] = None
    #: Wire-form delta of the campaign-wide metrics registry
    #: (:data:`repro.obs.metrics.METRICS`) across the run — stage timers,
    #: store/lock activity, solver counters.  Unlike ``solver_telemetry``
    #: this *does* include process-backend workers: each unit ships its
    #: registry delta back beside its cache delta and the parent merges
    #: them, so counter totals are identical for any backend and worker
    #: count on schedule-independent workloads.
    metrics: Optional[dict] = None
    #: Wire-form per-name event-count delta of the live event stream
    #: (:data:`repro.obs.events.EVENTS`) across the run.  Includes
    #: process-backend workers the same way ``metrics`` does — each unit
    #: ships its event-count delta back and the parent merges.  ``None``
    #: when the stream was disabled (``events=False``).
    events: Optional[dict] = None

    # ------------------------------------------------------------------
    def table1_rows(self) -> List[Dict[str, int]]:
        """Per-application Table-1 rows, in campaign order."""
        return [result.table1_row() for result in self.application_results]

    def table1_totals(self) -> Dict[str, int]:
        """The Table-1 totals row across every application."""
        totals = {
            "total_target_sites": 0,
            "diode_exposes_overflow": 0,
            "target_constraint_unsatisfiable": 0,
            "sanity_checks_prevent_overflow": 0,
        }
        for result in self.application_results:
            for key, value in result.table1_row().items():
                totals[key] += value
        return totals

    def bug_reports(self) -> List[OverflowBugReport]:
        """Every Table-2 row discovered by the campaign."""
        reports: List[OverflowBugReport] = []
        for result in self.application_results:
            reports.extend(result.bug_reports())
        return reports

    def classifications(self) -> Dict[str, Dict[str, str]]:
        """application name -> site name -> classification value.

        The comparison format the tests use to assert that campaign output
        matches the serial ``Diode.analyze`` path exactly.
        """
        return {
            result.application: {
                site.site.name: site.classification.value
                for site in result.site_results
            }
            for result in self.application_results
        }


class CampaignEngine:
    """Fan a DIODE analysis out over applications and sites concurrently."""

    def __init__(self, config: Optional[CampaignConfig] = None) -> None:
        self.config = config or CampaignConfig()

    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        """Run the campaign and return the aggregate report.

        With a ``trace_dir`` the run attaches a JSONL trace sink for its
        duration (the process backend additionally configures one per
        worker), and — when the event stream is enabled — a JSONL event
        sink beside it.  Observability is passive: the report is
        byte-identical with tracing and events on or off.
        """
        sink: Optional[JsonlSink] = None
        event_sink: Optional[ev.JsonlEventSink] = None
        prior_events_enabled = ev.EVENTS.enabled
        ev.EVENTS.enabled = self.config.events
        if self.config.trace_dir:
            ensure_trace_dir(self.config.trace_dir)
            sink = JsonlSink(self.config.trace_dir)
            TRACER.add_sink(sink)
            if self.config.events:
                event_sink = ev.JsonlEventSink(self.config.trace_dir)
                ev.EVENTS.add_sink(event_sink)
        try:
            with TRACER.span(
                "campaign", backend=self.config.backend
            ):
                return self._run()
        finally:
            if sink is not None:
                TRACER.remove_sink(sink)
                sink.close()
            if event_sink is not None:
                ev.EVENTS.remove_sink(event_sink)
                event_sink.close()
            ev.EVENTS.enabled = prior_events_enabled

    def _run(self) -> CampaignResult:
        started = time.perf_counter()
        if self.config.skip_known and not self.config.corpus_dir:
            raise ValueError("CampaignConfig.skip_known requires a corpus_dir")
        if self.config.corpus_dir and not self.config.triage:
            raise ValueError("CampaignConfig.corpus_dir requires triage")
        if (self.config.progress or self.config.watchdog) and not self.config.events:
            raise ValueError(
                "CampaignConfig.progress/watchdog require the event stream"
            )
        jobs = self.config.resolved_jobs()
        backend_name = self.config.resolved_backend()
        cache = SolverCache() if self.config.use_cache else None

        store: Optional[CacheStore] = None
        fingerprint = self.config.diode.solver_fingerprint()
        loaded = saved = 0
        if cache is not None and self.config.cache_dir:
            store = CacheStore(self.config.cache_dir)
            loaded = store.load(cache, fingerprint)

        corpus_store = None
        corpus_records: Dict[str, "WitnessRecord"] = {}
        if self.config.triage and self.config.corpus_dir:
            from repro.triage.corpus import CorpusStore

            corpus_store = CorpusStore(self.config.corpus_dir)
            corpus_records = corpus_store.load()

        telemetry_mark = TELEMETRY.snapshot()
        metrics_mark = METRICS.snapshot()
        events_mark = ev.EVENTS.snapshot()
        with simplify_memo(enabled=self.config.use_cache):
            contexts = self._build_contexts()
            skipped: Dict["Slot", SiteResult] = {}
            adopted: Dict["Slot", "WitnessRecord"] = {}
            if self.config.skip_known and corpus_records:
                skipped, adopted = self._skip_known_sites(contexts, corpus_records)
            units = [
                CampaignUnit(
                    app_index=context.index,
                    site_index=site_index,
                    application_name=context.application.name,
                    site_name=site.name,
                )
                for context in contexts
                for site_index, site in enumerate(context.sites)
                if (context.index, site_index) not in skipped
            ]
            request = UnitRunRequest(
                contexts=contexts,
                units=units,
                cache=cache,
                jobs=jobs,
                diode=self.config.diode,
                application_names=self.config.registry_names(),
                triage=self.config.triage,
                minimize_witnesses=self.config.minimize_witnesses,
                trace_dir=self.config.trace_dir,
                events=self.config.events,
                heartbeat_seconds=self.config.heartbeat_seconds,
            )
            # Live monitors wrap only the unit-execution window.  Progress
            # and the watchdog are event-stream *subscribers*: they attach
            # before the queued events fire so the progress line knows the
            # total, and detach in a finally so a failing unit cannot leak
            # a sink into the next campaign in this process.
            progress: Optional[ProgressRenderer] = None
            watchdog: Optional[StragglerWatchdog] = None
            stop_heartbeat = None
            if self.config.events:
                if self.config.progress:
                    progress = ProgressRenderer()
                    ev.EVENTS.add_sink(progress)
                if self.config.watchdog:
                    watchdog = StragglerWatchdog()
                    watchdog.start()
                for unit in units:
                    ev.EVENTS.emit(
                        ev.UNIT_QUEUED,
                        application=unit.application_name,
                        site=unit.site_name,
                        backend=backend_name,
                    )
                # The parent's heartbeat covers in-process backends (serial,
                # thread); process-backend workers heartbeat themselves.
                stop_heartbeat = ev.start_heartbeat(
                    max(0.05, self.config.heartbeat_seconds)
                )
            try:
                site_results = get_backend(backend_name).run_units(request)
            finally:
                if stop_heartbeat is not None:
                    stop_heartbeat()
                if watchdog is not None:
                    watchdog.stop()
                if progress is not None:
                    ev.EVENTS.remove_sink(progress)
                    progress.close()
            site_results.update(skipped)
        telemetry = telemetry_delta(telemetry_mark, TELEMETRY.snapshot())

        if store is not None and self.config.save_cache:
            saved = store.save(cache, fingerprint)

        triage_stats: Optional["TriageStats"] = None
        run_records: Dict[str, "WitnessRecord"] = {}
        corpus_saved = 0
        if self.config.triage:
            triage_stats, run_records = self._triage_results(
                contexts, site_results, request, adopted
            )
            if corpus_store is not None and self.config.save_corpus:
                corpus_saved = corpus_store.save(run_records)

        application_results = []
        for context in contexts:
            result = ApplicationResult(
                application=context.application.name,
                seed_input=context.application.seed_input,
                analysis_seconds=context.analysis_seconds,
            )
            result.site_results.extend(
                site_results[(context.index, site_index)]
                for site_index in range(len(context.sites))
            )
            application_results.append(result)

        return CampaignResult(
            application_results=application_results,
            wall_seconds=time.perf_counter() - started,
            jobs=jobs,
            cache_enabled=self.config.use_cache,
            unit_count=len(units),
            cache_stats=cache.stats if cache is not None else None,
            backend=backend_name,
            cache_loaded=loaded,
            cache_saved=saved,
            triage_stats=triage_stats,
            witness_records=list(run_records.values()),
            corpus_loaded=len(corpus_records),
            corpus_saved=corpus_saved,
            skipped_known=len(skipped),
            solver_telemetry=telemetry,
            metrics=METRICS.delta(metrics_mark),
            events=(
                ev.EVENTS.delta(events_mark) if self.config.events else None
            ),
        )

    # ------------------------------------------------------------------
    def _build_contexts(self) -> List[ApplicationContext]:
        with TRACER.span("parse"):
            applications = build_applications(self.config.applications)
        return [
            build_application_context(index, application)
            for index, application in enumerate(applications)
        ]

    # ------------------------------------------------------------------
    def _skip_known_sites(
        self,
        contexts: List[ApplicationContext],
        corpus_records: Dict[str, "WitnessRecord"],
    ) -> Tuple[Dict["Slot", SiteResult], Dict["Slot", "WitnessRecord"]]:
        """Answer sites from the corpus where a stored witness still replays.

        A skipped site costs one concrete witness run instead of the full
        extraction + enforcement unit.  Replay failure (stale witness,
        unrebuildable fields) silently falls back to scheduling the site
        normally, so ``skip_known`` can only ever change *when* a site's
        classification is derived, not what it is — the parity property
        ``bench_triage.py`` gates.

        Also returns the matched record per skipped slot, so the triage
        pass adopts the already-minimized witness instead of re-minimizing
        it from scratch (which would spend the very concrete runs the skip
        saved).
        """
        from dataclasses import replace

        from repro.core.inputs import InputGenerator
        from repro.formats.spec import FormatError
        from repro.triage.corpus import STATUS_FRESH
        from repro.triage.engine import rebuild_witness_input

        skipped: Dict["Slot", SiteResult] = {}
        adopted: Dict["Slot", "WitnessRecord"] = {}
        for context in contexts:
            application = context.application
            candidates = [
                record
                for record in corpus_records.values()
                if record.application == application.name
            ]
            if not candidates:
                continue
            generator = InputGenerator(
                application.seed_input, application.format_spec
            )
            for site_index, site in enumerate(context.sites):
                matching = sorted(
                    (
                        record
                        for record in candidates
                        if record.matches_site(site.site_label, site.site_tag)
                    ),
                    key=lambda record: record.signature,
                )
                for record in matching:
                    replay_started = time.perf_counter()
                    try:
                        data = rebuild_witness_input(record, generator)
                    except (FormatError, ValueError):
                        continue
                    evaluation = context.detector.evaluate(data, site.site_label)
                    if not evaluation.triggers_overflow:
                        continue
                    discovery_seconds = time.perf_counter() - replay_started
                    report = OverflowBugReport(
                        application=application.name,
                        target=site.name,
                        cve=application.known_cves.get(site.name, record.cve),
                        error_type=evaluation.error_type(),
                        enforced_branches=record.enforced_branches,
                        relevant_branches=record.relevant_branches,
                        analysis_seconds=0.0,
                        discovery_seconds=discovery_seconds,
                        triggering_field_values=dict(record.field_values),
                        triggering_input=data,
                    )
                    skipped[(context.index, site_index)] = SiteResult(
                        site=site,
                        classification=SiteClassification.OVERFLOW_EXPOSED,
                        bug_report=report,
                        discovery_seconds=discovery_seconds,
                    )
                    # One fresh observation of the stored witness: the
                    # corpus merge re-adds the stored times_seen itself.
                    adopted[(context.index, site_index)] = replace(
                        record, times_seen=1, status=STATUS_FRESH
                    )
                    break
        return skipped, adopted

    # ------------------------------------------------------------------
    def _triage_results(
        self,
        contexts: List[ApplicationContext],
        site_results: Dict["Slot", SiteResult],
        request: UnitRunRequest,
        adopted: Dict["Slot", "WitnessRecord"],
    ) -> Tuple["TriageStats", Dict[str, "WitnessRecord"]]:
        """Validate, minimize and deduplicate every discovered overflow.

        Slots answered by corpus replay adopt their matched (already
        minimized, just re-validated) record; slots the backend triaged on
        the worker side (the process backend's witness payloads) are
        adopted from their wire form; the rest run through a
        per-application :class:`WitnessTriager` sharing the campaign's
        seed-run detector.
        """
        from repro.triage.corpus import WitnessRecord, merge_records
        from repro.triage.engine import TriageStats, WitnessTriager

        stats = TriageStats()
        records: Dict[str, "WitnessRecord"] = {}
        triagers: Dict[int, WitnessTriager] = {}
        for context in contexts:
            for site_index, site in enumerate(context.sites):
                slot = (context.index, site_index)
                result = site_results.get(slot)
                if result is None or result.bug_report is None:
                    continue
                stats.raw_reports += 1
                if slot in adopted:
                    record = adopted[slot]
                elif slot in request.witness_results:
                    wire = request.witness_results[slot]
                    try:
                        record = (
                            None if wire is None else WitnessRecord.from_wire(wire)
                        )
                    except (KeyError, ValueError, TypeError):
                        record = None
                else:
                    triager = triagers.get(context.index)
                    if triager is None:
                        triager = WitnessTriager(
                            context.application,
                            detector=context.detector,
                            minimize=self.config.minimize_witnesses,
                        )
                        triagers[context.index] = triager
                    record = triager.triage(site, result.bug_report)
                if record is None:
                    stats.validation_failures += 1
                    continue
                is_new = record.signature not in records
                records[record.signature] = merge_records(
                    records.get(record.signature), record
                )
                stats.register(record, is_new)
        return stats, records


def run_campaign(config: Optional[CampaignConfig] = None) -> CampaignResult:
    """Convenience wrapper: run one campaign with ``config``."""
    return CampaignEngine(config).run()
