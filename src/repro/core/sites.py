"""Target site identification (paper Section 4.1).

Run the application model on the seed input under the taint interpreter and
collect every memory allocation site whose requested size is influenced by
input bytes.  Each such site becomes a :class:`TargetSite` carrying the set
of relevant input bytes — the inputs that appear in the eventual target
expression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from repro.exec.taint import TaintInterpreter, TaintReport
from repro.lang.program import Program


@dataclass(frozen=True)
class TargetSite:
    """A memory allocation site whose size the input influences."""

    site_label: int
    site_tag: Optional[str]
    relevant_bytes: FrozenSet[int]
    seed_size: int
    executions: int

    @property
    def name(self) -> str:
        """Human-readable site name (the tag when present, else the label)."""
        return self.site_tag or f"alloc@{self.site_label}"


def identify_target_sites(program: Program, seed_input: bytes) -> List[TargetSite]:
    """Run the taint stage on the seed input and return the target sites.

    The returned order follows the first dynamic execution of each site,
    which matches how the paper enumerates target sites from the seed run.
    """
    report = TaintInterpreter(program).run_taint(seed_input)
    return sites_from_taint_report(report)


def sites_from_taint_report(report: TaintReport) -> List[TargetSite]:
    """Convert a taint report into the list of target sites."""
    sites: List[TargetSite] = []
    for site_label in report.target_sites():
        records = [
            r for r in report.tainted_allocations if r.site_label == site_label
        ]
        first = records[0]
        sites.append(
            TargetSite(
                site_label=site_label,
                site_tag=first.site_tag,
                relevant_bytes=report.relevant_bytes_for(site_label),
                seed_size=first.requested_size,
                executions=len(records),
            )
        )
    return sites
