"""The DIODE front end: orchestrate the full Figure-1 pipeline.

``Diode.analyze(application)`` runs, for one benchmark application model and
its seed input:

1. target site identification (taint stage),
2. per-site target expression and branch constraint extraction (concolic
   stage restricted to the site's relevant bytes),
3. target constraint construction and solution,
4. goal-directed conditional branch enforcement,
5. error detection and bug-report generation,

and returns an :class:`~repro.core.report.ApplicationResult` with the
per-site classifications (Table 1) and bug reports (Table 2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.apps.appbase import Application
from repro.core.detection import ErrorDetector
from repro.core.enforcement import (
    EnforcementConfig,
    EnforcementOutcome,
    EnforcementResult,
    GoalDirectedEnforcer,
)
from repro.core.fieldmap import FieldMapper
from repro.core.inputs import InputGenerator
from repro.core.report import (
    ApplicationResult,
    OverflowBugReport,
    SiteClassification,
    SiteResult,
    classification_from_enforcement,
)
from repro.core.sites import TargetSite, identify_target_sites
from repro.core.target import TargetObservation, extract_target_observations
from repro.obs.trace import TRACER
from repro.smt.cache import SolverCache
from repro.smt.solver import PortfolioSolver, SolverConfig


@dataclass
class DiodeConfig:
    """Configuration for a DIODE analysis run.

    The whole tree is primitives-only dataclasses, so a config pickles
    cleanly into worker processes (the ``process`` execution backend ships
    one per pool initializer).
    """

    enforcement: EnforcementConfig = field(default_factory=EnforcementConfig)
    solver: SolverConfig = field(default_factory=SolverConfig)
    max_observations_per_site: int = 2

    def solver_fingerprint(self) -> tuple:
        """Fingerprint of the solver knobs cached verdicts depend on.

        Keys every solver-cache entry and stamps the persistent
        :class:`~repro.smt.cachestore.CacheStore`, so verdicts never leak
        across configurations — within a run or between runs.
        """
        return self.solver.fingerprint()


def analyze_site(
    application: Application,
    site: TargetSite,
    config: Optional[DiodeConfig] = None,
    *,
    solver_cache: Optional[SolverCache] = None,
    detector: Optional[ErrorDetector] = None,
    field_mapper: Optional[FieldMapper] = None,
) -> SiteResult:
    """Run extraction + enforcement for one target site.

    This is a pure, independently schedulable unit of work: it reads only
    its arguments, shares no mutable state with other sites (the optional
    ``solver_cache`` is thread-safe and idempotent, and a shared
    ``detector`` is immutable after construction), and is deterministic for
    a given application/site/config.  The campaign engine fans these calls
    out across an execution backend's workers — threads or whole processes
    (:mod:`repro.sched`); :class:`Diode` runs them serially.

    Solving is incremental by default: the enforcer drives a
    :class:`~repro.smt.solver.SolverSession` per observation (constraint
    deltas instead of rebuilt conjunction lists), queries decompose into
    independent connected components, and the shared cache answers at both
    whole-query and component granularity.  Disable via
    ``config.solver.enable_sessions`` / ``enable_decomposition`` —
    classification parity between the two paths is enforced by the parity
    tests and ``bench_solver.py`` (in principle only a timeout landing on
    a different side of the CDCL conflict budget could ever differ; see
    :class:`~repro.smt.solver.SolverSession`).
    """
    config = config or DiodeConfig()
    started = time.perf_counter()
    program = application.program
    seed = application.seed_input
    mapper = field_mapper or FieldMapper(application.format_spec)

    with TRACER.span("concolic", site=site.name):
        observations = extract_target_observations(
            program,
            seed,
            site,
            field_mapper=mapper,
            max_observations=config.max_observations_per_site,
        )

    solver = PortfolioSolver(config.solver, cache=solver_cache)
    generator = InputGenerator(seed, application.format_spec)
    if detector is None:
        detector = ErrorDetector(program, seed)
    enforcer = GoalDirectedEnforcer(solver, generator, detector, config.enforcement)

    best: Optional[EnforcementResult] = None
    for observation in observations:
        enforcement = enforcer.run(observation)
        if best is None or _better_outcome(enforcement, best):
            best = enforcement
        if enforcement.found_overflow:
            break

    discovery_seconds = time.perf_counter() - started
    if best is None:
        return SiteResult(
            site=site,
            classification=SiteClassification.TARGET_UNSATISFIABLE,
            discovery_seconds=discovery_seconds,
        )

    classification = classification_from_enforcement(best)
    bug_report = None
    if classification is SiteClassification.OVERFLOW_EXPOSED:
        bug_report = _bug_report(application, site, best, discovery_seconds)
    return SiteResult(
        site=site,
        classification=classification,
        enforcement=best,
        bug_report=bug_report,
        discovery_seconds=discovery_seconds,
    )


def _bug_report(
    application: Application,
    site: TargetSite,
    enforcement: EnforcementResult,
    discovery_seconds: float,
) -> OverflowBugReport:
    evaluation = enforcement.evaluation
    error_type = evaluation.error_type() if evaluation is not None else "None"
    field_values = {}
    if enforcement.triggering_model:
        field_values = {
            name: value
            for name, value in enforcement.triggering_model.items()
            if not name.startswith("inp[")
        }
    return OverflowBugReport(
        application=application.name,
        target=site.name,
        cve=application.known_cves.get(site.name, "New"),
        error_type=error_type,
        enforced_branches=enforcement.enforced_count,
        relevant_branches=enforcement.relevant_branch_count,
        analysis_seconds=0.0,
        discovery_seconds=discovery_seconds,
        triggering_field_values=field_values,
        triggering_input=enforcement.triggering_input,
    )


class Diode:
    """The directed integer overflow discovery engine."""

    def __init__(
        self,
        config: Optional[DiodeConfig] = None,
        solver_cache: Optional[SolverCache] = None,
    ) -> None:
        self.config = config or DiodeConfig()
        self.solver_cache = solver_cache

    # ------------------------------------------------------------------
    # Whole-application analysis
    # ------------------------------------------------------------------
    def analyze(self, application: Application) -> ApplicationResult:
        """Run the full pipeline on one application model."""
        started = time.perf_counter()
        program = application.program
        seed = application.seed_input

        sites = identify_target_sites(program, seed)
        analysis_seconds = time.perf_counter() - started

        result = ApplicationResult(
            application=application.name,
            seed_input=seed,
            analysis_seconds=analysis_seconds,
        )
        for site in sites:
            result.site_results.append(self.analyze_site(application, site))
        return result

    # ------------------------------------------------------------------
    # Per-site analysis
    # ------------------------------------------------------------------
    def analyze_site(self, application: Application, site: TargetSite) -> SiteResult:
        """Run extraction + enforcement for one target site."""
        return analyze_site(
            application, site, self.config, solver_cache=self.solver_cache
        )


_OUTCOME_PRIORITY = {
    EnforcementOutcome.OVERFLOW_TRIGGERED: 5,
    EnforcementOutcome.SEED_PATH_EXHAUSTED: 4,
    EnforcementOutcome.CONSTRAINTS_UNSATISFIABLE: 3,
    EnforcementOutcome.TARGET_UNSATISFIABLE: 2,
    EnforcementOutcome.ITERATION_LIMIT: 1,
    EnforcementOutcome.SOLVER_UNKNOWN: 0,
}


def _better_outcome(candidate: EnforcementResult, incumbent: EnforcementResult) -> bool:
    return _OUTCOME_PRIORITY[candidate.outcome] > _OUTCOME_PRIORITY[incumbent.outcome]
